#!/usr/bin/env python
"""Regenerate the shipped example TraceSet (examples/traces/example-set).

The set is tiny on purpose — two cores, a few hundred requests — and
fully deterministic: fixed seeds, gzip headers pinned to mtime 0, no
timestamps in the manifest.  Running this script twice produces
byte-identical files, which is what lets the committed sha256 digests
in manifest.json double as an integrity check.

One core is stored as inspectable line-delimited JSON, the other as
the gzipped binary columnar format, so loading the set exercises both
readers (the CI smoke step and tests/integration/test_traces_engine.py
rely on that).

Run:  PYTHONPATH=src python examples/traces/make_example.py
"""

import json
from pathlib import Path

from repro.traces import TraceSet, capacity_pressure, row_conflict_heavy
from repro.traces.ingest import MANIFEST_NAME, _sha256_file
from repro.traces.readers import write_binary, write_jsonl

OUT = Path(__file__).parent / "example-set"


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    cores = [
        capacity_pressure(
            num_cores=1, num_requests=160, num_banks=8, seed=71
        )[0],
        row_conflict_heavy(
            num_cores=1, num_requests=160, num_banks=8, seed=72
        )[0],
    ]
    traceset = TraceSet(
        name="example-set",
        traces=cores,
        provenance={
            "kind": "generated",
            "generator": "examples/traces/make_example.py",
            "params": {"seeds": [71, 72], "num_requests": 160,
                       "num_banks": 8},
        },
    )
    # Mixed per-core formats (TraceSet.save writes one format for the
    # whole set, so the manifest is assembled by hand here).
    files = [
        ("core00-capacity-pressure.jsonl", "jsonl", write_jsonl),
        ("core01-row-conflict.bin.gz", "binary", write_binary),
    ]
    manifest_cores = []
    for trace, (filename, format_name, writer) in zip(cores, files):
        path = OUT / filename
        writer(trace, path)
        manifest_cores.append(
            {
                "file": filename,
                "format": format_name,
                "name": trace.name,
                "requests": len(trace.entries),
                "sha256": _sha256_file(path),
            }
        )
    manifest = {
        "schema": "repro-traceset-v1",
        "name": traceset.name,
        "digest": traceset.digest(),
        "geometry": dict(traceset.geometry),
        "provenance": traceset.provenance,
        "cores": manifest_cores,
    }
    (OUT / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    print(f"wrote {OUT} (digest {traceset.digest()})")


if __name__ == "__main__":
    main()
