#!/usr/bin/env python
"""Command-level demo: a DDR5 chip with per-bank Mithril modules.

Drives the :class:`repro.dram.device.DramChip` abstraction of the
paper's Figure 4 with the JESD79-5 RAA machinery of
:mod:`repro.mc.refresh_management`:

* the MC counts ACTs per bank (RAAIMT / RAAMMT semantics, REF credit);
* on Mithril+ the MC reads mode register 58 (MRR) before each RFM and
  elides the command when the DRAM reports a small tracker spread;
* the chip decodes ACT / REF / RFM commands, updates the per-bank
  Mithril tables and the RowHammer fault model.

The demo hammers bank 0 while bank 1 sees benign traffic, then prints
both banks' tracker state and the RFM/MRR traffic.

Run:  python examples/ddr5_device_demo.py
"""

from repro.core.config import paper_default_config
from repro.core.mithril import MithrilScheme
from repro.dram.device import MR_RFM_FLAG, DramChip, DramCommand
from repro.mc.refresh_management import Ddr5RaaState, Ddr5RfmPolicy
from repro.types import CommandKind


def main() -> None:
    flip_th = 6_250
    config = paper_default_config(flip_th, adaptive_th=200)
    chip = DramChip(
        scheme_factory=lambda: MithrilScheme(
            n_entries=config.n_entries,
            rfm_th=config.rfm_th,
            adaptive_th=config.adaptive_th,
            plus=True,
        ),
        flip_th=flip_th,
    )
    policies = [
        Ddr5RfmPolicy(Ddr5RaaState(raaimt=config.rfm_th))
        for _ in range(chip.num_banks)
    ]
    mrr_reads = 0
    rfm_issued = 0
    rfm_elided = 0

    def activate(bank: int, row: int, cycle: int) -> None:
        nonlocal mrr_reads, rfm_issued, rfm_elided
        chip.execute(DramCommand(CommandKind.ACT, bank=bank, row=row,
                                 cycle=cycle))
        if policies[bank].on_activate():
            # Mithril+: MRR gate before spending the RFM slot.
            mrr_reads += 1
            if chip.mode_register_read(MR_RFM_FLAG):
                rfm_issued += 1
                chip.execute(
                    DramCommand(CommandKind.RFM, bank=bank, cycle=cycle)
                )
            else:
                rfm_elided += 1

    # Bank 0: double-sided hammer.  Bank 1: a gentle sweep.
    for i in range(20_000):
        attacker_row = 999 if i % 2 == 0 else 1001
        activate(0, attacker_row, cycle=i * 2)
        activate(1, (i // 16) % 4_096, cycle=i * 2 + 1)

    print("After 40k ACTs (bank 0 hammered, bank 1 benign):")
    for bank in (0, 1):
        scheme = chip.schemes[bank]
        top = scheme.table.greedy_select()
        print(
            f"  bank {bank}: spread={scheme.table.spread():>4}  "
            f"hottest={top}  rfms skipped="
            f"{scheme.stats.rfms_skipped}/{scheme.stats.rfms_received}"
        )
    print(f"  MRR reads: {mrr_reads}, RFM issued: {rfm_issued}, "
          f"elided: {rfm_elided}")
    print(f"  preventive refreshes: {chip.preventive_refreshes} rows")
    print(f"  bit flips: {chip.flip_count} "
          f"(max disturbance {chip.max_disturbance:.0f} "
          f"vs FlipTH {flip_th})")
    assert chip.flip_count == 0


if __name__ == "__main__":
    main()
