#!/usr/bin/env python
"""Attack gallery: replay the RowHammer attack zoo against every scheme.

For each protection scheme (Mithril, Mithril+, Graphene, TWiCe, PARFM,
RFM-Graphene, BlockHammer, none) and each attack pattern (double-sided,
many-sided, tracker-thrashing rotation, feinting concentration), report
the worst victim disturbance relative to FlipTH.

The feinting column is the interesting one: it is the concentration
pattern that defeats the RFM-Graphene strawman (Figure 2) while Mithril
shrugs it off with the same table budget.

Run:  python examples/attack_gallery.py
"""

from repro.core.config import min_entries_for
from repro.core.mithril import MithrilScheme
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.mitigations.parfm import ParfmScheme
from repro.mitigations.rfm_graphene import RfmGrapheneScheme
from repro.mitigations.twice import TwiceScheme
from repro.protection import NoProtection
from repro.verify import (
    double_sided_stream,
    feinting_stream,
    many_sided_stream,
    round_robin_stream,
    run_safety_trace,
)

FLIP_TH = 3_125
RFM_TH = 64
ACTS = 150_000


def build_schemes():
    n = min_entries_for(FLIP_TH, RFM_TH)
    n_adaptive = min_entries_for(FLIP_TH, RFM_TH, 200)
    return {
        "none": lambda: NoProtection(),
        "mithril": lambda: MithrilScheme(n_entries=n, rfm_th=RFM_TH),
        "mithril+": lambda: MithrilScheme(
            n_entries=n_adaptive, rfm_th=RFM_TH, adaptive_th=200, plus=True
        ),
        "graphene": lambda: GrapheneScheme(flip_th=FLIP_TH),
        "twice": lambda: TwiceScheme(flip_th=FLIP_TH),
        "parfm": lambda: ParfmScheme(),
        "rfm-graphene": lambda: RfmGrapheneScheme(
            threshold=400, n_entries=2048
        ),
        "blockhammer": lambda: BlockHammerScheme(flip_th=FLIP_TH),
    }


def build_attacks():
    return {
        "double-sided": lambda: double_sided_stream(1_000, ACTS),
        "many-sided": lambda: many_sided_stream(33, ACTS),
        "rotation": lambda: round_robin_stream(1_024, ACTS),
        "feinting": lambda: feinting_stream(150, 100, 12),
    }


def main() -> None:
    schemes = build_schemes()
    attacks = build_attacks()
    rfm_for = {"mithril", "mithril+", "parfm", "rfm-graphene"}

    header = f"{'scheme':<14}" + "".join(f"{a:>14}" for a in attacks)
    print(f"worst victim disturbance as % of FlipTH={FLIP_TH}")
    print(header)
    print("-" * len(header))
    for name, factory in schemes.items():
        cells = []
        for attack_name, stream_factory in attacks.items():
            scheme = factory()
            report = run_safety_trace(
                scheme,
                stream_factory(),
                FLIP_TH,
                rfm_th=RFM_TH if name in rfm_for else 0,
            )
            percent = 100.0 * report.max_disturbance / FLIP_TH
            flag = " *FLIP*" if report.flips else ""
            cells.append(f"{percent:>7.1f}%{flag:<6}")
        print(f"{name:<14}" + "".join(f"{c:>14}" for c in cells))
    print()
    print("* BlockHammer does not refresh victims; its protection is the")
    print("  ACT-rate throttle, which this raw replay reports as blacklist")
    print("  coverage rather than disturbance reduction.")


if __name__ == "__main__":
    main()
