#!/usr/bin/env python
"""Design-space explorer: what does protecting *your* DRAM part cost?

Given a FlipTH estimate (as a DRAM vendor would have after testing a
part), print the full trade-off surface a Mithril deployment chooses
from:

* every feasible (RFM_TH, Nentry) pair with its table size (Figure 6);
* the adaptive-refresh variants (AdTH 0 vs 200) and their extra area
  (Figure 7 / Theorem 2);
* the resulting RFM command rate, the first-order performance model of
  Figure 9 (tRFM every RFM_TH ACTs on a busy bank);
* how the chosen table compares against the baselines (Table IV).

Run:  python examples/design_space_explorer.py [flip_th]
"""

import sys

from repro.analysis.area import (
    blockhammer_table_kb,
    cbt_table_kb,
    graphene_table_kb,
    twice_table_kb,
)
from repro.core.config import MithrilConfig, configuration_curve
from repro.params import DramTimings


def explore(flip_th: int) -> None:
    timings = DramTimings()
    print(f"Design space for FlipTH = {flip_th}")
    print()
    print("  feasible Mithril configurations (Theorem 1):")
    print(f"  {'RFM_TH':>7} {'Nentry':>8} {'KB':>8} {'+AdTH200 KB':>12} "
          f"{'worst-case RFM slot share':>26}")
    chosen = None
    for config in configuration_curve(flip_th):
        adaptive_curve = configuration_curve(
            flip_th, rfm_th_values=(config.rfm_th,), adaptive_th=200
        )
        adaptive_kb = (
            f"{adaptive_curve[0].table_kilobytes():.3f}"
            if adaptive_curve
            else "-"
        )
        # On a fully busy bank, one tRFM window occurs every RFM_TH ACTs.
        slot_share = timings.trfm / (
            timings.trc * config.rfm_th + timings.trfm
        )
        print(
            f"  {config.rfm_th:>7} {config.n_entries:>8} "
            f"{config.table_kilobytes():>8.3f} {adaptive_kb:>12} "
            f"{slot_share:>25.2%}"
        )
        chosen = chosen or config
        if config.table_kilobytes() < chosen.table_kilobytes():
            chosen = config
    if chosen is None:
        print("  (none feasible — lower RFM_TH below 16 or raise FlipTH)")
        return
    print()
    print("  per-bank table size against the baselines (Table IV):")
    mithril_kb = chosen.table_kilobytes()
    rows = [
        ("Mithril (smallest feasible)", mithril_kb),
        ("Graphene @ MC", graphene_table_kb(flip_th)),
        ("CBT @ MC", cbt_table_kb(flip_th)),
        ("BlockHammer @ MC", blockhammer_table_kb(flip_th)),
        ("TWiCe @ buffer chip", twice_table_kb(flip_th)),
    ]
    for name, kb in rows:
        ratio = kb / mithril_kb if mithril_kb else float("inf")
        print(f"    {name:<28} {kb:>8.3f} KB   ({ratio:>5.1f}x Mithril)")


def main() -> None:
    flip_th = int(sys.argv[1]) if len(sys.argv) > 1 else 6_250
    explore(flip_th)


if __name__ == "__main__":
    main()
