#!/usr/bin/env python
"""Quickstart: protect a simulated DDR5 system with Mithril.

Walks the full public API surface in one script:

1. pick a provably safe Mithril configuration for a target FlipTH;
2. simulate a 4-core benign workload with and without Mithril and
   compare performance / energy;
3. replay a double-sided RowHammer attack against both and show that
   only the unprotected system flips bits.

Run:  python examples/quickstart.py
"""

from repro import MithrilScheme, paper_default_config, simulate
from repro.analysis.energy import energy_overhead_percent
from repro.protection import NoProtection
from repro.verify import double_sided_stream, run_safety_trace
from repro.workloads import mix_high, double_sided_trace


def main() -> None:
    flip_th = 6_250  # the RowHammer threshold of recent DDR4/5 parts

    # 1. Configuration: Theorem 1 gives the minimum table size for a
    #    given RFM_TH; the paper's default uses RFM_TH=128 and AdTH=200.
    config = paper_default_config(flip_th, adaptive_th=200)
    print("Mithril configuration")
    print(f"  FlipTH       : {config.flip_th}")
    print(f"  RFM_TH       : {config.rfm_th}")
    print(f"  Nentry       : {config.n_entries}")
    print(f"  bound M      : {config.bound:.0f}  (< FlipTH/2 = {flip_th // 2})")
    print(f"  table size   : {config.table_kilobytes():.2f} KB per bank")
    print()

    def mithril() -> MithrilScheme:
        return MithrilScheme(
            n_entries=config.n_entries,
            rfm_th=config.rfm_th,
            adaptive_th=config.adaptive_th,
        )

    # 2. Benign workload: 4 memory-intensive cores, 16 banks.
    traces = mix_high(num_cores=4, num_requests=2_000, num_banks=16)
    baseline = simulate(traces, flip_th=flip_th)
    protected = simulate(
        traces, scheme_factory=mithril, rfm_th=config.rfm_th,
        flip_th=flip_th,
    )
    rel = protected.relative_performance(baseline)
    energy = energy_overhead_percent(protected, baseline)
    print("Benign workload (mix-high)")
    print(f"  baseline IPC : {baseline.aggregate_ipc:.3f}")
    print(f"  Mithril IPC  : {protected.aggregate_ipc:.3f} ({rel:.2f}%)")
    print(f"  energy ovh   : {energy:.3f}%")
    print(f"  RFM commands : {protected.rfm_commands} "
          f"({protected.rfms_skipped} adaptive-skipped)")
    print()

    # 3. Attack: double-sided hammer on one victim row.
    print("Double-sided attack, 200k ACTs at max rate")
    unprotected_report = run_safety_trace(
        NoProtection(), double_sided_stream(1_000, 200_000), flip_th
    )
    protected_report = run_safety_trace(
        mithril(), double_sided_stream(1_000, 200_000), flip_th,
        rfm_th=config.rfm_th,
    )
    print(f"  unprotected  : {len(unprotected_report.flips)} bit flips "
          f"(max disturbance {unprotected_report.max_disturbance:.0f})")
    print(f"  Mithril      : {len(protected_report.flips)} bit flips "
          f"(max disturbance {protected_report.max_disturbance:.0f}, "
          f"headroom {protected_report.headroom:.0%})")
    assert protected_report.safe
    print()
    print("Mithril kept every victim far below FlipTH.")


if __name__ == "__main__":
    main()
