#!/usr/bin/env python
"""How tight is Theorem 1?  Measured growth vs. the analytical bound.

Replays the attack zoo against Mithril and measures the exact quantity
Theorem 1 bounds — the estimated-count growth of any row within a
window — then charts measured-vs-bound tightness per pattern.  The
concentration (round-robin) adversary is the pattern the proof's worst
case describes; it should sit closest to the bound.

Run:  python examples/theorem_tightness.py
"""

from repro.analysis.report import bar_chart
from repro.core.config import min_entries_for
from repro.core.mithril import MithrilScheme
from repro.verify import (
    double_sided_stream,
    feinting_stream,
    many_sided_stream,
    measure_estimate_growth,
    round_robin_stream,
)

FLIP_TH = 3_125
RFM_TH = 64
ACTS = 120_000


def main() -> None:
    n_entries = min_entries_for(FLIP_TH, RFM_TH)
    print(
        f"Mithril at FlipTH={FLIP_TH}: Nentry={n_entries}, "
        f"RFM_TH={RFM_TH}\n"
    )
    patterns = {
        "double-sided": double_sided_stream(1_000, ACTS),
        "many-sided-33": many_sided_stream(33, ACTS),
        "feinting-120": feinting_stream(120, 60, 16),
        f"round-robin-{n_entries // 2}": round_robin_stream(
            n_entries // 2, ACTS
        ),
        f"round-robin-{2 * n_entries}": round_robin_stream(
            2 * n_entries, ACTS
        ),
    }
    tightness = {}
    bound = None
    for name, stream in patterns.items():
        scheme = MithrilScheme(
            n_entries=n_entries, rfm_th=RFM_TH, counter_bits=62
        )
        report = measure_estimate_growth(scheme, stream, max_acts=ACTS)
        tightness[name] = round(100 * report.tightness, 1)
        bound = report.theorem_bound
        status = "OK" if report.within_bound else "VIOLATION"
        print(
            f"{name:<22} growth {report.max_growth:>7.0f} "
            f"/ bound {report.theorem_bound:>7.0f}  "
            f"({report.tightness:6.1%})  {status}"
        )
    print()
    print(f"tightness (% of the Theorem-1 bound, M = {bound:.0f}):")
    print(bar_chart(tightness, width=40, unit="%"))
    print()
    print(
        "Every pattern stays inside the bound; the tracker-thrashing\n"
        "rotation gets closest — it is the concentration scenario the\n"
        "proof's Lemma 4 chain is built around."
    )


if __name__ == "__main__":
    main()
