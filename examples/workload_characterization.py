#!/usr/bin/env python
"""Characterize workloads the way Section V-A does (Figure 8).

Profiles every benign workload of the evaluation suite, the new
trace-foundry stress families, and the attack patterns through the
trace-foundry characterization module (`repro.traces.characterize`),
prints the statistics the adaptive-refresh argument rests on (burst
lengths, ACT amplification, hot-row shares, MPKI), predicts the
Mithril-table spread each workload builds, and then validates the
prediction against the actual simulated spread.

Run:  python examples/workload_characterization.py
"""

from repro.core.config import paper_default_config
from repro.core.mithril import MithrilScheme
from repro.engine import build_workload
from repro.engine.job import WorkloadSpec
from repro.experiments.runner import normal_workloads
from repro.sim.system import simulate
from repro.traces import characterize_workload
from repro.workloads.attacks import double_sided_trace, multi_sided_trace
from repro.workloads.stats import expected_tracker_spread

#: The trace-foundry stress families (docs/WORKLOADS.md).
STRESS_FAMILIES = (
    "capacity-pressure",
    "row-conflict-heavy",
    "multi-channel-imbalanced",
)


def main() -> None:
    flip_th = 6_250
    config = paper_default_config(flip_th, adaptive_th=200)

    suites = dict(normal_workloads(scale=1.0))
    for kind in STRESS_FAMILIES:
        suites[kind] = build_workload(WorkloadSpec.make(kind, scale=1.0))
    suites["ATTACK double-sided"] = [
        double_sided_trace(victim_row=5_000, total_requests=24_000)
    ]
    suites["ATTACK multi-sided"] = [
        multi_sided_trace(num_victims=32, total_requests=24_000)
    ]

    print(
        f"{'workload':<26} {'burst':>7} {'ACT/acc':>8} {'MPKI':>7} "
        f"{'hot-row%':>9} {'pred.spread':>12} {'meas.spread':>12} "
        f"{'RFMs skipped':>13}"
    )
    for name, traces in suites.items():
        char = characterize_workload(traces, name=name)
        predicted = expected_tracker_spread(
            char, config.n_entries, config.rfm_th
        )
        # simulate with the real adaptive configuration attached
        schemes = []

        def factory():
            scheme = MithrilScheme(
                n_entries=config.n_entries,
                rfm_th=config.rfm_th,
                adaptive_th=config.adaptive_th,
            )
            schemes.append(scheme)
            return scheme

        result = simulate(
            traces, scheme_factory=factory, rfm_th=config.rfm_th,
            flip_th=flip_th,
        )
        measured = max(s.table.max_spread_seen for s in schemes)
        total_rfms = result.rfm_commands or 1
        skipped = 100.0 * result.rfms_skipped / total_rfms
        print(
            f"{name:<26} {char.mean_burst_length:>7.1f} "
            f"{char.act_per_access:>8.2f} "
            f"{char.mpki_proxy:>7.1f} "
            f"{100 * char.hot_row_top1_share:>8.2f}% "
            f"{predicted:>12.1f} {measured:>12} {skipped:>12.1f}%"
        )
    print()
    print(
        "Benign workloads never build a spread above AdTH=200, so their "
        "RFMs\nskip the preventive refresh (energy saved); the attacks "
        "push the spread\npast AdTH and Mithril spends the RFM windows "
        "refreshing victims.  The\nstress families sit between: maximal "
        "ACT rates or skewed bank load, but\nno single hot row — the "
        "regime where mitigation overhead rankings flip."
    )


if __name__ == "__main__":
    main()
