#!/usr/bin/env python
"""Characterize workloads the way Section V-A does (Figure 8).

Profiles every benign workload of the evaluation suite plus the attack
patterns, prints the statistics the adaptive-refresh argument rests on
(burst lengths, ACT amplification, hot-row shares), predicts the
Mithril-table spread each workload builds, and then validates the
prediction against the actual simulated spread.

Run:  python examples/workload_characterization.py
"""

from repro.core.config import paper_default_config
from repro.core.mithril import MithrilScheme
from repro.experiments.runner import normal_workloads
from repro.sim.system import simulate
from repro.workloads.attacks import double_sided_trace, multi_sided_trace
from repro.workloads.stats import expected_tracker_spread, profile_traces


def main() -> None:
    flip_th = 6_250
    config = paper_default_config(flip_th, adaptive_th=200)

    suites = dict(normal_workloads(scale=1.0))
    suites["ATTACK double-sided"] = [
        double_sided_trace(victim_row=5_000, total_requests=24_000)
    ]
    suites["ATTACK multi-sided"] = [
        multi_sided_trace(num_victims=32, total_requests=24_000)
    ]

    print(
        f"{'workload':<22} {'burst':>7} {'ACT/acc':>8} {'hot-row%':>9} "
        f"{'pred.spread':>12} {'meas.spread':>12} {'RFMs skipped':>13}"
    )
    for name, traces in suites.items():
        profile = profile_traces(traces)
        predicted = expected_tracker_spread(
            profile, config.n_entries, config.rfm_th
        )
        # simulate with the real adaptive configuration attached
        schemes = []

        def factory():
            scheme = MithrilScheme(
                n_entries=config.n_entries,
                rfm_th=config.rfm_th,
                adaptive_th=config.adaptive_th,
            )
            schemes.append(scheme)
            return scheme

        result = simulate(
            traces, scheme_factory=factory, rfm_th=config.rfm_th,
            flip_th=flip_th,
        )
        measured = max(s.table.max_spread_seen for s in schemes)
        total_rfms = result.rfm_commands or 1
        skipped = 100.0 * result.rfms_skipped / total_rfms
        print(
            f"{name:<22} {profile.mean_burst_length:>7.1f} "
            f"{profile.act_per_access_estimate:>8.2f} "
            f"{100 * profile.hottest_row_share:>8.2f}% "
            f"{predicted:>12.1f} {measured:>12} {skipped:>12.1f}%"
        )
    print()
    print(
        "Benign workloads never build a spread above AdTH=200, so their "
        "RFMs\nskip the preventive refresh (energy saved); the attacks "
        "push the spread\npast AdTH and Mithril spends the RFM windows "
        "refreshing victims."
    )


if __name__ == "__main__":
    main()
