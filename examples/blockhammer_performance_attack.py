#!/usr/bin/env python
"""The BlockHammer performance attack (Section VI-A / Figure 10(c)).

Demonstrates that throttling-based protection is a double-edged sword:
an attacker who profiles BlockHammer's counting-Bloom-filter layout can
blacklist a *benign* thread's hot rows by hammering aliases, throttling
the victim thread without ever touching its data.

The same workload leaves Mithril+ unmoved — preventive refreshes are
invisible to benign scheduling.

Run:  python examples/blockhammer_performance_attack.py
"""

from repro.core.config import paper_default_config
from repro.core.mithril import MithrilScheme
from repro.experiments.runner import (
    attack_workload,
    scheme_under_test,
)
from repro.sim.system import simulate

FLIP_TH = 1_500


def main() -> None:
    traces = attack_workload("bh-adversarial", scale=1.0, flip_th=FLIP_TH)
    benign_cores = len(traces) - 1
    print(
        f"{benign_cores} benign cores + 1 adversary hammering CBF aliases "
        f"of the benign threads' hottest rows (FlipTH {FLIP_TH})"
    )
    print()

    baseline = simulate(traces, flip_th=FLIP_TH)

    results = {}
    for scheme_name in ("blockhammer", "mithril", "mithril+"):
        factory, rfm_th = scheme_under_test(scheme_name, FLIP_TH)
        result = simulate(
            traces, scheme_factory=factory, rfm_th=rfm_th, flip_th=FLIP_TH
        )
        results[scheme_name] = result

    print(f"{'scheme':<14} {'relative IPC':>13} {'throttle events':>16}")
    for name, result in results.items():
        rel = result.relative_performance(baseline)
        print(f"{name:<14} {rel:>12.2f}% {result.throttle_events:>16}")
    print()
    bh = results["blockhammer"].relative_performance(baseline)
    mp = results["mithril+"].relative_performance(baseline)
    print(
        f"The adversary costs BlockHammer {100 - bh:.1f}% aggregate IPC "
        f"while Mithril+ loses {100 - mp:.1f}%."
    )


if __name__ == "__main__":
    main()
