"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs wheel for PEP-517 editable installs; this shim
lets `python setup.py develop` work offline as a fallback.
"""

from setuptools import setup

setup()
