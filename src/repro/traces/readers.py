"""Trace readers: the pluggable ingestion formats.

Three formats ship, registered by name (:func:`register_reader`) so
external converters can add more without touching the ingestion CLI:

``jsonl``
    The native line-delimited JSON of :meth:`CoreTrace.save` — one
    header object, then one ``[gap, bank, row, column, write, instr]``
    array per request.  Human-inspectable; roughly 40 bytes/request.

``binary``
    A compact columnar format (magic ``RPTRC1``): a JSON header line
    followed by the six entry fields as contiguous little-endian
    column blobs (int64, except ``is_write`` as uint8).  ~41 bytes per
    request raw, but columns compress far better than JSON — the
    expected on-disk form is ``.bin.gz``.

``dramsim3-csv``
    A DRAMsim3-style ``addr,cycle,op`` request log (comma- or
    whitespace-separated, ``0x``-hex or decimal addresses, absolute
    cycle stamps, READ/WRITE ops).  Byte addresses are decoded through
    an address-mapping policy (:mod:`repro.traces.mapping`), cycle
    stamps become inter-request gaps, and the gap doubles as the
    instruction proxy — external logs carry no retire counts.

Every reader takes ``(path, organization=..., mapping=...)`` and
returns one :class:`~repro.workloads.trace.CoreTrace`; formats that
already carry coordinates ignore the mapping arguments.  All paths
accept a ``.gz`` suffix transparently (:func:`open_trace_file`).
"""

from __future__ import annotations

import json
import sys
from array import array
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.params import DEFAULT_CONFIG, DramOrganization
from repro.traces.mapping import DEFAULT_MAPPING, map_address
from repro.workloads.trace import CoreTrace, TraceEntry, open_trace_file

#: Magic prefix of the binary columnar format (version 1).
BINARY_MAGIC = b"RPTRC1\n"

#: Column layout of the binary format, in file order.
_COLUMNS = (
    ("gap_cycles", "q"),
    ("bank_index", "q"),
    ("row", "q"),
    ("column", "q"),
    ("is_write", "B"),
    ("instructions", "q"),
)

Reader = Callable[..., CoreTrace]

_READERS: Dict[str, Reader] = {}


def register_reader(name: str):
    """Decorator registering a trace reader under ``name``."""

    def decorator(reader: Reader) -> Reader:
        _READERS[name] = reader
        return reader

    return decorator


def reader_names() -> List[str]:
    return sorted(_READERS)


def get_reader(name: str) -> Reader:
    try:
        return _READERS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace format {name!r}; "
            f"known: {', '.join(reader_names())}"
        ) from None


def read_trace(
    path,
    format: Optional[str] = None,
    organization: Optional[DramOrganization] = None,
    mapping: str = DEFAULT_MAPPING,
) -> CoreTrace:
    """Read one trace, sniffing the format when none is given."""
    if format is None or format == "auto":
        format = detect_format(path)
    return get_reader(format)(
        path, organization=organization, mapping=mapping
    )


def detect_format(path) -> str:
    """Sniff a trace file's format from its first bytes."""
    with open_trace_file(path, "rb") as handle:
        head = handle.read(len(BINARY_MAGIC))
    if head == BINARY_MAGIC:
        return "binary"
    if head.lstrip()[:1] == b"{":
        return "jsonl"
    if head.strip():
        return "dramsim3-csv"
    raise ValueError(f"cannot detect trace format of empty file {path}")


# ----------------------------------------------------------------------
# jsonl — the native CoreTrace serialization
# ----------------------------------------------------------------------


@register_reader("jsonl")
def read_jsonl(path, organization=None, mapping=DEFAULT_MAPPING) -> CoreTrace:
    return CoreTrace.load(path)


def write_jsonl(trace: CoreTrace, path) -> None:
    trace.save(path)


# ----------------------------------------------------------------------
# binary — columnar int64 blobs behind a JSON header
# ----------------------------------------------------------------------


def _native(column: "array") -> "array":
    if sys.byteorder == "big":
        column.byteswap()
    return column


@register_reader("binary")
def read_binary(path, organization=None, mapping=DEFAULT_MAPPING) -> CoreTrace:
    with open_trace_file(path, "rb") as handle:
        magic = handle.read(len(BINARY_MAGIC))
        if magic != BINARY_MAGIC:
            raise ValueError(
                f"{path} is not a binary repro trace "
                f"(magic {magic!r}, expected {BINARY_MAGIC!r})"
            )
        header = json.loads(handle.readline())
        count = header["count"]
        columns = {}
        for name, typecode in _COLUMNS:
            column = array(typecode)
            column.frombytes(handle.read(column.itemsize * count))
            if len(column) != count:
                raise ValueError(
                    f"{path}: column {name!r} truncated "
                    f"({len(column)} of {count} values)"
                )
            columns[name] = _native(column)
    entries = [
        TraceEntry(
            gap_cycles=columns["gap_cycles"][i],
            bank_index=columns["bank_index"][i],
            row=columns["row"][i],
            column=columns["column"][i],
            is_write=bool(columns["is_write"][i]),
            instructions=columns["instructions"][i],
        )
        for i in range(count)
    ]
    return CoreTrace(
        name=header["name"],
        entries=entries,
        memory_intensive=header.get("memory_intensive", True),
    )


def write_binary(trace: CoreTrace, path) -> None:
    columns = {
        "gap_cycles": array("q", (e.gap_cycles for e in trace.entries)),
        "bank_index": array("q", (e.bank_index for e in trace.entries)),
        "row": array("q", (e.row for e in trace.entries)),
        "column": array("q", (e.column for e in trace.entries)),
        "is_write": array("B", (int(e.is_write) for e in trace.entries)),
        "instructions": array("q", (e.instructions for e in trace.entries)),
    }
    header = {
        "name": trace.name,
        "memory_intensive": trace.memory_intensive,
        "count": len(trace.entries),
    }
    with open_trace_file(path, "wb") as handle:
        handle.write(BINARY_MAGIC)
        handle.write((json.dumps(header) + "\n").encode())
        for name, _typecode in _COLUMNS:
            handle.write(_native(columns[name]).tobytes())


#: Writers by format name (the ingestion CLI's ``--format`` choices).
WRITERS: Dict[str, Callable[[CoreTrace, object], None]] = {
    "jsonl": write_jsonl,
    "binary": write_binary,
}


# ----------------------------------------------------------------------
# dramsim3-csv — addr,cycle,op request logs
# ----------------------------------------------------------------------


def _parse_int(token: str) -> int:
    token = token.strip()
    return int(token, 16) if token.lower().startswith("0x") else int(token)


@register_reader("dramsim3-csv")
def read_dramsim3_csv(
    path,
    organization: Optional[DramOrganization] = None,
    mapping: str = DEFAULT_MAPPING,
) -> CoreTrace:
    org = organization or DEFAULT_CONFIG.organization
    entries = []
    previous_cycle = None
    with open_trace_file(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = [t for t in line.replace(",", " ").split() if t]
            if tokens[0].lower() in ("addr", "address"):  # header row
                continue
            if len(tokens) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'addr,cycle,op', "
                    f"got {line!r}"
                )
            address, cycle = _parse_int(tokens[0]), _parse_int(tokens[1])
            op = tokens[2].strip().upper()
            if op not in ("READ", "WRITE", "R", "W"):
                raise ValueError(
                    f"{path}:{lineno}: unknown op {tokens[2]!r} "
                    "(expected READ/WRITE)"
                )
            gap = 0 if previous_cycle is None else max(
                0, cycle - previous_cycle
            )
            previous_cycle = cycle
            bank, row, column = map_address(mapping, address, org)
            entries.append(
                TraceEntry(
                    gap_cycles=gap,
                    bank_index=bank,
                    row=row,
                    column=column,
                    is_write=op.startswith("W"),
                    # External logs carry no retire counts; the gap is
                    # the same throughput proxy the generators use.
                    instructions=gap + 1,
                )
            )
    name = Path(path).name
    for suffix in (".gz", ".csv", ".trace", ".txt"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    return CoreTrace(name=name or "dramsim3", entries=entries)
