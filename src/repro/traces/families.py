"""New stress families: workloads at the extremes of the ACT axes.

BlockHammer (HPCA 2021) and Graphene (MICRO 2020) rank differently
once row locality collapses or bank load skews, so each family pins
one extreme of the characterization space
(:mod:`repro.traces.characterize`) and ships **design targets** —
numeric bounds its own characterization must satisfy — asserted by the
test suite and printed by ``repro traces synth --check``:

``capacity-pressure``
    Row-buffer-thrashing sweeps: every core walks a bank-striped
    footprint so consecutive accesses to any one bank always land on
    adjacent-but-different rows.  ACT-per-access ~= 1 with balanced
    banks — the maximum benign ACT rate the geometry allows.

``row-conflict-heavy``
    Antagonistic same-bank different-row pairs: cores are paired onto
    a shared bank and ping-pong disjoint row sets, so the merged
    stream is a continuous row-buffer conflict on a handful of banks
    (the queueing-pressure extreme; most banks stay idle).

``multi-channel-imbalanced``
    Skewed bank/channel load: a hot fraction of block accesses goes to
    channel 0's banks, the remainder to channel 1's, with per-core row
    bursts.  Per-bank trackers see wildly uneven ACT budgets.

All generators are deterministic in their ``seed`` and register in the
engine catalog (``repro.engine.catalog``) with ``--scale``-aware
sizing, so `SimJob`s reference them like any other workload kind.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.params import DramOrganization
from repro.workloads.nprng import default_rng
from repro.workloads.synthetic import _gaps
from repro.workloads.trace import CoreTrace, TraceEntry

#: The documented design targets (docs/WORKLOADS.md); the numbers the
#: family tests assert via :func:`design_violations`.
DESIGN_TARGETS: Dict[str, Dict[str, float]] = {
    "capacity-pressure": {
        "act_per_access_min": 0.95,
        "mean_burst_length_max": 1.05,
        "bank_imbalance_max": 1.3,
    },
    "row-conflict-heavy": {
        "act_per_access_min": 0.95,
        # touched banks <= ceil(num_cores / 2): pairs share one bank.
        "banks_touched_max_pair_fraction": 1.0,
        "mean_burst_length_max": 1.05,
    },
    "multi-channel-imbalanced": {
        "bank_imbalance_min": 1.4,
        "channel_share_top_min": 0.65,
        "per_core_mean_burst_min": 2.0,
    },
}


def capacity_pressure(
    num_cores: int = 4,
    num_requests: int = 1200,
    num_banks: int = 16,
    rows_per_bank: int = 65536,
    footprint_rows: int = 4096,
    mean_gap: float = 10.0,
    write_fraction: float = 0.25,
    seed: int = 61,
) -> List[CoreTrace]:
    """Row-buffer-thrashing sweeps (see the module docstring).

    Core ``c`` walks logical blocks ``start_c, start_c + 1, ...``;
    ``bank = block % num_banks`` stripes adjacent blocks across banks,
    so the next access to the same bank sits one row further — a
    guaranteed row-buffer miss under any page policy.
    """
    rng = default_rng(seed)
    traces = []
    for core in range(num_cores):
        start = core * footprint_rows + int(rng.integers(0, num_banks))
        gaps = _gaps(rng, num_requests, mean_gap)
        writes = [v < write_fraction for v in rng.random(num_requests)]
        entries = []
        for i in range(num_requests):
            block = start + i
            entries.append(
                TraceEntry(
                    gap_cycles=int(gaps[i]),
                    bank_index=block % num_banks,
                    row=(block // num_banks) % rows_per_bank,
                    column=i % 128,
                    is_write=bool(writes[i]),
                    instructions=int(gaps[i]) + 1,
                )
            )
        traces.append(
            CoreTrace(
                name=f"core{core}-capacity-pressure",
                entries=entries,
                memory_intensive=True,
            )
        )
    return traces


def row_conflict_heavy(
    num_cores: int = 4,
    num_requests: int = 1200,
    num_banks: int = 16,
    rows_per_bank: int = 65536,
    conflict_rows: int = 8,
    mean_gap: float = 8.0,
    write_fraction: float = 0.2,
    seed: int = 62,
) -> List[CoreTrace]:
    """Antagonistic same-bank different-row pairs.

    Cores ``2p`` and ``2p + 1`` share bank ``p % num_banks`` but cycle
    *disjoint* sets of ``conflict_rows`` rows, so every scheduled
    request closes the other core's row.  An odd trailing core gets a
    bank of its own (still self-conflicting across its row set).
    """
    if conflict_rows < 2:
        raise ValueError(
            f"conflict_rows must be >= 2 to force row misses, "
            f"got {conflict_rows}"
        )
    rng = default_rng(seed)
    traces = []
    for core in range(num_cores):
        pair = core // 2
        bank = pair % num_banks
        base = (pair * 4096 + (core % 2) * 2048) % rows_per_bank
        gaps = _gaps(rng, num_requests, mean_gap)
        writes = [v < write_fraction for v in rng.random(num_requests)]
        entries = [
            TraceEntry(
                gap_cycles=int(gaps[i]),
                bank_index=bank,
                row=(base + (i % conflict_rows) * 2) % rows_per_bank,
                column=i % 128,
                is_write=bool(writes[i]),
                instructions=int(gaps[i]) + 1,
            )
            for i in range(num_requests)
        ]
        traces.append(
            CoreTrace(
                name=f"core{core}-row-conflict",
                entries=entries,
                memory_intensive=True,
            )
        )
    return traces


def multi_channel_imbalanced(
    num_cores: int = 4,
    num_requests: int = 1200,
    num_banks: int = 16,
    rows_per_bank: int = 65536,
    banks_per_channel: int = 32,
    hot_share: float = 0.75,
    accesses_per_row: int = 4,
    mean_gap: float = 14.0,
    write_fraction: float = 0.3,
    seed: int = 63,
) -> List[CoreTrace]:
    """Skewed bank/channel load with per-core row bursts.

    Each burst of ``accesses_per_row`` requests picks a (bank, row):
    with probability ``hot_share`` a bank in channel 0 (flat indices
    ``[0, num_banks)``), otherwise the matching bank of channel 1
    (``[banks_per_channel, banks_per_channel + num_banks)`` — the
    default organization's flat-to-channel fold).
    """
    if not 0.5 <= hot_share < 1.0:
        raise ValueError(
            f"hot_share must be in [0.5, 1.0) to skew, got {hot_share}"
        )
    if accesses_per_row <= 0:
        raise ValueError("accesses_per_row must be positive")
    rng = default_rng(seed)
    traces = []
    for core in range(num_cores):
        gaps = _gaps(rng, num_requests, mean_gap)
        writes = [v < write_fraction for v in rng.random(num_requests)]
        entries = []
        bank = row = 0
        for i in range(num_requests):
            if i % accesses_per_row == 0:
                local = int(rng.integers(0, num_banks))
                hot = bool(rng.random() < hot_share)
                bank = local if hot else banks_per_channel + local
                row = int(rng.integers(0, rows_per_bank))
            entries.append(
                TraceEntry(
                    gap_cycles=int(gaps[i]),
                    bank_index=bank,
                    row=row,
                    column=i % 128,
                    is_write=bool(writes[i]),
                    instructions=int(gaps[i]) + 1,
                )
            )
        traces.append(
            CoreTrace(
                name=f"core{core}-channel-imbalanced",
                entries=entries,
                memory_intensive=True,
            )
        )
    return traces


def design_violations(
    kind: str,
    traces: Sequence[CoreTrace],
    organization: Optional[DramOrganization] = None,
) -> List[str]:
    """Check a materialized family against :data:`DESIGN_TARGETS`.

    Returns human-readable violations (empty = the family hits its
    documented targets).  Used by the family regression tests and by
    ``repro traces synth --check``.
    """
    from repro.traces.characterize import (
        characterize_trace,
        characterize_workload,
    )

    try:
        targets = DESIGN_TARGETS[kind]
    except KeyError:
        raise KeyError(
            f"no design targets for workload kind {kind!r}; "
            f"known: {', '.join(sorted(DESIGN_TARGETS))}"
        ) from None
    merged = characterize_workload(traces, organization, name=kind)
    violations = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            violations.append(message)

    if "act_per_access_min" in targets:
        bound = targets["act_per_access_min"]
        require(
            merged.act_per_access >= bound,
            f"act_per_access {merged.act_per_access:.3f} < {bound}",
        )
    if "mean_burst_length_max" in targets:
        bound = targets["mean_burst_length_max"]
        require(
            merged.mean_burst_length <= bound,
            f"mean_burst_length {merged.mean_burst_length:.2f} > {bound}",
        )
    if "bank_imbalance_max" in targets:
        bound = targets["bank_imbalance_max"]
        require(
            merged.bank_imbalance <= bound,
            f"bank_imbalance {merged.bank_imbalance:.2f} > {bound}",
        )
    if "bank_imbalance_min" in targets:
        bound = targets["bank_imbalance_min"]
        require(
            merged.bank_imbalance >= bound,
            f"bank_imbalance {merged.bank_imbalance:.2f} < {bound}",
        )
    if "channel_share_top_min" in targets:
        bound = targets["channel_share_top_min"]
        require(
            merged.channel_share_top >= bound,
            f"channel_share_top {merged.channel_share_top:.2f} < {bound}",
        )
    if "banks_touched_max_pair_fraction" in targets:
        limit = math.ceil(
            len(traces) / 2 * targets["banks_touched_max_pair_fraction"]
        )
        require(
            merged.banks_touched <= limit,
            f"banks_touched {merged.banks_touched} > {limit} "
            f"(ceil(cores/2))",
        )
    if "per_core_mean_burst_min" in targets:
        bound = targets["per_core_mean_burst_min"]
        for trace in traces:
            single = characterize_trace(trace, organization)
            require(
                single.mean_burst_length >= bound,
                f"{trace.name}: per-core mean burst "
                f"{single.mean_burst_length:.2f} < {bound}",
            )
    return violations
