"""Trace ingestion: geometry normalization and TraceSet manifests.

Ingestion turns external or generated traces into first-class
workloads with two guarantees:

* **geometry** — every entry fits the active
  :class:`~repro.params.DramOrganization` (bank, row and column in
  range).  ``strict`` validation raises :class:`TraceGeometryError`
  naming the first offender; ``clamp`` normalization wraps
  out-of-range coordinates modulo the geometry (the same fold the
  simulator applies to ``bank_index``, extended to rows and columns so
  characterization sees what the simulator will see).  Negative values
  are always errors — they are corrupt input, not a bigger device.

* **provenance** — a :class:`TraceSet` bundles one trace per core with
  a ``manifest.json`` recording where each came from (source file,
  reader, mapping policy, or generator and parameters), the geometry
  it was normalized to, and a sha256 per trace file.  Loading verifies
  the digests, so a manifest is also an integrity check, and the
  set-level content digest is what ``trace:<path>`` jobs fold into
  their cache key (:func:`repro.engine.catalog.traceset_spec`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.params import DEFAULT_CONFIG, DramOrganization
from repro.traces.readers import WRITERS, read_trace
from repro.workloads.trace import CoreTrace, TraceEntry

MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA = "repro-traceset-v1"


class TraceGeometryError(ValueError):
    """A trace entry that does not fit the device geometry."""


def _geometry(organization: DramOrganization) -> Dict[str, int]:
    return {
        "num_banks": organization.total_banks,
        "rows_per_bank": organization.rows_per_bank,
        "columns_per_row": organization.columns_per_row,
    }


def normalize_trace(
    trace: CoreTrace,
    organization: Optional[DramOrganization] = None,
    mode: str = "clamp",
) -> CoreTrace:
    """Fit one trace to the geometry; see the module docstring.

    ``mode="clamp"`` wraps out-of-range coordinates modulo the
    geometry and returns a new trace (or the original object when
    nothing changes); ``mode="strict"`` raises
    :class:`TraceGeometryError` instead.
    """
    if mode not in ("clamp", "strict"):
        raise ValueError(f"mode must be 'clamp' or 'strict', got {mode!r}")
    org = organization or DEFAULT_CONFIG.organization
    banks, rows, cols = (
        org.total_banks, org.rows_per_bank, org.columns_per_row
    )
    entries: List[TraceEntry] = []
    changed = False
    for index, entry in enumerate(trace.entries):
        for value, what in (
            (entry.bank_index, "bank_index"),
            (entry.row, "row"),
            (entry.column, "column"),
            (entry.gap_cycles, "gap_cycles"),
            (entry.instructions, "instructions"),
        ):
            if value < 0:
                raise TraceGeometryError(
                    f"trace {trace.name!r} entry {index}: negative "
                    f"{what} ({value})"
                )
        fits = (
            entry.bank_index < banks
            and entry.row < rows
            and entry.column < cols
        )
        if fits:
            entries.append(entry)
            continue
        if mode == "strict":
            raise TraceGeometryError(
                f"trace {trace.name!r} entry {index}: "
                f"(bank={entry.bank_index}, row={entry.row}, "
                f"column={entry.column}) outside geometry "
                f"(banks={banks}, rows={rows}, columns={cols})"
            )
        changed = True
        entries.append(
            TraceEntry(
                gap_cycles=entry.gap_cycles,
                bank_index=entry.bank_index % banks,
                row=entry.row % rows,
                column=entry.column % cols,
                is_write=entry.is_write,
                instructions=entry.instructions,
            )
        )
    if not changed:
        return trace
    return CoreTrace(
        name=trace.name,
        entries=entries,
        memory_intensive=trace.memory_intensive,
    )


def normalize_traces(
    traces: Sequence[CoreTrace],
    organization: Optional[DramOrganization] = None,
    mode: str = "clamp",
) -> List[CoreTrace]:
    return [normalize_trace(t, organization, mode) for t in traces]


# ----------------------------------------------------------------------
# TraceSet
# ----------------------------------------------------------------------


def _sha256_file(path: Path) -> str:
    """sha256 of a trace file's *logical* content.

    ``.gz`` files hash their decompressed stream: DEFLATE output
    differs between zlib implementations (zlib-ng vs classic), so
    hashing compressed bytes would make committed manifests
    platform-dependent.  Corrupt gzip containers still fail loudly —
    decompression raises before a digest is produced.
    """
    from repro.workloads.trace import open_trace_file

    digest = hashlib.sha256()
    with open_trace_file(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "-" for c in name)


@dataclass
class TraceSet:
    """A multi-core workload: per-core traces plus provenance metadata."""

    name: str
    traces: List[CoreTrace]
    provenance: Dict[str, Any] = field(default_factory=dict)
    geometry: Dict[str, int] = field(
        default_factory=lambda: _geometry(DEFAULT_CONFIG.organization)
    )

    def digest(self) -> str:
        """Content hash over every entry of every core trace.

        Format-independent (a jsonl and a binary serialization of the
        same traces digest alike); ``trace:<path>`` jobs carry it so a
        rewritten TraceSet never satisfies a stale cache entry.
        """
        payload = hashlib.sha256()
        for trace in self.traces:
            payload.update(trace.name.encode())
            payload.update(b"\0")
            payload.update(b"\1" if trace.memory_intensive else b"\0")
            for e in trace.entries:
                payload.update(
                    (
                        f"{e.gap_cycles},{e.bank_index},{e.row},"
                        f"{e.column},{int(e.is_write)},{e.instructions};"
                    ).encode()
                )
        return payload.hexdigest()[:16]

    def save(self, directory, format: str = "jsonl",
             compress: bool = False) -> Path:
        """Write the set as ``<directory>/manifest.json`` + trace files.

        ``format`` picks the per-core serialization (any
        :data:`~repro.traces.readers.WRITERS` key); ``compress`` adds a
        deterministic ``.gz`` layer.  Returns the manifest path.
        """
        if format not in WRITERS:
            raise KeyError(
                f"unknown trace format {format!r}; "
                f"known: {', '.join(sorted(WRITERS))}"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Files a previous save left behind must not outlive a manifest
        # that no longer covers them (fewer cores, different format).
        manifest_path = directory / MANIFEST_NAME
        stale = set()
        if manifest_path.is_file():
            try:
                previous = json.loads(manifest_path.read_text())
                stale = {core["file"] for core in previous["cores"]}
            except (ValueError, KeyError, TypeError):
                stale = set()
        extension = {"jsonl": ".jsonl", "binary": ".bin"}[format]
        if compress:
            extension += ".gz"
        cores = []
        for index, trace in enumerate(self.traces):
            filename = f"core{index:02d}-{_safe_name(trace.name)}{extension}"
            path = directory / filename
            WRITERS[format](trace, path)
            cores.append(
                {
                    "file": filename,
                    "format": format,
                    "name": trace.name,
                    "requests": len(trace.entries),
                    "sha256": _sha256_file(path),
                }
            )
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "name": self.name,
            "digest": self.digest(),
            "geometry": dict(self.geometry),
            "provenance": self.provenance,
            "cores": cores,
        }
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        for orphan in stale - {core["file"] for core in cores}:
            try:
                (directory / orphan).unlink()
            except OSError:
                pass
        return manifest_path

    @classmethod
    def load(cls, directory, verify: bool = True) -> "TraceSet":
        """Load a set from its directory, verifying per-file digests."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"{directory} has no {MANIFEST_NAME} (not a TraceSet)"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"{manifest_path}: unsupported schema "
                f"{manifest.get('schema')!r} (expected {MANIFEST_SCHEMA!r})"
            )
        traces = []
        for core in manifest["cores"]:
            path = directory / core["file"]
            if verify:
                actual = _sha256_file(path)
                if actual != core["sha256"]:
                    raise ValueError(
                        f"{path}: sha256 mismatch (manifest "
                        f"{core['sha256'][:12]}…, file {actual[:12]}…) — "
                        "TraceSet corrupt or edited without re-ingesting"
                    )
            traces.append(read_trace(path, format=core["format"]))
        return cls(
            name=manifest["name"],
            traces=traces,
            provenance=manifest.get("provenance", {}),
            geometry=manifest.get("geometry", {}),
        )


def ingest_files(
    inputs: Sequence,
    name: str,
    organization: Optional[DramOrganization] = None,
    format: Optional[str] = None,
    mapping: Optional[str] = None,
    mode: str = "clamp",
) -> TraceSet:
    """Read one trace per input file into a normalized TraceSet."""
    from repro.traces.mapping import DEFAULT_MAPPING

    org = organization or DEFAULT_CONFIG.organization
    mapping = mapping or DEFAULT_MAPPING
    traces = []
    sources = []
    for path in inputs:
        trace = read_trace(
            path, format=format, organization=org, mapping=mapping
        )
        traces.append(normalize_trace(trace, org, mode))
        sources.append(
            {
                "source": str(path),
                "reader": format or "auto",
                "mapping": mapping,
            }
        )
    if not traces:
        raise ValueError("ingest needs at least one input trace")
    return TraceSet(
        name=name,
        traces=traces,
        provenance={"kind": "ingested", "normalize": mode,
                    "sources": sources},
        geometry=_geometry(org),
    )


# ----------------------------------------------------------------------
# the trace:<path> workload builder
# ----------------------------------------------------------------------


def load_trace_workload(path) -> List[CoreTrace]:
    """TraceSet directory or single trace file -> per-core traces."""
    path = Path(path)
    if path.is_dir():
        return TraceSet.load(path).traces
    return [read_trace(path)]


def build_trace_workload(
    path,
    max_requests: Optional[int] = None,
    num_banks: Optional[int] = None,
    digest: Optional[str] = None,
    scale: float = 1.0,
) -> List[CoreTrace]:
    """The ``trace:<path>`` catalog builder.

    ``max_requests`` truncates each core (CI-sized runs of big traces);
    ``num_banks`` re-folds bank indices for a narrower geometry;
    ``digest`` and ``scale`` only salt the job hash — the digest pins
    the file contents into the cache key, and scale keeps the catalog's
    uniform builder signature (an ingested trace has a fixed length).
    """
    traces = load_trace_workload(path)
    if max_requests is not None:
        traces = [
            CoreTrace(
                name=t.name,
                entries=t.entries[: max(1, int(max_requests))],
                memory_intensive=t.memory_intensive,
            )
            for t in traces
        ]
    if num_banks is not None:
        folded = []
        for t in traces:
            entries = [
                e if e.bank_index < num_banks else TraceEntry(
                    gap_cycles=e.gap_cycles,
                    bank_index=e.bank_index % num_banks,
                    row=e.row,
                    column=e.column,
                    is_write=e.is_write,
                    instructions=e.instructions,
                )
                for e in t.entries
            ]
            folded.append(
                CoreTrace(name=t.name, entries=entries,
                          memory_intensive=t.memory_intensive)
            )
        traces = folded
    return traces
