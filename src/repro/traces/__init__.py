"""Trace foundry: workload ingestion, characterization, stress families.

The subsystem that makes external and generated traces first-class
workloads (docs/WORKLOADS.md):

* :mod:`repro.traces.readers` — pluggable format registry (native
  jsonl, compact binary columnar with gzip, DRAMsim3-style CSV);
* :mod:`repro.traces.mapping` — address-to-(bank, row, column)
  decode policies for byte-addressed trace formats;
* :mod:`repro.traces.ingest` — geometry validation/normalization and
  the :class:`TraceSet` manifest (per-core traces + provenance);
* :mod:`repro.traces.characterize` — ACT-stream statistics
  (row-locality CDF, bank imbalance, hot-row skew, MPKI proxy);
* :mod:`repro.traces.families` — the capacity-pressure,
  row-conflict-heavy and multi-channel-imbalanced stress generators
  with their asserted design targets.

Everything here plugs into the experiment engine: the families
register as catalog kinds, and any saved TraceSet runs through
``run_jobs()`` as a ``trace:<path>`` job
(:func:`repro.engine.catalog.traceset_spec`).
"""

from repro.traces.characterize import (
    TraceCharacterization,
    characterize_trace,
    characterize_traceset,
    characterize_workload,
)
from repro.traces.families import (
    DESIGN_TARGETS,
    capacity_pressure,
    design_violations,
    multi_channel_imbalanced,
    row_conflict_heavy,
)
from repro.traces.ingest import (
    TraceGeometryError,
    TraceSet,
    build_trace_workload,
    ingest_files,
    load_trace_workload,
    normalize_trace,
    normalize_traces,
)
from repro.traces.mapping import (
    DEFAULT_MAPPING,
    map_address,
    mapping_names,
    register_mapping,
)
from repro.traces.readers import (
    detect_format,
    get_reader,
    read_trace,
    reader_names,
    register_reader,
    write_binary,
    write_jsonl,
)

__all__ = [
    "TraceCharacterization",
    "characterize_trace",
    "characterize_traceset",
    "characterize_workload",
    "DESIGN_TARGETS",
    "design_violations",
    "capacity_pressure",
    "row_conflict_heavy",
    "multi_channel_imbalanced",
    "TraceGeometryError",
    "TraceSet",
    "build_trace_workload",
    "ingest_files",
    "load_trace_workload",
    "normalize_trace",
    "normalize_traces",
    "DEFAULT_MAPPING",
    "map_address",
    "mapping_names",
    "register_mapping",
    "detect_format",
    "get_reader",
    "read_trace",
    "reader_names",
    "register_reader",
    "write_binary",
    "write_jsonl",
]
