"""ACT-stream characterization of traces and workloads.

The metrics that decide how a workload stresses a RowHammer mitigation
(BlockHammer and Graphene both rank differently at the extremes of
these axes):

* **row locality** — burst lengths (consecutive same-(bank, row)
  requests) and their CDF: what fraction of requests live in bursts of
  at most 1, 2, 4, ... accesses.  Short bursts mean every access is an
  ACT; long bursts amortize one ACT over a whole row sweep.
* **ACT-per-access** — the idealized open-row-buffer miss rate of the
  merged stream (the amplification Figure 8 reasons about).
* **bank pressure** — per-bank imbalance (busiest bank over the mean
  of the banks touched) and the busiest channel's request share under
  the active organization's flat-bank-to-channel fold.
* **hot-row skew** — the top-1 and top-8 (bank, row) shares of the
  stream; what per-row trackers and blacklists key on.
* **MPKI proxy** — memory requests per kilo-instruction from the
  traces' own instruction counts (generated traces carry real gap
  proxies; ingested CSV traces inherit gap-derived counts).

:func:`characterize_workload` merges per-core traces round-robin —
the same arrival interleaving approximation
:func:`repro.workloads.stats.profile_traces` uses — so aggregate
numbers describe what the memory controller sees, while
:func:`characterize_trace` scores a single core in isolation.

The new stress families (:mod:`repro.traces.families`) assert their
design targets against these exact metrics, so the characterization
doubles as the families' regression harness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.params import DEFAULT_CONFIG, DramOrganization
from repro.workloads.trace import (
    CoreTrace,
    TraceEntry,
    interleave_round_robin,
)

#: Burst-length buckets of the row-locality CDF.
CDF_POINTS = (1, 2, 4, 8, 16, 32)


@dataclass
class TraceCharacterization:
    """Characterization of one request stream (a core or a merge)."""

    name: str
    requests: int
    write_fraction: float
    total_instructions: int
    mpki_proxy: float               #: requests per 1000 instructions
    footprint_rows: int             #: distinct (bank, row) locations
    banks_touched: int
    bank_imbalance: float           #: max/mean requests per touched bank
    channel_share_top: float        #: busiest channel's request share
    act_per_access: float           #: open-row-model miss rate
    mean_burst_length: float
    max_burst_length: int
    row_locality_cdf: Dict[int, float]  #: P(request in burst <= k)
    hot_row_top1_share: float
    hot_row_top8_share: float

    @property
    def hottest_row_share(self) -> float:
        """Alias matching :class:`~repro.workloads.stats.WorkloadProfile`
        (so :func:`expected_tracker_spread` accepts either)."""
        return self.hot_row_top1_share

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "requests": self.requests,
            "write_fraction": round(self.write_fraction, 4),
            "total_instructions": self.total_instructions,
            "mpki_proxy": round(self.mpki_proxy, 2),
            "footprint_rows": self.footprint_rows,
            "banks_touched": self.banks_touched,
            "bank_imbalance": round(self.bank_imbalance, 3),
            "channel_share_top": round(self.channel_share_top, 4),
            "act_per_access": round(self.act_per_access, 4),
            "mean_burst_length": round(self.mean_burst_length, 2),
            "max_burst_length": self.max_burst_length,
            "row_locality_cdf": {
                k: round(v, 4) for k, v in self.row_locality_cdf.items()
            },
            "hot_row_top1_share": round(self.hot_row_top1_share, 4),
            "hot_row_top8_share": round(self.hot_row_top8_share, 4),
        }


def _characterize_entries(
    name: str,
    entries: Sequence[TraceEntry],
    total_instructions: int,
    organization: Optional[DramOrganization] = None,
) -> TraceCharacterization:
    if not entries:
        raise ValueError(f"stream {name!r} contains no requests")
    org = organization or DEFAULT_CONFIG.organization
    total_banks = org.total_banks
    banks_per_channel = org.ranks_per_channel * org.banks_per_rank

    locations = [(e.bank_index % total_banks, e.row) for e in entries]
    row_counts = Counter(locations)
    bank_counts = Counter(bank for bank, _row in locations)
    channel_counts = Counter(
        bank // banks_per_channel for bank in bank_counts.elements()
    )

    # burst lengths over the merged stream, then the request-weighted
    # CDF: a burst of length L contributes L requests to every bucket
    # k >= L.
    bursts: List[int] = []
    run = 1
    for previous, location in zip(locations, locations[1:]):
        if location == previous:
            run += 1
        else:
            bursts.append(run)
            run = 1
    bursts.append(run)
    total = len(entries)
    cdf = {
        k: sum(length for length in bursts if length <= k) / total
        for k in CDF_POINTS
    }

    open_row: Dict[int, int] = {}
    misses = 0
    for bank, row in locations:
        if open_row.get(bank) != row:
            misses += 1
        open_row[bank] = row

    top = row_counts.most_common(8)
    writes = sum(1 for e in entries if e.is_write)
    mean_per_bank = total / max(1, len(bank_counts))
    return TraceCharacterization(
        name=name,
        requests=total,
        write_fraction=writes / total,
        total_instructions=total_instructions,
        mpki_proxy=1000.0 * total / max(1, total_instructions),
        footprint_rows=len(row_counts),
        banks_touched=len(bank_counts),
        bank_imbalance=max(bank_counts.values()) / mean_per_bank,
        channel_share_top=max(channel_counts.values()) / total,
        act_per_access=misses / total,
        mean_burst_length=sum(bursts) / len(bursts),
        max_burst_length=max(bursts),
        row_locality_cdf=cdf,
        hot_row_top1_share=top[0][1] / total,
        hot_row_top8_share=sum(count for _loc, count in top) / total,
    )


def characterize_trace(
    trace: CoreTrace,
    organization: Optional[DramOrganization] = None,
) -> TraceCharacterization:
    """Characterize one core's stream in isolation."""
    return _characterize_entries(
        trace.name, trace.entries, trace.total_instructions, organization
    )


def characterize_workload(
    traces: Iterable[CoreTrace],
    organization: Optional[DramOrganization] = None,
    name: str = "workload",
) -> TraceCharacterization:
    """Characterize the round-robin merge of a multi-core workload."""
    traces = list(traces)
    return _characterize_entries(
        name,
        interleave_round_robin(traces),
        sum(t.total_instructions for t in traces),
        organization,
    )


def characterize_traceset(
    traceset,
    organization: Optional[DramOrganization] = None,
) -> Tuple[TraceCharacterization, List[TraceCharacterization]]:
    """(aggregate, per-core) characterizations of a TraceSet."""
    aggregate = characterize_workload(
        traceset.traces, organization, name=traceset.name
    )
    per_core = [
        characterize_trace(trace, organization) for trace in traceset.traces
    ]
    return aggregate, per_core
