"""Address-to-(bank, row, column) mapping policies.

External traces (DRAMsim3-style CSVs, raw physical-address logs) carry
byte addresses; the simulator wants ``(flat bank, row, column)``
coordinates.  A *mapping policy* is the controller's address-decode
choice, and it materially changes the ACT stream a trace produces —
bank-interleaved low bits spread a sequential sweep across banks while
row-major low bits turn it into one long per-bank burst — so the
policy is recorded in TraceSet provenance next to the source file.

Policies are registered by name (:func:`register_mapping`) and decode
one cacheline-aligned address at a time against a
:class:`~repro.params.DramOrganization`::

    bank, row, column = map_address("row-bank-col", 0x2AB348A1C0, org)

The flat bank index is the simulator's ``entry.bank_index`` space
(``channel * ranks_per_channel * banks_per_rank + ...``), so decoded
traces drop straight into :class:`~repro.workloads.trace.TraceEntry`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.params import DramOrganization

#: A policy maps (cacheline block index, organization) -> coordinates.
MappingPolicy = Callable[[int, DramOrganization], Tuple[int, int, int]]

_MAPPINGS: Dict[str, MappingPolicy] = {}

#: The default policy: what commodity controllers ship (bank bits low,
#: adjacent cachelines stripe across banks before moving rows).
DEFAULT_MAPPING = "row-bank-col"


def register_mapping(name: str):
    """Decorator registering an address-mapping policy under ``name``."""

    def decorator(policy: MappingPolicy) -> MappingPolicy:
        _MAPPINGS[name] = policy
        return policy

    return decorator


def mapping_names() -> List[str]:
    return sorted(_MAPPINGS)


def get_mapping(name: str) -> MappingPolicy:
    try:
        return _MAPPINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown mapping policy {name!r}; "
            f"known: {', '.join(mapping_names())}"
        ) from None


def map_address(
    name: str, address: int, organization: DramOrganization
) -> Tuple[int, int, int]:
    """Decode a byte ``address`` into (flat bank, row, column)."""
    if address < 0:
        raise ValueError(f"address must be non-negative, got {address}")
    block = address // organization.cacheline_bytes
    return get_mapping(name)(block, organization)


@register_mapping("row-bank-col")
def _row_bank_col(
    block: int, org: DramOrganization
) -> Tuple[int, int, int]:
    """column low, bank middle, row high — bank-interleaved sweeps."""
    column = block % org.columns_per_row
    block //= org.columns_per_row
    bank = block % org.total_banks
    row = (block // org.total_banks) % org.rows_per_bank
    return bank, row, column


@register_mapping("bank-row-col")
def _bank_row_col(
    block: int, org: DramOrganization
) -> Tuple[int, int, int]:
    """column low, row middle, bank high — contiguous per-bank regions.

    A sequential sweep stays inside one bank for a whole
    rows-per-bank span (the NUMA-style partitioned layout).
    """
    column = block % org.columns_per_row
    block //= org.columns_per_row
    row = block % org.rows_per_bank
    bank = (block // org.rows_per_bank) % org.total_banks
    return bank, row, column


@register_mapping("xor-bank")
def _xor_bank(block: int, org: DramOrganization) -> Tuple[int, int, int]:
    """row-bank-col with the bank index XOR-permuted by low row bits.

    The permutation-based interleaving many controllers use to break
    pathological bank-conflict strides; two addresses in the same row
    still share a bank, but stride patterns no longer pin one bank.
    """
    bank, row, column = _row_bank_col(block, org)
    return (bank ^ row) % org.total_banks, row, column
