"""Shared small types used across the simulator and the mitigation schemes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class CommandKind(enum.Enum):
    """DRAM command types visible on the MC-DRAM interface."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"              #: periodic auto-refresh
    RFM = "RFM"              #: refresh management (row-agnostic time margin)
    ARR = "ARR"              #: legacy adjacent-row refresh (row-targeted)


@dataclass(frozen=True, order=True, slots=True)
class BankAddress:
    """Globally unique bank coordinate."""

    channel: int
    rank: int
    bank: int

    def flat_index(self, ranks_per_channel: int, banks_per_rank: int) -> int:
        return (self.channel * ranks_per_channel + self.rank) * banks_per_rank + self.bank


@dataclass(frozen=True, order=True, slots=True)
class RowAddress:
    """A DRAM row, identified by its bank and row index."""

    bank: BankAddress
    row: int

    def neighbor(self, offset: int, rows_per_bank: int) -> Optional["RowAddress"]:
        """The physically adjacent row at ``offset`` (None past array edge)."""
        target = self.row + offset
        if target < 0 or target >= rows_per_bank:
            return None
        return RowAddress(self.bank, target)


@dataclass(slots=True)
class MemoryRequest:
    """A post-LLC memory request as seen by the memory controller.

    One instance is allocated per issued trace entry, so the class is
    slotted: the event loop's allocation rate is dominated by these.
    """

    core: int
    arrival_cycle: int
    address: RowAddress
    column: int = 0
    is_write: bool = False
    #: filled in by the simulator: cycle at which the data transfer finished
    completion_cycle: Optional[int] = None

    @property
    def is_read(self) -> bool:
        return not self.is_write


@dataclass(slots=True)
class PreventiveRefresh:
    """A preventive refresh performed for RowHammer protection.

    ``victims`` are the rows whose charge is restored.  ``trigger`` notes
    which command created the opportunity (RFM, ARR, or hidden-in-REF).
    """

    cycle: int
    victims: tuple
    trigger: CommandKind = CommandKind.RFM
    aggressor: Optional[RowAddress] = None


class SchemeLocation(enum.Enum):
    """Where a protection scheme is implemented (Table I)."""

    MC = "memory-controller"
    DRAM = "dram"
    BUFFER_CHIP = "buffer-chip"


@dataclass(slots=True)
class EnergyCounts:
    """Event counts from which dynamic energy is derived."""

    acts: int = 0
    pres: int = 0
    reads: int = 0
    writes: int = 0
    auto_refreshes: int = 0
    rfm_commands: int = 0
    preventive_refresh_rows: int = 0
    mrr_commands: int = 0

    def merged(self, other: "EnergyCounts") -> "EnergyCounts":
        return EnergyCounts(
            acts=self.acts + other.acts,
            pres=self.pres + other.pres,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            auto_refreshes=self.auto_refreshes + other.auto_refreshes,
            rfm_commands=self.rfm_commands + other.rfm_commands,
            preventive_refresh_rows=self.preventive_refresh_rows
            + other.preventive_refresh_rows,
            mrr_commands=self.mrr_commands + other.mrr_commands,
        )
