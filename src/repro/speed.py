"""Simulator speed benchmark: the events/sec trajectory of `simulate()`.

Wall-clock per simulated event is the binding constraint on how many
workload x scheme x threshold points the reproduction can sweep, so
this module times representative pairs and records the trajectory in
``BENCH_SIM_SPEED.json``.  Each run appends one labelled entry::

    {
      "label": "optimized",          # e.g. "baseline" / "optimized"
      "preset": "medium",
      "timestamp": "2026-07-27T12:34:56Z",
      "rows": [{"scheme", "workload", "events", "wall_s",
                "events_per_sec"}, ...],
      "total_events": ..., "total_wall_s": ...,
      "aggregate_events_per_sec": ...
    }

Timing covers :func:`repro.sim.system.simulate` only — workload
materialization and scheme-factory construction happen outside the
timed region, mirroring what the engine executor amortizes away.

Two presets:

* ``tiny`` — a seconds-long smoke run for CI (timing non-gating there;
  the determinism of the accompanying results is what CI asserts).
* ``medium`` — the regression yardstick: a sweep large enough that
  events/sec is stable run-to-run on an idle machine.

Entry points: ``python -m repro.cli bench-speed`` and the standalone
``benchmarks/bench_speed.py`` wrapper.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: (workload kind, workload params, scheme) pairs per preset.  The
#: pairs cover the distinct hot paths: the bare event loop ("none"),
#: CbS-tracker ARR (graphene), CbS + RFM (mithril/mithril+), and
#: Bloom-filter throttling (blockhammer), on both multiprogrammed and
#: multithreaded access patterns plus an attack mix.
_PAIRS: Dict[str, List[Tuple[str, Dict[str, object], str]]] = {
    "tiny": [
        ("mix-high", {"seed": 11}, "none"),
        ("mix-high", {"seed": 11}, "mithril"),
        ("fft", {"seed": 21}, "graphene"),
        ("attack", {"pattern": "multi-sided", "seed": 31}, "blockhammer"),
    ],
    "medium": [
        ("mix-high", {"seed": 11}, "none"),
        ("mix-high", {"seed": 11}, "mithril"),
        ("mix-high", {"seed": 11}, "blockhammer"),
        ("mix-blend", {"seed": 12}, "mithril+"),
        ("fft", {"seed": 21}, "none"),
        ("fft", {"seed": 21}, "graphene"),
        ("radix", {"seed": 22}, "mithril"),
        ("pagerank", {"seed": 23}, "blockhammer"),
        ("attack", {"pattern": "multi-sided", "seed": 31}, "mithril"),
        ("attack", {"pattern": "multi-sided", "seed": 31}, "blockhammer"),
    ],
}

#: Trace-length multiplier per preset (catalog ``scale``).
_PRESET_SCALE = {"tiny": 0.25, "medium": 1.0}

#: FlipTH used for every pair (mid-range paper value).
BENCH_FLIP_TH = 6_250

DEFAULT_OUTPUT = "BENCH_SIM_SPEED.json"


def preset_names() -> List[str]:
    return sorted(_PAIRS)


@dataclass
class SpeedRow:
    """One timed workload x scheme pair."""

    scheme: str
    workload: str
    events: int
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
        }


def _bench_jobs(preset: str):
    from repro.engine.job import SimJob, WorkloadSpec

    scale = _PRESET_SCALE[preset]
    jobs = []
    for kind, params, scheme in _PAIRS[preset]:
        spec = WorkloadSpec.make(kind, scale=scale, **params)
        jobs.append(
            SimJob(workload=spec, scheme=scheme, flip_th=BENCH_FLIP_TH,
                   scale=scale)
        )
    return jobs


def run_preset(preset: str, backend: Optional[str] = None) -> List[SpeedRow]:
    """Time every pair of ``preset``; returns one row per pair.

    ``backend`` selects the simulation backend (scalar / turbo; None
    follows ``REPRO_SIM_BACKEND``).  The timed region is the whole
    ``simulate()`` call — system construction included, so the turbo
    backend's SoA decode pays its way inside the measurement.

    The simulation *results* are intentionally discarded here — the
    equivalence suite (tests/integration/test_golden_equivalence.py)
    owns correctness; this harness owns wall-clock.
    """
    if preset not in _PAIRS:
        raise ValueError(
            f"unknown preset {preset!r}; use one of {preset_names()}"
        )
    from repro import telemetry
    from repro.engine.executor import materialize_job
    from repro.sim.system import simulate

    tel = telemetry.get()
    timers_before = (
        dict(tel.registry.timers) if tel is not None else {}
    )
    rows = []
    for job in _bench_jobs(preset):
        traces, factory, config, rfm_th = materialize_job(job)
        events = sum(len(trace) for trace in traces)
        start = time.perf_counter()
        simulate(
            traces,
            scheme_factory=factory,
            config=config,
            rfm_th=rfm_th,
            flip_th=job.flip_th,
            mlp=job.mlp,
            track_hammer=job.track_hammer,
            backend=backend,
        )
        wall = time.perf_counter() - start
        rows.append(
            SpeedRow(
                scheme=job.scheme,
                workload=job.workload.kind,
                events=events,
                wall_s=wall,
            )
        )
    # Per-phase attribution (span-name -> seconds spent during this
    # preset), published like ``run_jobs.last_stats``: empty unless
    # REPRO_TELEMETRY is on, so the disabled bench path is unchanged.
    run_preset.last_timing = {
        name: round(total - timers_before.get(name, 0.0), 6)
        for name, total in (
            tel.registry.timers.items() if tel is not None else ()
        )
        if total - timers_before.get(name, 0.0) > 0.0
    }
    return rows


#: Span-second deltas of the most recent :func:`run_preset` call
#: (empty when telemetry is off).
run_preset.last_timing = {}


def make_entry(
    preset: str,
    label: str,
    rows: List[SpeedRow],
    backend: Optional[str] = None,
) -> Dict:
    total_events = sum(row.events for row in rows)
    total_wall = sum(row.wall_s for row in rows)
    entry = {
        "label": label,
        "preset": preset,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": [row.as_dict() for row in rows],
        "total_events": total_events,
        "total_wall_s": round(total_wall, 4),
        "aggregate_events_per_sec": (
            round(total_events / total_wall, 1) if total_wall > 0 else 0.0
        ),
    }
    if backend is not None:
        entry["backend"] = backend
    # Where the time went (telemetry span totals), so a speedup entry
    # records *which phase* it came from, not just the aggregate wall
    # clock.  getattr: tests monkeypatch run_preset with bare stubs.
    timing = getattr(run_preset, "last_timing", None)
    if timing:
        entry["timing_breakdown"] = dict(timing)
    return entry


class UncontrolledSpeedClaim(ValueError):
    """A ``*-controlled`` entry appended without its back-to-back pair."""


def controlled_pair_violation(record: Dict, entry: Dict) -> Optional[str]:
    """Why ``entry`` would break the ``*-controlled`` hygiene rule.

    The trajectory's honesty convention (docs/ENGINE.md): a label
    ending in ``-controlled`` claims a back-to-back measurement, so a
    non-baseline controlled entry must land immediately after a
    ``baseline-controlled`` entry of the same preset — this machine's
    CPU phase swings >2x over minutes, and anything else is a
    cross-phase comparison wearing a controlled label.  Returns a
    human-readable violation, or None when the append is clean.
    """
    label = str(entry.get("label") or "")
    if not label.endswith("-controlled") or label == "baseline-controlled":
        return None
    entries = record.get("entries") or []
    previous = entries[-1] if entries else None
    if previous is None:
        return (
            f"entry {label!r} claims a controlled measurement but the "
            "trajectory is empty — append its 'baseline-controlled' "
            "partner first, back-to-back"
        )
    if previous.get("label") != "baseline-controlled":
        return (
            f"entry {label!r} claims a controlled measurement but the "
            f"immediately preceding entry is {previous.get('label')!r}, "
            "not 'baseline-controlled' — controlled pairs must be "
            "appended back-to-back"
        )
    if previous.get("preset") != entry.get("preset"):
        return (
            f"entry {label!r} (preset {entry.get('preset')!r}) does not "
            "match the preceding 'baseline-controlled' entry's preset "
            f"({previous.get('preset')!r}) — a controlled pair must "
            "time the same preset"
        )
    return None


def append_entry(
    entry: Dict, output: Path, allow_uncontrolled: bool = False
) -> Dict:
    """Append ``entry`` to the trajectory file (created when missing).

    The write goes through a temp file + ``os.replace`` so an
    interrupted run can never truncate the accumulated trajectory;
    a file that is unreadable anyway is preserved under ``.corrupt``
    (with a warning) rather than silently discarded.

    ``*-controlled`` labels are policed: an entry claiming a
    controlled measurement that is not the back-to-back partner of a
    ``baseline-controlled`` entry raises
    :class:`UncontrolledSpeedClaim` (``allow_uncontrolled=True``
    downgrades the refusal to a warning).
    """
    import os
    import warnings

    record: Dict = {"entries": []}
    if output.exists():
        try:
            loaded = json.loads(output.read_text())
            if isinstance(loaded, dict) and isinstance(
                loaded.get("entries"), list
            ):
                record = loaded
        except ValueError:
            backup = output.with_suffix(output.suffix + ".corrupt")
            os.replace(output, backup)
            warnings.warn(
                f"speed trajectory {output} was not valid JSON; moved "
                f"to {backup} and starting a fresh trajectory",
                RuntimeWarning,
                stacklevel=2,
            )
    violation = controlled_pair_violation(record, entry)
    if violation is not None:
        if not allow_uncontrolled:
            raise UncontrolledSpeedClaim(
                violation + " (pass --allow-uncontrolled to record it "
                "anyway, clearly mislabelled)"
            )
        warnings.warn(
            f"recording an uncontrolled speed claim: {violation}",
            RuntimeWarning,
            stacklevel=2,
        )
    record["entries"].append(entry)
    tmp = output.with_suffix(f"{output.suffix}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(record, indent=2) + "\n")
    os.replace(tmp, output)
    return record


def _read_record(output: Path) -> Dict:
    """Best-effort read of the trajectory file (missing/corrupt → empty)."""
    if output.exists():
        try:
            loaded = json.loads(output.read_text())
            if isinstance(loaded, dict) and isinstance(
                loaded.get("entries"), list
            ):
                return loaded
        except ValueError:
            pass
    return {"entries": []}


def per_workload_speedups(
    baseline_entry: Dict, candidate_entry: Dict
) -> List[Dict[str, object]]:
    """Per-(workload, scheme) speedups of candidate over baseline.

    Attributes the aggregate claim: tracker-arena wins should show on
    tracker-bound pairs (blockhammer, attack mixes) and sit near
    parity on scheduler-bound ones — an aggregate alone can't tell
    those apart.  Rows are matched by (workload, scheme); rows missing
    from the baseline are skipped.
    """
    base_rate: Dict[Tuple[object, object], float] = {}
    for row in baseline_entry.get("rows") or []:
        base_rate[(row.get("workload"), row.get("scheme"))] = (
            row.get("events_per_sec") or 0.0
        )
    breakdown: List[Dict[str, object]] = []
    for row in candidate_entry.get("rows") or []:
        key = (row.get("workload"), row.get("scheme"))
        base = base_rate.get(key)
        if not base:
            continue
        breakdown.append(
            {
                "workload": key[0],
                "scheme": key[1],
                "speedup": round(
                    (row.get("events_per_sec") or 0.0) / base, 3
                ),
            }
        )
    return breakdown


def speedup_vs_label(record: Dict, entry: Dict, label: str) -> Optional[float]:
    """entry's aggregate events/sec over the latest ``label`` entry."""
    baselines = [
        e
        for e in record["entries"]
        if e is not entry
        and e.get("label") == label
        and e.get("preset") == entry.get("preset")
    ]
    if not baselines:
        return None
    base = baselines[-1].get("aggregate_events_per_sec") or 0.0
    if not base:
        return None
    return entry["aggregate_events_per_sec"] / base


def run_controlled_pairs(
    preset: str,
    pairs: int,
    candidate_label: str,
    output: Optional[Path] = None,
    baseline_backend: str = "scalar",
    candidate_backend: str = "turbo",
    allow_uncontrolled: bool = False,
) -> Dict:
    """Run N back-to-back (baseline, candidate) pairs; record the median.

    This container's CPU phase swings more than 2x between
    measurements, so a single back-to-back pair can land anywhere in
    that swing.  Each iteration times the full preset on the baseline
    backend and then immediately on the candidate backend; the pair
    whose aggregate speedup is the *median* of the N samples is the
    one recorded (both of its entries, back-to-back, satisfying the
    ``*-controlled`` hygiene guard), annotated with every sample so
    the spread stays visible.

    Returns ``{"baseline": entry, "candidate": entry, "samples": [...],
    "median_speedup": float}``.
    """
    if pairs < 1:
        raise ValueError(f"pairs must be >= 1, got {pairs}")
    if not candidate_label.endswith("-controlled"):
        raise ValueError(
            f"candidate label {candidate_label!r} must end in "
            "'-controlled' (the --pairs flow exists to make that "
            "claim honest)"
        )
    from repro.sim.backend import resolve_backend

    baseline_backend = resolve_backend(baseline_backend)
    candidate_backend = resolve_backend(candidate_backend)
    samples = []
    for i in range(pairs):
        baseline_rows = run_preset(preset, backend=baseline_backend)
        candidate_rows = run_preset(preset, backend=candidate_backend)
        baseline_entry = make_entry(
            preset, "baseline-controlled", baseline_rows,
            backend=baseline_backend,
        )
        candidate_entry = make_entry(
            preset, candidate_label, candidate_rows,
            backend=candidate_backend,
        )
        speedup = (
            candidate_entry["aggregate_events_per_sec"]
            / baseline_entry["aggregate_events_per_sec"]
        )
        candidate_entry["per_workload_speedup"] = per_workload_speedups(
            baseline_entry, candidate_entry
        )
        samples.append((speedup, baseline_entry, candidate_entry))
        print(
            f"pair {i + 1}/{pairs}: "
            f"{baseline_backend} "
            f"{baseline_entry['aggregate_events_per_sec']:.0f} ev/s, "
            f"{candidate_backend} "
            f"{candidate_entry['aggregate_events_per_sec']:.0f} ev/s "
            f"-> {speedup:.2f}x"
        )
    samples.sort(key=lambda sample: sample[0])
    median_speedup, baseline_entry, candidate_entry = (
        samples[(len(samples) - 1) // 2]
    )
    annotations = {
        "pairs_run": pairs,
        "speedup_samples": [round(s, 3) for s, _, _ in samples],
        "median_speedup": round(median_speedup, 3),
    }
    candidate_entry.update(annotations)
    baseline_entry["pairs_run"] = pairs
    print(f"\nmedian pair ({median_speedup:.2f}x):")
    print(format_entry(baseline_entry))
    print()
    print(format_entry(candidate_entry))
    if output is not None:
        append_entry(
            baseline_entry, Path(output),
            allow_uncontrolled=allow_uncontrolled,
        )
        append_entry(
            candidate_entry, Path(output),
            allow_uncontrolled=allow_uncontrolled,
        )
        print(f"\nappended median pair to {output}")
    return {
        "baseline": baseline_entry,
        "candidate": candidate_entry,
        "samples": [round(s, 3) for s, _, _ in samples],
        "median_speedup": median_speedup,
    }


def run_and_report(
    preset: str,
    label: str,
    output: Optional[Path] = None,
    allow_uncontrolled: bool = False,
    backend: Optional[str] = None,
) -> Dict:
    """Run a preset, print the table, record and report the speedup.

    The single driver behind both the ``repro bench-speed`` CLI
    subcommand and ``benchmarks/bench_speed.py``.  ``output=None``
    skips recording (measure-only runs).  Controlled-pair hygiene is
    enforced by :func:`append_entry`.
    """
    from repro.sim.backend import resolve_backend

    backend = resolve_backend(backend)  # annotate what actually ran
    rows = run_preset(preset, backend=backend)
    entry = make_entry(preset, label, rows, backend=backend)
    baseline_label = (
        "baseline-controlled"
        if str(label).endswith("-controlled")
        else "baseline"
    )
    if output is not None and baseline_label != label:
        # Attach the per-workload breakdown against the latest
        # recorded baseline of the same preset before appending, so
        # the persisted entry carries its own attribution.
        prior = [
            e
            for e in _read_record(Path(output))["entries"]
            if e.get("label") == baseline_label
            and e.get("preset") == preset
        ]
        if prior:
            breakdown = per_workload_speedups(prior[-1], entry)
            if breakdown:
                entry["per_workload_speedup"] = breakdown
    print(format_entry(entry))
    if output is not None:
        record = append_entry(
            entry, Path(output), allow_uncontrolled=allow_uncontrolled
        )
        print(f"\nappended entry to {output}")
        speedup = speedup_vs_label(record, entry, baseline_label)
        if speedup is not None:
            print(
                f"speedup vs latest {baseline_label!r} entry: "
                f"{speedup:.2f}x"
            )
    return entry


def format_entry(entry: Dict) -> str:
    speedups = {
        (row.get("workload"), row.get("scheme")): row.get("speedup")
        for row in entry.get("per_workload_speedup") or []
    }
    lines = [
        f"preset={entry['preset']} label={entry['label']} "
        f"({entry['timestamp']})",
        f"{'workload':<12} {'scheme':<12} {'events':>8} {'wall s':>8} "
        f"{'events/s':>10}"
        + (f" {'speedup':>8}" if speedups else ""),
    ]
    for row in entry["rows"]:
        line = (
            f"{row['workload']:<12} {row['scheme']:<12} "
            f"{row['events']:>8} {row['wall_s']:>8.3f} "
            f"{row['events_per_sec']:>10.0f}"
        )
        speedup = speedups.get((row["workload"], row["scheme"]))
        if speedup is not None:
            line += f" {speedup:>7.2f}x"
        lines.append(line)
    lines.append(
        f"{'TOTAL':<25} {entry['total_events']:>8} "
        f"{entry['total_wall_s']:>8.3f} "
        f"{entry['aggregate_events_per_sec']:>10.0f}"
    )
    return "\n".join(lines)
