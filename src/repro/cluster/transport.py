"""Pluggable cluster messaging with a filesystem-spool implementation.

The coordinator and its host agents never share memory: every word
between them is a :class:`Message` envelope moving through a
:class:`Transport`.  The interface is deliberately tiny — ``send`` to
a named mailbox, ``recv`` everything pending in one — so tomorrow's
SSH transport only has to move the same envelopes over a wire.

Today's implementation, :class:`SpoolTransport`, is a shared-
filesystem spool: each mailbox is a directory of one-message JSON
files written atomically (temp + rename, sealed like every other
durable record in this repo), named so a sorted directory listing
replays per-sender order.  A torn or unparsable message file is
quarantined and skipped — messages are *transport*, the sealed result
store remains the only source of truth, so a lost message costs a
retransmit or a lease timeout, never a wrong result.

This is also where the fault harness (:mod:`repro.faults`,
docs/FAULTS.md) injects network weather deterministically:

* ``transport.send`` / ``transport.recv`` — key
  ``<mailbox>:<message type>:<sender>`` (glob it: a plan targeting
  one host's results matches ``coordinator:result:host-2``); kinds
  ``drop`` (message vanishes), ``delay`` (envelope carries a
  ``not_before`` stamp the receiver honours; ``seconds`` sets the
  delay), ``duplicate`` (delivered twice), ``torn`` (truncated file
  → quarantine on read).
* ``host.heartbeat`` — key = host id, consulted by the agent before
  each heartbeat; ``drop`` simulates a partition (the agent keeps
  working, its heartbeats vanish), ``crash`` a host death.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import faults
from repro.engine.durable import (
    CorruptEntryError,
    atomic_write_json,
    quarantine_file,
    read_json_verified,
    seal,
)

#: Mailbox name of the coordinator; agents use ``host-<id>``.
COORDINATOR_MAILBOX = "coordinator"

#: Injection sites implemented by this module.
SEND_SITE = "transport.send"
RECV_SITE = "transport.recv"
HEARTBEAT_SITE = "host.heartbeat"


def host_mailbox(host_id: str) -> str:
    """Mailbox name of a host agent."""
    return f"host-{host_id}"


@dataclass
class Message:
    """One envelope: routing metadata plus an arbitrary JSON payload."""

    type: str
    sender: str
    payload: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0
    sent: float = 0.0
    not_before: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": self.type,
            "sender": self.sender,
            "payload": self.payload,
            "seq": self.seq,
            "sent": self.sent,
            "not_before": self.not_before,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Message":
        return cls(
            type=str(data.get("type", "")),
            sender=str(data.get("sender", "")),
            payload=dict(data.get("payload") or {}),
            seq=int(data.get("seq", 0)),
            sent=float(data.get("sent", 0.0)),
            not_before=float(data.get("not_before", 0.0)),
        )


class Transport:
    """Abstract message fabric between coordinator and host agents.

    Implementations must deliver messages at-most-once per ``send``
    call (duplicates only under injected faults), preserve per-sender
    order, and never deliver a torn message as if it were whole.
    """

    def send(self, mailbox: str, message: Message) -> None:
        raise NotImplementedError

    def recv(self, mailbox: str, limit: Optional[int] = None) -> List[Message]:
        raise NotImplementedError


class SpoolTransport(Transport):
    """Shared-filesystem spool transport.

    Layout under ``root``::

        <root>/<mailbox>/inbox/msg-<sender>-<seq:010d>.json
        <root>/<mailbox>/inbox/quarantine/   # torn/unparsable messages

    Writers are atomic (temp + rename), so a reader never sees a
    half-written file through the normal path — torn messages exist
    only when injected or when the filesystem itself tears a write,
    and either way they quarantine instead of crashing the receiver.
    """

    def __init__(self, root: Path, sender: str = "?"):
        self.root = Path(root)
        self.sender = sender
        self._seq = 0
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------

    def inbox(self, mailbox: str) -> Path:
        return self.root / mailbox / "inbox"

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    # -- send ----------------------------------------------------------

    def send(self, mailbox: str, message: Message) -> None:
        message.sender = message.sender or self.sender
        message.seq = message.seq or self._next_seq()
        message.sent = time.time()
        rule = faults.maybe_fail(
            SEND_SITE, f"{mailbox}:{message.type}:{message.sender}"
        )
        if rule is not None and rule.kind == "drop":
            return
        if rule is not None and rule.kind == "delay":
            message.not_before = time.time() + rule.seconds
        copies = 2 if rule is not None and rule.kind == "duplicate" else 1
        inbox = self.inbox(mailbox)
        inbox.mkdir(parents=True, exist_ok=True)
        record = seal(message.as_dict())
        for copy in range(copies):
            name = (f"msg-{message.sender}-{message.seq:010d}"
                    + (f"-dup{copy}" if copy else "") + ".json")
            path = inbox / name
            if rule is not None and rule.kind == "torn":
                text = json.dumps(record, sort_keys=True)
                path.write_text(text[: max(1, len(text) // 2)])
                continue
            atomic_write_json(path, record)

    # -- recv ----------------------------------------------------------

    def recv(self, mailbox: str, limit: Optional[int] = None) -> List[Message]:
        """All deliverable messages in ``mailbox``, oldest first.

        Each returned message's spool file is deleted (delivery is
        consumption).  Delayed envelopes stay spooled until their
        ``not_before`` passes; torn/unparsable files are quarantined.
        """
        inbox = self.inbox(mailbox)
        try:
            pending = sorted(p for p in inbox.iterdir()
                             if p.name.startswith("msg-"))
        except FileNotFoundError:
            return []
        now = time.time()
        delivered: List[Message] = []
        for path in pending:
            if limit is not None and len(delivered) >= limit:
                break
            try:
                record = read_json_verified(path)
            except FileNotFoundError:
                continue
            except CorruptEntryError as error:
                quarantine_file(path, f"torn message: {error}", root=inbox)
                continue
            message = Message.from_dict(record)
            if message.not_before > now:
                continue
            rule = faults.maybe_fail(
                RECV_SITE,
                f"{mailbox}:{message.type}:{message.sender}",
            )
            if rule is not None and rule.kind == "drop":
                path.unlink(missing_ok=True)
                continue
            if rule is not None and rule.kind == "delay":
                message.not_before = now + rule.seconds
                atomic_write_json(path, seal(message.as_dict()))
                continue
            if rule is not None and rule.kind == "torn":
                text = path.read_text()
                path.write_text(text[: max(1, len(text) // 2)])
                try:
                    read_json_verified(path)
                except CorruptEntryError as error:
                    quarantine_file(path, f"torn message: {error}",
                                    root=inbox)
                continue
            path.unlink(missing_ok=True)
            delivered.append(message)
            if rule is not None and rule.kind == "duplicate":
                delivered.append(Message.from_dict(record))
        return delivered

    def purge(self, mailbox: str) -> int:
        """Discard every pending message in ``mailbox``, unread.

        Used when a mailbox changes hands: a fresh cluster epoch must
        not replay assignments (or a shutdown order) addressed to a
        previous incarnation's agent.
        """
        removed = 0
        try:
            entries = list(self.inbox(mailbox).iterdir())
        except FileNotFoundError:
            return 0
        for path in entries:
            if path.name.startswith("msg-"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    # -- introspection -------------------------------------------------

    def pending_count(self, mailbox: str) -> int:
        try:
            return sum(1 for p in self.inbox(mailbox).iterdir()
                       if p.name.startswith("msg-"))
        except FileNotFoundError:
            return 0


def heartbeat_gate(host_id: str) -> bool:
    """Consult the ``host.heartbeat`` site before sending a heartbeat.

    Returns False when a ``drop`` rule fired (the heartbeat must not
    be sent — that *is* the partition).  ``crash``/``hang``/``error``
    rules act in place as usual, so a ``crash`` with ``"hard": true``
    here is the canonical injected host death.
    """
    rule = faults.maybe_fail(HEARTBEAT_SITE, host_id)
    return not (rule is not None and rule.kind == "drop")
