"""The campaign coordinator: shards the job pool across host agents.

:func:`run_campaign_distributed` is the multi-host sibling of
:func:`repro.campaigns.executor.run_campaign` — same manifest, same
sealed store, same stats/result contract — with the batch loop
replaced by a lease-driven scheduler:

* the hash-deduplicated pending pool is dealt out in **chunks** to
  live host agents over the transport;
* each host holds a **host lease** renewed by its heartbeats; a lease
  that expires (host crashed, hung, or partitioned) marks the host
  dead and requeues its outstanding chunk — the chunk also carries
  its own deadline, so a single lost ``result`` message costs a
  reassignment, not a stuck campaign;
* result ingestion is **idempotent**: a result only marks a point
  complete after the sealed store verifies it
  (``cache.verify == "ok"``), and a result for an already-completed
  hash — the late duplicate a healed partition delivers — is counted
  and discarded, never double-ingested;
* the atomic ``manifest.json`` checkpoint remains the cluster's
  single source of truth: it is rewritten after every ingest batch,
  so killing the coordinator (or any agent) at any instant costs at
  most one batch of completion *records* and zero re-simulations —
  the store turns every repeat into a cache hit.

Agents are separate processes launched through a
:class:`LocalAgentLauncher` (same CLI entry point an SSH launcher
would exec remotely); a crashed agent process is detected by waitpid
faster than by lease expiry and respawned up to a restart budget.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro import telemetry
from repro.campaigns.executor import (
    DEFAULT_BATCH_SIZE,
    MAX_AUDIT_ROUNDS,
    CampaignManifest,
    CampaignRunResult,
    CampaignRunStats,
    _DrainGuard,
    _annotate_provenance,
    _utc_now,
    manifest_path,
)
from repro.campaigns.planner import plan_campaign
from repro.campaigns.spec import CampaignSpec
from repro.cluster.transport import (
    COORDINATOR_MAILBOX,
    Message,
    SpoolTransport,
    host_mailbox,
)
from repro.engine.cache import ResultCache
from repro.engine.executor import DEFAULT_MAX_RETRIES
from repro.engine.supervisor import JobFailure

#: Heartbeats a host may miss before its lease expires (times the
#: agent's heartbeat interval).
DEFAULT_LEASE_TIMEOUT_S = 5.0

#: Jobs per assignment chunk (mirrors the single-host batch size).
DEFAULT_CHUNK_SIZE = DEFAULT_BATCH_SIZE

#: Deadline for one assigned chunk: if its results have not all
#: arrived by then (lost messages, silently wedged host), the
#: remainder is requeued.  Requeues are safe — the store makes
#: re-execution a cache hit — so this only needs to beat a genuinely
#: stuck chunk, not a slow one.
DEFAULT_CHUNK_TIMEOUT_S = 300.0

#: Times a crashed agent process is relaunched before the coordinator
#: stops betting on that host.
DEFAULT_MAX_HOST_RESTARTS = 2

#: Coordinator scheduling quantum.
POLL_S = 0.05


@dataclass
class ClusterRunStats(CampaignRunStats):
    """Single-host stats plus the distributed ledger."""

    hosts: int = 0              #: agents requested
    chunks: int = 0             #: assignment chunks dealt
    reassigned: int = 0         #: jobs requeued from dead/expired hosts
    duplicate_results: int = 0  #: late results discarded by hash
    hosts_lost: int = 0         #: lease expiries + process deaths
    hosts_restarted: int = 0    #: crashed agent processes relaunched

    def as_dict(self) -> Dict[str, Any]:
        data = super().as_dict()
        data.update({
            "distributed": True,
            "hosts": self.hosts,
            "chunks": self.chunks,
            "reassigned": self.reassigned,
            "duplicate_results": self.duplicate_results,
            "hosts_lost": self.hosts_lost,
            "hosts_restarted": self.hosts_restarted,
        })
        return data


@dataclass
class HostState:
    """What the coordinator believes about one host."""

    host_id: str
    mailbox: str
    pid: Optional[int] = None
    last_seen: float = 0.0
    alive: bool = False          #: lease currently valid
    assigned: Set[str] = field(default_factory=set)
    assigned_at: float = 0.0
    handle: Optional[subprocess.Popen] = None
    restarts: int = 0


class LocalAgentLauncher:
    """Spawns host agents as local subprocesses via the CLI.

    The exec'd command line is exactly what an SSH launcher would run
    on a remote host (``python -m repro.cli campaign agent ...``);
    only the process-spawning layer is local.  Agent stdout/stderr go
    to per-host log files under the cluster directory.
    """

    def __init__(
        self,
        cluster_root: Path,
        n_jobs: int = 1,
        max_retries: int = DEFAULT_MAX_RETRIES,
        job_timeout: Optional[float] = None,
        heartbeat_s: float = 0.5,
        cache_dir: Optional[Path] = None,
    ):
        self.cluster_root = Path(cluster_root)
        self.n_jobs = n_jobs
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.heartbeat_s = heartbeat_s
        self.cache_dir = cache_dir

    def command(self, host_id: str) -> List[str]:
        cmd = [
            sys.executable, "-m", "repro.cli", "campaign", "agent",
            "--host-id", host_id,
            "--cluster-dir", str(self.cluster_root),
            "--jobs", str(self.n_jobs),
            "--max-retries", str(self.max_retries),
            "--heartbeat", str(self.heartbeat_s),
            "--parent-pid", str(os.getpid()),
        ]
        if self.job_timeout is not None:
            cmd += ["--job-timeout", str(self.job_timeout)]
        if self.cache_dir is not None:
            cmd += ["--cache-dir", str(self.cache_dir)]
        return cmd

    def launch(self, host_id: str) -> subprocess.Popen:
        import repro

        env = os.environ.copy()
        src = str(Path(repro.__file__).resolve().parent.parent)
        parts = [src] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        log_dir = self.cluster_root / "logs"
        log_dir.mkdir(parents=True, exist_ok=True)
        log = open(log_dir / f"{host_mailbox(host_id)}.log", "ab")
        try:
            return subprocess.Popen(
                self.command(host_id),
                stdout=log, stderr=subprocess.STDOUT, env=env,
            )
        finally:
            log.close()


def _failure_from_payload(job_hash: str, data: Dict[str, Any]) -> JobFailure:
    return JobFailure(
        job_hash=str(data.get("job_hash") or job_hash),
        scheme=str(data.get("scheme", "?")),
        workload=str(data.get("workload", "?")),
        attempts=int(data.get("attempts", 0)),
        reason=str(data.get("reason", "unknown")),
        message=str(data.get("message", "")),
        traceback=str(data.get("traceback", "")),
        events=list(data.get("events") or []),
    )


class Coordinator:
    """Lease-based scheduler over one campaign plan."""

    def __init__(
        self,
        plan,
        manifest: CampaignManifest,
        cache: ResultCache,
        transport: SpoolTransport,
        stats: ClusterRunStats,
        launcher: Optional[LocalAgentLauncher] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        chunk_timeout: float = DEFAULT_CHUNK_TIMEOUT_S,
        max_host_restarts: int = DEFAULT_MAX_HOST_RESTARTS,
        checkpoint_every: Optional[int] = None,
        progress=None,
    ):
        self.plan = plan
        self.manifest = manifest
        self.cache = cache
        self.transport = transport
        self.stats = stats
        self.launcher = launcher
        self.lease_timeout = lease_timeout
        self.chunk_size = max(1, int(chunk_size))
        self.chunk_timeout = chunk_timeout
        self.max_host_restarts = max_host_restarts
        self.checkpoint_every = checkpoint_every or self.chunk_size
        self.progress = progress
        self.hosts: Dict[str, HostState] = {}
        self.completed: Set[str] = set(manifest.completed)
        self.quarantined: Set[str] = set(manifest.quarantined)
        self.pending: List[str] = []
        self._dirty = 0
        self._stopping = False
        self._tel = telemetry.get()

    # -- host lifecycle ------------------------------------------------

    def add_host(self, host_id: str, spawn: bool = True) -> HostState:
        host = HostState(host_id=host_id, mailbox=host_mailbox(host_id))
        self.hosts[host_id] = host
        if spawn and self.launcher is not None:
            host.handle = self.launcher.launch(host_id)
            host.pid = host.handle.pid
            host.last_seen = time.time()
            host.alive = True
            self._event("host.spawn", host=host_id, pid=host.pid)
        return host

    def _lose_host(self, host: HostState, reason: str) -> None:
        if not host.alive and not host.assigned:
            return
        host.alive = False
        self.stats.hosts_lost += 1
        if host.assigned:
            self.stats.reassigned += len(host.assigned)
            self.pending.extend(sorted(host.assigned))
            host.assigned.clear()
        self._event("host.dead", host=host.host_id, reason=reason)
        if self.progress is not None:
            self.progress(
                f"[cluster] host {host.host_id} {reason}; "
                "outstanding jobs requeued"
            )

    def _check_hosts(self, now: float) -> None:
        for host in self.hosts.values():
            if host.handle is not None and host.handle.poll() is not None:
                exited = host.handle.returncode
                host.handle = None
                self._lose_host(host, f"process exited ({exited})")
                if (self.launcher is not None
                        and host.restarts < self.max_host_restarts
                        and not self._work_done()):
                    host.restarts += 1
                    self.stats.hosts_restarted += 1
                    host.handle = self.launcher.launch(host.host_id)
                    host.pid = host.handle.pid
                    host.last_seen = now
                    host.alive = True
                    self._event("host.restart", host=host.host_id,
                                pid=host.pid, attempt=host.restarts)
                continue
            if host.alive and now - host.last_seen > self.lease_timeout:
                self._lose_host(host, "lease expired")
            if (host.assigned
                    and now - host.assigned_at > self.chunk_timeout):
                self.stats.reassigned += len(host.assigned)
                self.pending.extend(sorted(host.assigned))
                host.assigned.clear()
                self._event("chunk.expired", host=host.host_id)

    # -- ingestion -----------------------------------------------------

    def _ingest(self, message: Message) -> None:
        payload = message.payload
        host = self.hosts.get(str(payload.get("host", "")))
        if message.type == "hello":
            if host is None:
                host = self.add_host(str(payload["host"]), spawn=False)
            # Outstanding assignments stay put: the spool inbox
            # survives an agent restart, so a fresh incarnation picks
            # up any chunk its predecessor never consumed.  Chunks a
            # dead incarnation *did* consume are requeued by death
            # detection, not here.
            host.pid = payload.get("pid")
            host.last_seen = time.time()
            host.alive = True
            return
        if message.type == "heartbeat":
            if host is not None:
                rejoining = not host.alive
                host.last_seen = time.time()
                host.alive = True
                if rejoining:
                    self._event("host.rejoin", host=host.host_id)
            return
        if message.type == "chunk":
            self.stats.simulated += int(payload.get("simulated", 0))
            self.stats.cache_hits += int(payload.get("cache_hits", 0))
            self.stats.retried += int(payload.get("retried", 0))
            return
        if message.type == "bye":
            if host is not None:
                if self._stopping:
                    # An ordered exit after our shutdown message is a
                    # clean departure, not a lost host.
                    host.alive = False
                else:
                    self._lose_host(host, "departed")
            return
        if message.type != "result":
            return
        job_hash = str(payload.get("hash", ""))
        if job_hash not in self.plan.jobs:
            return
        if host is not None:
            host.assigned.discard(job_hash)
        if job_hash in self.completed:
            # The late duplicate a healed partition delivers: the
            # point is already verified in the store, discard.
            self.stats.duplicate_results += 1
            self._event("cluster.duplicate", job=job_hash,
                        host=payload.get("host"))
            return
        if payload.get("status") == "ok":
            if self.cache.verify(self.plan.jobs[job_hash]) == "ok":
                self.completed.add(job_hash)
                self.quarantined.discard(job_hash)
                self.manifest.mark_completed([job_hash])
                self._dirty += 1
            else:
                # Claimed done but the sealed store disagrees —
                # whatever happened on that host, re-simulate.
                self.pending.append(job_hash)
                self.stats.reassigned += 1
                self._event("cluster.unverified", job=job_hash)
        else:
            failure = _failure_from_payload(
                job_hash, dict(payload.get("failure") or {})
            )
            self.quarantined.add(job_hash)
            self.stats.quarantined += 1
            self.manifest.mark_quarantined([failure])
            self._dirty += 1

    def scavenge(self) -> None:
        """Adopt results a dead coordinator incarnation left spooled.

        A killed coordinator can leave agent messages unconsumed in
        its inbox.  Results are worth ingesting — they are idempotent
        and may complete points the old incarnation never checkpointed,
        turning them into ``previously_complete`` instead of rework.
        Stale control traffic (hello/heartbeat/chunk stats/bye)
        describes a cluster that no longer exists and is dropped, so
        it cannot pollute this run's accounting.
        """
        adopted = 0
        for message in self.transport.recv(COORDINATOR_MAILBOX):
            if message.type == "result":
                self._ingest(message)
                adopted += 1
        if self._dirty:
            self._event("cluster.scavenge", results=adopted)
            self._checkpoint(force=True)

    def _checkpoint(self, force: bool = False) -> None:
        if self._dirty == 0 and not force:
            return
        if not force and self._dirty < self.checkpoint_every:
            return
        self.manifest.save()
        self.stats.batches += 1
        self._dirty = 0
        done = len(self.completed & set(self.plan.jobs))
        self._event("campaign.checkpoint", done=done,
                    total=self.plan.total_points)
        if self.progress is not None:
            self.progress(
                f"[{self.plan.spec.name}] {done}/{self.plan.total_points} "
                f"points ({self.stats.duplicate_results} duplicates "
                f"discarded, {self.stats.reassigned} reassigned)"
            )

    # -- scheduling ----------------------------------------------------

    def _assign(self, now: float) -> None:
        for host in self.hosts.values():
            if not host.alive or host.assigned or not self.pending:
                continue
            chunk: List[str] = []
            while self.pending and len(chunk) < self.chunk_size:
                job_hash = self.pending.pop(0)
                if job_hash in self.completed or job_hash in chunk:
                    continue
                chunk.append(job_hash)
            if not chunk:
                continue
            self.transport.send(host.mailbox, Message(
                type="assign", sender=COORDINATOR_MAILBOX,
                payload={"jobs": [
                    {"hash": h, "job": self.plan.jobs[h].canonical()}
                    for h in chunk
                ]},
            ))
            host.assigned.update(chunk)
            host.assigned_at = now
            self.stats.chunks += 1
            self.stats.submitted += len(chunk)
            self._event("cluster.assign", host=host.host_id,
                        jobs=len(chunk))

    def _work_done(self) -> bool:
        return set(self.plan.jobs) <= (self.completed | self.quarantined)

    def _cluster_lost(self) -> bool:
        """True when no host is alive and none can come back."""
        if any(h.alive for h in self.hosts.values()):
            return False
        # A partitioned-but-running process may still heartbeat later;
        # only give up when every agent process is known gone and the
        # restart budget is spent.
        for host in self.hosts.values():
            if host.handle is not None and host.handle.poll() is None:
                return False
            if (self.launcher is not None
                    and host.restarts < self.max_host_restarts):
                return False
        return True

    def _event(self, kind: str, **fields: Any) -> None:
        if self._tel is not None:
            self._tel.event(kind, **fields)

    # -- main loop -----------------------------------------------------

    def drive(self, pending: List[str], drain: _DrainGuard) -> None:
        """Run the scheduler until the pool drains or the run must stop."""
        self.pending = [h for h in pending if h not in self.completed]
        while not self._work_done():
            if drain.requested:
                self.stats.drained = True
                break
            now = time.time()
            for message in self.transport.recv(COORDINATOR_MAILBOX):
                self._ingest(message)
            self._check_hosts(now)
            self._assign(now)
            self._checkpoint()
            if self._cluster_lost():
                self.manifest.data.setdefault("notes", []).append(
                    f"cluster degraded at {_utc_now()}: all hosts lost "
                    f"with {len(self.pending)} job(s) unassigned; "
                    "resume with the same command"
                )
                break
            time.sleep(POLL_S)
        self._checkpoint(force=True)

    def shutdown(self, timeout: float = 8.0) -> None:
        """Stop the agents, ingesting stragglers while they wind down.

        The inbox keeps being pumped until every agent process exits
        (or the deadline passes): a partitioned host that finishes a
        reassigned chunk late delivers its results *here*, where the
        idempotent ingest counts and discards them by hash instead of
        losing the accounting.
        """
        self._stopping = True
        for host in self.hosts.values():
            self.transport.send(host.mailbox, Message(
                type="shutdown", sender=COORDINATOR_MAILBOX,
            ))
        deadline = time.time() + timeout
        while time.time() < deadline:
            for message in self.transport.recv(COORDINATOR_MAILBOX):
                self._ingest(message)
            running = [
                h for h in self.hosts.values()
                if h.handle is not None and h.handle.poll() is None
            ]
            if not running:
                break
            time.sleep(POLL_S)
        for message in self.transport.recv(COORDINATOR_MAILBOX):
            self._ingest(message)
        for host in self.hosts.values():
            handle = host.handle
            if handle is None or handle.poll() is not None:
                continue
            handle.kill()
            try:
                handle.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                pass
        if self._dirty:
            self._checkpoint(force=True)


def run_campaign_distributed(
    spec: CampaignSpec,
    directory=None,
    scale: Optional[float] = None,
    hosts: int = 2,
    n_jobs: int = 1,
    cache_dir=None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    progress=None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_timeout: Optional[float] = None,
    retry_quarantined: bool = False,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S,
    heartbeat_s: float = 0.5,
    chunk_timeout: float = DEFAULT_CHUNK_TIMEOUT_S,
    max_host_restarts: int = DEFAULT_MAX_HOST_RESTARTS,
    launcher: Optional[LocalAgentLauncher] = None,
) -> CampaignRunResult:
    """Run (or resume) a campaign across ``hosts`` agent processes.

    Same contract as :func:`repro.campaigns.executor.run_campaign`
    (manifest checkpoints, quarantine, store audit, graceful drain on
    SIGTERM/SIGINT), executed by a coordinator + agents instead of an
    in-process batch loop.  ``n_jobs`` is the per-host worker count.
    The distributed path requires the result store — it *is* the data
    plane — so there is no ``use_cache=False`` variant.
    """
    plan = plan_campaign(spec, scale=scale)
    manifest = CampaignManifest.for_plan(
        manifest_path(spec.name, directory), plan
    )
    n_hosts = max(1, int(hosts))
    # stats.hosts stays 0 until agents actually spawn: a zero-work
    # resume reports (and costs) no cluster at all.
    stats = ClusterRunStats(total_points=plan.total_points)
    cache = ResultCache(cache_dir)
    cluster_root = manifest.path.parent / "cluster"
    transport = SpoolTransport(cluster_root, sender=COORDINATOR_MAILBOX)
    tel = telemetry.get()
    if tel is not None:
        tel.set_role("coordinator")
        tel.event(
            "cluster.start", campaign=spec.name,
            total_points=plan.total_points, hosts=n_hosts,
            n_jobs=n_jobs,
        )
    if launcher is None:
        launcher = LocalAgentLauncher(
            cluster_root, n_jobs=n_jobs, max_retries=max_retries,
            job_timeout=job_timeout, heartbeat_s=heartbeat_s,
            cache_dir=cache_dir,
        )

    if retry_quarantined:
        cleared = manifest.clear_quarantine()
        if cleared and progress is not None:
            progress(
                f"[{plan.spec.name}] retrying {len(cleared)} "
                "quarantined point(s)"
            )

    coordinator = Coordinator(
        plan, manifest, cache, transport, stats,
        launcher=launcher,
        lease_timeout=lease_timeout,
        chunk_size=chunk_size,
        chunk_timeout=chunk_timeout,
        max_host_restarts=max_host_restarts,
        progress=progress,
    )
    # A previous coordinator may have died with agent results still
    # spooled: adopt them before sizing the remaining work, so they
    # count as previously complete instead of being re-dealt.
    coordinator.scavenge()
    stats.previously_complete = len(
        coordinator.completed & set(plan.jobs)
    )
    pending = [
        h for h in plan.jobs
        if h not in coordinator.completed and h not in coordinator.quarantined
    ]
    audit_rounds = 0
    try:
        with _DrainGuard() as drain:
            spawned = False
            while True:
                if pending and not spawned:
                    # A zero-work resume never spawns an agent: the
                    # no-op invariant costs no processes at all.
                    stats.hosts = n_hosts
                    for index in range(n_hosts):
                        host_id = f"{index + 1}"
                        # fresh epoch: never replay an old
                        # incarnation's assignments or shutdown order
                        transport.purge(host_mailbox(host_id))
                        coordinator.add_host(host_id)
                    spawned = True
                coordinator.drive(pending, drain)
                if drain.requested or not coordinator._work_done():
                    break
                bad = [
                    job_hash
                    for job_hash in manifest.completed
                    if job_hash in plan.jobs
                    and cache.verify(plan.jobs[job_hash]) != "ok"
                ]
                if not bad:
                    break
                audit_rounds += 1
                stats.audited_bad += len(bad)
                coordinator.completed.difference_update(bad)
                manifest.unmark_completed(bad)
                manifest.save()
                if tel is not None:
                    tel.event("campaign.audit", campaign=spec.name,
                              round=audit_rounds, bad=len(bad))
                if progress is not None:
                    progress(
                        f"[{plan.spec.name}] store audit: {len(bad)} "
                        "completed entr(ies) missing or corrupt — "
                        "re-simulating"
                    )
                if audit_rounds >= MAX_AUDIT_ROUNDS:
                    manifest.data.setdefault("notes", []).append(
                        f"store audit gave up after {audit_rounds} "
                        f"rounds with {len(bad)} bad entr(ies)"
                    )
                    break
                pending = bad
            if drain.requested:
                stats.drained = True
                manifest.data.setdefault("notes", []).append(
                    f"graceful drain at {_utc_now()}: cluster "
                    "checkpointed, resume with the same command"
                )
    finally:
        coordinator.shutdown()
        manifest.record_run(stats)
        manifest.refresh_status()
        manifest.save()
        if tel is not None:
            tel.event(
                "cluster.done", campaign=spec.name,
                status=manifest.status, simulated=stats.simulated,
                cache_hits=stats.cache_hits,
                duplicates=stats.duplicate_results,
                reassigned=stats.reassigned,
                hosts_lost=stats.hosts_lost,
            )

    if stats.submitted:
        _annotate_provenance(plan, cache_dir)
    return CampaignRunResult(
        plan=plan,
        manifest_path=manifest.path,
        stats=stats,
        complete=manifest.status == "complete",
        drained=stats.drained,
        quarantined=manifest.quarantined,
    )
