"""Distributed campaign execution (docs/CAMPAIGNS.md § distributed).

A **coordinator** shards the hash-deduplicated campaign job pool
across **host agents** over a pluggable :class:`~repro.cluster.
transport.Transport` (filesystem spool today, SSH tomorrow).  Host
leases renewed by heartbeats layer on the engine's per-job leases;
dead or partitioned hosts have their outstanding chunks reassigned,
late duplicate results are discarded by hash, and the atomic
``manifest.json`` checkpoint stays the cluster's single source of
truth — kill any process at any instant and a resume re-simulates
zero completed points.

    from repro.cluster import run_campaign_distributed

    result = run_campaign_distributed(spec, hosts=2, n_jobs=1)
"""

from repro.cluster.agent import HostAgent, agent_main
from repro.cluster.coordinator import (
    ClusterRunStats,
    Coordinator,
    HostState,
    LocalAgentLauncher,
    run_campaign_distributed,
)
from repro.cluster.transport import (
    COORDINATOR_MAILBOX,
    Message,
    SpoolTransport,
    Transport,
    heartbeat_gate,
    host_mailbox,
)

__all__ = [
    "COORDINATOR_MAILBOX",
    "ClusterRunStats",
    "Coordinator",
    "HostAgent",
    "HostState",
    "LocalAgentLauncher",
    "Message",
    "SpoolTransport",
    "Transport",
    "agent_main",
    "heartbeat_gate",
    "host_mailbox",
    "run_campaign_distributed",
]
