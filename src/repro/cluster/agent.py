"""The host agent: executes assigned jobs, heartbeats, reports back.

One agent process per (logical) host.  It owns no campaign state at
all: assignments arrive as canonical job JSON over the transport, the
results land in the shared sealed store through the exact same
:func:`repro.engine.executor.run_jobs` path a single-host campaign
uses (per-job leases, retries, quarantine included), and per-job
``result`` messages flow back to the coordinator.  Killing an agent
at any instant therefore loses nothing durable — at worst the
coordinator re-assigns its outstanding chunk and the warm store turns
the repeat into cache hits.

Liveness is a heartbeat thread: every ``heartbeat_s`` the agent sends
a ``heartbeat`` message, gated by the ``host.heartbeat`` fault site —
a ``drop`` rule there *is* a network partition (the agent keeps
executing, the coordinator sees silence), and a ``crash`` rule with
``"hard": true`` is an injected host death.

Agents are launched as real subprocesses (``repro campaign agent``,
see :mod:`repro.cli`) so the same entry point is SSH-launchable on a
remote host tomorrow; the only sharing assumption is a common
filesystem for the spool transport and the result store.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.cluster.transport import (
    COORDINATOR_MAILBOX,
    Message,
    SpoolTransport,
    heartbeat_gate,
    host_mailbox,
)
from repro.engine.executor import run_jobs
from repro.engine.job import SimJob

#: How often an idle agent polls its inbox.
DEFAULT_POLL_S = 0.05

#: Default heartbeat cadence; the coordinator's host-lease timeout
#: must be a comfortable multiple of this.
DEFAULT_HEARTBEAT_S = 0.5


class HostAgent:
    """Inbox-driven job executor for one host."""

    def __init__(
        self,
        host_id: str,
        cluster_root: Path,
        n_jobs: int = 1,
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
        cache_dir: Optional[Path] = None,
        poll_s: float = DEFAULT_POLL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        parent_pid: Optional[int] = None,
    ):
        self.host_id = host_id
        self.mailbox = host_mailbox(host_id)
        self.transport = SpoolTransport(Path(cluster_root),
                                        sender=self.mailbox)
        self.n_jobs = max(1, int(n_jobs))
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.cache_dir = cache_dir
        self.poll_s = poll_s
        self.heartbeat_s = heartbeat_s
        self.parent_pid = parent_pid
        self._stop = threading.Event()

    # -- liveness ------------------------------------------------------

    def _send(self, type_: str, **payload: Any) -> None:
        self.transport.send(
            COORDINATOR_MAILBOX,
            Message(type=type_, sender=self.mailbox, payload=payload),
        )

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            if heartbeat_gate(self.host_id):
                self._send("heartbeat", host=self.host_id, pid=os.getpid())

    def _parent_gone(self) -> bool:
        if self.parent_pid is None:
            return False
        try:
            os.kill(self.parent_pid, 0)
        except OSError:
            return True
        return False

    # -- execution -----------------------------------------------------

    def _execute_chunk(self, payload: Dict[str, Any]) -> None:
        jobs: List[Tuple[str, SimJob]] = []
        for entry in payload.get("jobs", ()):
            job = SimJob.from_canonical(entry["job"])
            want = str(entry.get("hash", ""))
            got = job.job_hash()
            if want and want != got:
                # A job that does not hash to its label would poison
                # the store under the wrong key; refuse it loudly.
                self._send(
                    "result", host=self.host_id, hash=want, status="failed",
                    failure={
                        "job_hash": want, "scheme": job.scheme,
                        "workload": job.workload.kind, "attempts": 0,
                        "reason": "hash-mismatch",
                        "message": f"assignment hash {want} != {got}",
                        "traceback": "", "events": [],
                    },
                )
                continue
            jobs.append((got, job))
        if not jobs:
            return
        results = run_jobs(
            [job for _, job in jobs],
            n_jobs=self.n_jobs,
            use_cache=True,
            cache_dir=self.cache_dir,
            max_retries=self.max_retries,
            job_timeout=self.job_timeout,
            on_failure="skip",
        )
        stats = run_jobs.last_stats
        failures = {f.job_hash: f.as_dict() for f in stats.failures}
        for (job_hash, _job), result in zip(jobs, results):
            if result is None:
                self._send(
                    "result", host=self.host_id, hash=job_hash,
                    status="failed",
                    failure=failures.get(job_hash, {
                        "job_hash": job_hash, "reason": "unknown",
                        "message": "no result and no failure record",
                        "attempts": 0, "events": [],
                    }),
                )
            else:
                self._send("result", host=self.host_id, hash=job_hash,
                           status="ok")
        self._send(
            "chunk", host=self.host_id,
            submitted=len(jobs), simulated=stats.simulated,
            cache_hits=stats.cache_hits, retried=stats.retried,
        )

    # -- main loop -----------------------------------------------------

    def run(self) -> int:
        tel = telemetry.get()
        if tel is not None:
            tel.set_role("agent")
            tel.event("host.start", host=self.host_id, pid=os.getpid())
        self._send("hello", host=self.host_id, pid=os.getpid())
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        try:
            while True:
                if self._parent_gone():
                    break
                messages = self.transport.recv(self.mailbox)
                stop = False
                for message in messages:
                    if message.type == "assign":
                        if tel is not None:
                            tel.event(
                                "host.assign", host=self.host_id,
                                jobs=len(message.payload.get("jobs", ())),
                            )
                        self._execute_chunk(message.payload)
                    elif message.type == "shutdown":
                        stop = True
                if stop:
                    break
                if not messages:
                    time.sleep(self.poll_s)
        finally:
            self._stop.set()
            if tel is not None:
                tel.event("host.stop", host=self.host_id, pid=os.getpid())
        self._send("bye", host=self.host_id, pid=os.getpid())
        return 0


def agent_main(
    host_id: str,
    cluster_root: Path,
    n_jobs: int = 1,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
    cache_dir: Optional[Path] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    parent_pid: Optional[int] = None,
) -> int:
    """Entry point for the ``repro campaign agent`` subcommand.

    Redirects this process's telemetry into a per-host subdirectory
    (``<REPRO_TELEMETRY>/host-<id>/``) *before* the first event is
    written, so multi-host streams merge without pid collisions — the
    merger folds the subdirectory name into every event
    (:mod:`repro.telemetry.events`).
    """
    base = os.environ.get(telemetry.TELEMETRY_ENV)
    if base:
        os.environ[telemetry.TELEMETRY_ENV] = str(
            Path(base) / f"host-{host_id}"
        )
        telemetry.reset()
    agent = HostAgent(
        host_id,
        Path(cluster_root),
        n_jobs=n_jobs,
        max_retries=max_retries,
        job_timeout=job_timeout,
        cache_dir=cache_dir,
        heartbeat_s=heartbeat_s,
        parent_pid=parent_pid,
    )
    return agent.run()
