"""RowHammer safety checker.

Replays a raw ACT stream (no performance model — ACTs at the maximum
rate, one per tRC, the adversary's best case) against a protection
scheme with the full refresh machinery:

* auto-refresh restores one row group per tREFI;
* the MC's RAA counter issues RFM every RFM_TH ACTs (for RFM schemes);
* ARR victims demanded by the scheme are refreshed immediately.

The report carries the maximum disturbance any victim accumulated
between refreshes — the quantity that must stay below FlipTH for the
deterministic guarantee to hold — plus every flip event if it did not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.dram.hammer import FlipEvent, HammerModel
from repro.dram.refresh import AutoRefreshEngine
from repro.mc.rfm import RfmIssueLogic
from repro.params import DramOrganization, DramTimings
from repro.protection import ProtectionScheme


@dataclass
class SafetyReport:
    """Outcome of one adversarial replay."""

    scheme_name: str
    flip_th: int
    acts_replayed: int
    flips: List[FlipEvent]
    max_disturbance: float
    preventive_refresh_rows: int
    rfm_commands: int
    arr_requests: int

    @property
    def safe(self) -> bool:
        return not self.flips

    @property
    def headroom(self) -> float:
        """How far below FlipTH the worst victim stayed (1.0 = untouched)."""
        return 1.0 - self.max_disturbance / self.flip_th


def run_safety_trace(
    scheme: ProtectionScheme,
    act_stream: Iterable[int],
    flip_th: int,
    rfm_th: int = 64,
    timings: Optional[DramTimings] = None,
    organization: Optional[DramOrganization] = None,
    max_acts: Optional[int] = None,
    blast_weights=(1.0,),
) -> SafetyReport:
    """Replay ``act_stream`` (row indices) against ``scheme``."""
    timings = timings or DramTimings()
    organization = organization or DramOrganization()
    hammer = HammerModel(
        flip_th, organization.rows_per_bank, blast_weights=blast_weights
    )
    refresh = AutoRefreshEngine(timings, organization)
    rfm_logic = (
        RfmIssueLogic(rfm_th, mrr_gated=scheme.uses_mrr_gating)
        if scheme.uses_rfm and rfm_th > 0
        else None
    )
    trc = timings.trc_cycles
    cycle = 0
    acts = 0
    rfm_commands = 0
    for row in act_stream:
        if max_acts is not None and acts >= max_acts:
            break
        cycle += trc
        for tick_cycle, first_row, last_row in refresh.drain_due(cycle):
            cycle += timings.trfc_cycles
            hammer.on_refresh_range(first_row, last_row)
            scheme.on_autorefresh(first_row, last_row, tick_cycle)
        hammer.on_activate(row, cycle)
        acts += 1
        victims = scheme.on_activate(row, cycle)
        for victim in victims:
            hammer.on_refresh_row(victim)
        if rfm_logic is not None and rfm_logic.on_activate(
            flag_reader=scheme.rfm_needed_flag
        ):
            rfm_commands += 1
            cycle += timings.trfm_cycles
            for victim in scheme.on_rfm(cycle):
                hammer.on_refresh_row(victim)
    return SafetyReport(
        scheme_name=scheme.name,
        flip_th=flip_th,
        acts_replayed=acts,
        flips=list(hammer.flips),
        max_disturbance=hammer.max_disturbance,
        preventive_refresh_rows=scheme.stats.preventive_refresh_rows,
        rfm_commands=rfm_commands,
        arr_requests=scheme.stats.arr_requests,
    )
