"""Empirical verification of the RowHammer protection guarantees."""

from repro.verify.adversary import (
    double_sided_stream,
    feinting_stream,
    half_double_stream,
    many_sided_stream,
    random_stream,
    round_robin_stream,
)
from repro.verify.fuzzer import FuzzPattern, FuzzResult, fuzz_scheme
from repro.verify.safety import SafetyReport, run_safety_trace
from repro.verify.theorem import GrowthReport, measure_estimate_growth

__all__ = [
    "SafetyReport",
    "run_safety_trace",
    "round_robin_stream",
    "double_sided_stream",
    "many_sided_stream",
    "random_stream",
    "feinting_stream",
    "half_double_stream",
    "fuzz_scheme",
    "FuzzPattern",
    "FuzzResult",
    "GrowthReport",
    "measure_estimate_growth",
]
