"""Adversarial ACT-stream generators for the safety checker.

These are *streams of row indices*, not timed traces: the safety
checker assumes the attacker activates at the maximum rate.

The patterns cover the attack space the paper's proofs address:

* :func:`double_sided_stream` — the strongest attack on one victim;
* :func:`many_sided_stream` — TRRespass-style rotations;
* :func:`round_robin_stream` — tracker-thrashing with more rows than
  table entries (the concentration scenario behind Theorem 1);
* :func:`feinting_stream` — builds up many near-threshold rows, then
  hammers them all (the pattern that breaks RFM-Graphene, Figure 2);
* :func:`random_stream` — baseline noise.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence


def double_sided_stream(
    victim_row: int, total_acts: int
) -> Iterator[int]:
    for i in range(total_acts):
        yield victim_row - 1 if i % 2 == 0 else victim_row + 1


def many_sided_stream(
    num_aggressors: int,
    total_acts: int,
    base_row: int = 2000,
    spacing: int = 2,
) -> Iterator[int]:
    rows = [base_row + spacing * i for i in range(num_aggressors)]
    for i in range(total_acts):
        yield rows[i % num_aggressors]


def round_robin_stream(
    num_rows: int,
    total_acts: int,
    base_row: int = 4000,
    spacing: int = 2,
) -> Iterator[int]:
    rows = [base_row + spacing * i for i in range(num_rows)]
    for i in range(total_acts):
        yield rows[i % num_rows]


def feinting_stream(
    num_rows: int,
    acts_per_round: int,
    rounds: int,
    base_row: int = 8000,
    spacing: int = 2,
) -> Iterator[int]:
    """Raise ``num_rows`` rows in lockstep: ``acts_per_round`` each, in
    row-major rounds — every round ends with all rows equally hot, the
    worst case for threshold-buffered schemes."""
    rows = [base_row + spacing * i for i in range(num_rows)]
    for _ in range(rounds):
        for row in rows:
            for _ in range(acts_per_round):
                yield row


def half_double_stream(
    victim_row: int,
    total_acts: int,
    far_fraction: float = 0.9,
) -> Iterator[int]:
    """Half-Double-style pattern (Google, 2021): hammer the rows at
    distance 2 from the victim hard, with occasional distance-1
    accesses.  Only matters under a blast range >= 2 — the pattern the
    paper's Section V-C configuration must absorb."""
    far = (victim_row - 2, victim_row + 2)
    near = (victim_row - 1, victim_row + 1)
    period = max(2, int(1.0 / max(1e-9, 1.0 - far_fraction)))
    for i in range(total_acts):
        if i % period == period - 1:
            yield near[i % 2]
        else:
            yield far[i % 2]


def random_stream(
    num_rows: int,
    total_acts: int,
    base_row: int = 0,
    seed: int = 99,
) -> Iterator[int]:
    rng = random.Random(seed)
    for _ in range(total_acts):
        yield base_row + rng.randrange(num_rows)
