"""Adversary fuzzer: randomized search for protection-breaking patterns.

Rather than trusting a fixed attack zoo, the fuzzer samples structured
random ACT patterns — mixtures of hammering bursts, rotations, feints
and noise — replays each against a scheme, and keeps the pattern that
maximized victim disturbance.  The integration suite runs it against
Mithril to probe the Theorem-1 guarantee from many angles; downstream
users can point it at their own schemes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.params import DramTimings
from repro.protection import ProtectionScheme
from repro.verify.safety import SafetyReport, run_safety_trace


@dataclass(frozen=True)
class FuzzPattern:
    """A generated attack pattern (reproducible from its genome)."""

    name: str
    rows: Tuple[int, ...]
    schedule: str          #: "round-robin" | "bursts" | "weighted"
    burst_length: int = 1
    weights: Tuple[float, ...] = ()

    def stream(self, total_acts: int) -> Iterator[int]:
        if self.schedule == "round-robin":
            for i in range(total_acts):
                yield self.rows[i % len(self.rows)]
        elif self.schedule == "bursts":
            emitted = 0
            while emitted < total_acts:
                for row in self.rows:
                    for _ in range(self.burst_length):
                        if emitted >= total_acts:
                            return
                        yield row
                        emitted += 1
        elif self.schedule == "weighted":
            rng = random.Random(hash(self.rows) & 0xFFFF)
            population = list(self.rows)
            weights = list(self.weights) or [1.0] * len(population)
            for _ in range(total_acts):
                yield rng.choices(population, weights=weights, k=1)[0]
        else:
            raise ValueError(f"unknown schedule {self.schedule!r}")


@dataclass
class FuzzResult:
    pattern: FuzzPattern
    report: SafetyReport

    @property
    def disturbance_ratio(self) -> float:
        return self.report.max_disturbance / self.report.flip_th


def _random_pattern(rng: random.Random, rows_per_bank: int) -> FuzzPattern:
    base = rng.randrange(16, rows_per_bank - 4096)
    num_rows = rng.choice([2, 3, 8, 33, 129, 512, 1025])
    spacing = rng.choice([1, 2, 3, 8])
    rows = tuple(
        (base + spacing * i) % (rows_per_bank - 2) + 1
        for i in range(num_rows)
    )
    schedule = rng.choice(["round-robin", "bursts", "weighted"])
    burst = rng.choice([1, 4, 16, 64, 128])
    weights: Tuple[float, ...] = ()
    if schedule == "weighted":
        weights = tuple(rng.random() + 0.01 for _ in rows)
    return FuzzPattern(
        name=f"{schedule}-{num_rows}rows-s{spacing}-b{burst}",
        rows=rows,
        schedule=schedule,
        burst_length=burst,
        weights=weights,
    )


def fuzz_scheme(
    scheme_factory: Callable[[], ProtectionScheme],
    flip_th: int,
    rfm_th: int,
    iterations: int = 20,
    acts_per_pattern: int = 60_000,
    seed: int = 1337,
    rows_per_bank: int = 65536,
    timings: Optional[DramTimings] = None,
    blast_weights=(1.0,),
) -> List[FuzzResult]:
    """Replay ``iterations`` random patterns; worst disturbance first."""
    rng = random.Random(seed)
    results = []
    for _ in range(iterations):
        pattern = _random_pattern(rng, rows_per_bank)
        scheme = scheme_factory()
        report = run_safety_trace(
            scheme,
            pattern.stream(acts_per_pattern),
            flip_th,
            rfm_th=rfm_th,
            timings=timings,
            blast_weights=blast_weights,
        )
        results.append(FuzzResult(pattern=pattern, report=report))
    results.sort(key=lambda r: -r.report.max_disturbance)
    return results


def worst_case(results: List[FuzzResult]) -> FuzzResult:
    if not results:
        raise ValueError("no fuzz results")
    return results[0]
