"""Direct empirical validation of Theorem 1 / Theorem 2.

The theorems bound the *estimated-count growth* of any single row
within a tREFW window.  This harness replays an ACT stream against a
Mithril scheme with the real RFM cadence, samples every tracked row's
estimate, and reports the maximum growth observed inside any window of
``W * RFM_TH`` ACTs — directly comparable against
:func:`repro.core.bounds.estimated_growth_bound`.

This is a stronger check than the disturbance-based safety replay: it
validates the exact quantity the proof bounds, not just its corollary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.bounds import adaptive_bound, estimated_growth_bound
from repro.core.mithril import MithrilScheme
from repro.mc.rfm import RfmIssueLogic
from repro.params import DramTimings


@dataclass
class GrowthReport:
    """Outcome of one estimate-growth measurement."""

    n_entries: int
    rfm_th: int
    adaptive_th: int
    window_acts: int
    acts_replayed: int
    max_growth: float
    max_growth_row: Optional[int]
    theorem_bound: float

    @property
    def within_bound(self) -> bool:
        return self.max_growth <= self.theorem_bound

    @property
    def tightness(self) -> float:
        """Measured growth as a fraction of the bound (1.0 = tight)."""
        if self.theorem_bound == 0:
            return 0.0
        return self.max_growth / self.theorem_bound


def measure_estimate_growth(
    scheme: MithrilScheme,
    act_stream: Iterable[int],
    window_acts: Optional[int] = None,
    timings: Optional[DramTimings] = None,
    max_acts: int = 500_000,
) -> GrowthReport:
    """Replay ``act_stream``, tracking per-row estimate growth.

    ``window_acts`` defaults to the number of ACTs in one tREFW at the
    maximum rate — the window Theorem 1 speaks about.  For shorter
    replays the effective window is the replay length, and the bound is
    recomputed for the matching number of RFM intervals.
    """
    timings = timings or DramTimings()
    rfm_th = scheme.rfm_th
    if window_acts is None:
        window_acts = min(max_acts, timings.acts_per_trefw())
    rfm_logic = RfmIssueLogic(rfm_th)
    # Sliding minimum of each row's estimate over the window: track the
    # estimate at window start via a deque of (act_index, row, estimate)
    # snapshots.  Since estimates only move at ACT/RFM events touching
    # few rows, we keep per-row history lazily.
    history: Dict[int, deque] = {}
    max_growth = 0.0
    max_growth_row: Optional[int] = None
    acts = 0
    for row in act_stream:
        if acts >= max_acts:
            break
        acts += 1
        scheme.on_activate(row, cycle=acts)
        estimate = scheme.table.estimate(row)
        entry = history.setdefault(row, deque())
        entry.append((acts, estimate))
        while entry and entry[0][0] < acts - window_acts:
            entry.popleft()
        growth = estimate - entry[0][1]
        if growth > max_growth:
            max_growth = growth
            max_growth_row = row
        if rfm_logic.on_activate(flag_reader=scheme.rfm_needed_flag):
            refreshed = scheme.table.greedy_select()
            scheme.on_rfm(cycle=acts)
            if refreshed is not None:
                # Record the post-demotion estimate as a new baseline.
                refreshed_row = refreshed[0]
                hist = history.setdefault(refreshed_row, deque())
                hist.append(
                    (acts, scheme.table.estimate(refreshed_row))
                )
    intervals = max(1, min(acts, window_acts) // max(1, rfm_th))
    bound = _bound_for_intervals(
        scheme.table.n_entries, rfm_th, scheme.adaptive_th, intervals
    )
    return GrowthReport(
        n_entries=scheme.table.n_entries,
        rfm_th=rfm_th,
        adaptive_th=scheme.adaptive_th,
        window_acts=window_acts,
        acts_replayed=acts,
        max_growth=max_growth,
        max_growth_row=max_growth_row,
        theorem_bound=bound,
    )


def _bound_for_intervals(
    n_entries: int, rfm_th: int, adaptive_th: int, intervals: int
) -> float:
    """Theorem 1/2 with W replaced by the replay's interval count."""
    from repro.core.bounds import harmonic

    n = n_entries
    w = intervals
    if adaptive_th:
        import math

        n_star = max(
            1, min(n, math.ceil(n * rfm_th / (rfm_th + adaptive_th)))
        )
        bound = rfm_th * harmonic(min(n_star, w))
        bound += (
            (max(w - n_star, 0) + max(n - 2, 0)) * rfm_th
            + (n - n_star) * adaptive_th
        ) / n
        return bound
    bound = rfm_th * harmonic(min(n, w))
    bound += rfm_th * max(w - n, 0) / n
    bound += rfm_th * max(n - 2, 0) / n
    return bound
