"""Chrome trace-event export of a merged telemetry timeline.

The output is the JSON object format both ``chrome://tracing`` and
Perfetto's trace viewer load directly: ``{"traceEvents": [...]}`` with

* ``M`` (metadata) events naming each process track from its
  ``process.start`` role stamp (``supervisor``, ``worker``,
  ``campaign``);
* ``X`` (complete) events for spans — microsecond ``ts``/``dur``,
  ``pid`` from the writing process, ``tid`` defaulting to the pid but
  overridable per event (the supervisor writes lease spans with
  ``tid=<worker pid>`` so a worker that crashed before writing
  anything still gets its lease history on its own track);
* ``i`` (instant) events for every non-span moment — worker crashes,
  respawns, quarantines — so the timeline shows *why* a gap exists;
* ``C`` (counter) events when a probe directory is supplied
  (``trace export --probes-dir``): each probe stream becomes its own
  synthetic-pid track whose counters (ACTs, RAA, CbS occupancy,
  blacklist backlog, hot-row estimate error) plot the per-epoch
  time-series recorded by :mod:`repro.sim.probes`.  Probe samples are
  stamped in simulation *cycles*, not wall-clock — one cycle renders
  as one microsecond on its own track.

Timestamps are wall-clock seconds rebased to the earliest event so the
trace starts near zero regardless of when the run happened.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .events import merge_events

#: Synthetic pid base for probe counter tracks — far above real pids
#: (pid_max), so the tracks never collide with a process track.
_PROBE_PID_BASE = 9_000_000

#: Synthetic pid base for per-host process tracks in distributed
#: runs: two agents on two hosts can reuse the same OS pid, so every
#: (host, pid) pair is remapped to its own synthetic pid below the
#: probe range.
_HOST_PID_BASE = 8_000_000

_US = 1_000_000.0


def _host_pid_map(events: List[Dict[str, Any]]) -> Dict[tuple, int]:
    """Deterministic (host, pid) → synthetic pid routing table.

    Covers tids too (a lease span can reference a worker pid that
    never wrote its own stream); sorted first-by-host so the table —
    and therefore the exported trace — is stable across merges.
    """
    pairs = set()
    for record in events:
        host = record.get("host")
        if not host:
            continue
        pid = int(record.get("pid", 0))
        pairs.add((str(host), pid))
        pairs.add((str(host), int(record.get("tid", pid))))
    return {
        pair: _HOST_PID_BASE + index
        for index, pair in enumerate(sorted(pairs))
    }


def to_trace_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert a merged timeline to Chrome trace-event dicts."""
    if not events:
        return []
    host_pids = _host_pid_map(events)
    # Spans carry their wall-clock begin in "start" (the append "ts"
    # is the span *end*), so the rebase origin must consider both or
    # the earliest span would land at negative microseconds.
    base = min(
        float(e.get("start", e.get("ts", 0.0)))
        if e.get("kind") == "span" else float(e.get("ts", 0.0))
        for e in events
    )
    out: List[Dict[str, Any]] = []
    named: set = set()
    for record in events:
        raw_pid = int(record.get("pid", 0))
        host = str(record.get("host") or "")
        pid = host_pids.get((host, raw_pid), raw_pid) if host else raw_pid
        kind = str(record.get("kind", "?"))
        ts = float(record.get("ts", base))
        if kind == "process.start":
            role = str(record.get("role", "process"))
            label = (
                f"{role}@{host}-{raw_pid}" if host else f"{role}-{raw_pid}"
            )
            if pid not in named:
                named.add(pid)
                out.append({
                    "name": "process_name", "ph": "M", "pid": pid,
                    "args": {"name": label},
                })
            continue
        raw_tid = int(record.get("tid", raw_pid))
        tid = host_pids.get((host, raw_tid), raw_tid) if host else raw_tid
        if kind == "span":
            start = float(record.get("start", ts))
            attrs = dict(record.get("attrs") or {})
            attrs["pid"] = raw_pid
            attrs["seq"] = record.get("seq")
            if host:
                attrs["host"] = host
            out.append({
                "name": str(record.get("name", "span")),
                "ph": "X",
                "ts": round((start - base) * _US, 3),
                "dur": round(float(record.get("dur", 0.0)) * _US, 3),
                "pid": pid,
                "tid": tid,
                "cat": "span",
                "args": attrs,
            })
        else:
            args = {
                k: v for k, v in record.items()
                if k not in ("ts", "pid", "seq", "kind", "tid")
            }
            out.append({
                "name": kind,
                "ph": "i",
                "ts": round((ts - base) * _US, 3),
                "pid": pid,
                "tid": tid,
                "s": "t",
                "cat": "event",
                "args": args,
            })
    return out


def _sample_counters(record: Dict[str, Any]) -> Dict[str, int]:
    """The counter values one probe sample contributes to its track."""
    counters = {"acts": sum(record.get("acts") or [])}
    if "raa" in record:
        counters["raa"] = sum(record["raa"])
        counters["rfm_issued"] = sum(record.get("rfm_issued") or [])
    for key in ("mithril", "graphene"):
        block = record.get(key)
        if block:
            counters["cbs_entries"] = sum(block.get("entries") or [])
            maxima = block.get("max") or []
            counters["cbs_max"] = max(maxima) if maxima else 0
    blockhammer = record.get("blockhammer")
    if blockhammer:
        counters["bh_backlog"] = sum(blockhammer.get("backlog") or [])
        counters["bh_pending"] = sum(blockhammer.get("pending") or [])
    top = record.get("top")
    if top:
        errors = [
            est - true for row, true, est in zip(
                top.get("row", []), top.get("true", []),
                top.get("est", []),
            ) if row >= 0
        ]
        counters["top_row_error"] = max(errors) if errors else 0
    return counters


def probe_counter_events(probes_directory) -> List[Dict[str, Any]]:
    """Counter-track events from every probe stream in a directory."""
    from repro.sim.probes import probe_files, read_probe_stream

    out: List[Dict[str, Any]] = []
    for index, path in enumerate(probe_files(probes_directory)):
        records, _sealed = read_probe_stream(path)
        pid = _PROBE_PID_BASE + index
        out.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": f"probes-{path.name}"},
        })
        for record in records:
            if record.get("k") != "sample":
                continue
            ts = float(record.get("cycle", 0))
            for name, value in _sample_counters(record).items():
                out.append({
                    "name": f"probe.{name}",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {"value": value},
                })
    return out


def export_perfetto(
    directory: Path, probes_dir: Optional[Path] = None
) -> Dict[str, Any]:
    """Merge ``directory`` and wrap as a loadable trace document."""
    events = merge_events(directory)
    trace_events = to_trace_events(events)
    if probes_dir is not None:
        trace_events.extend(probe_counter_events(probes_dir))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro-telemetry", "events": len(events)},
    }


def write_perfetto(
    directory: Path, output: Path, probes_dir: Optional[Path] = None
) -> int:
    """Export ``directory`` to ``output``; returns the event count."""
    payload = export_perfetto(directory, probes_dir=probes_dir)
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return len(payload["traceEvents"])


def validate_perfetto(payload: Dict[str, Any]) -> List[str]:
    """Schema-check a trace document; returns a list of problems.

    This is the check the ``telemetry-smoke`` CI lane runs against the
    exported JSON: structural validity only, no timing semantics.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph in ("X", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
            if not isinstance(ev.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems
