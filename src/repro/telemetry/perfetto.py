"""Chrome trace-event export of a merged telemetry timeline.

The output is the JSON object format both ``chrome://tracing`` and
Perfetto's trace viewer load directly: ``{"traceEvents": [...]}`` with

* ``M`` (metadata) events naming each process track from its
  ``process.start`` role stamp (``supervisor``, ``worker``,
  ``campaign``);
* ``X`` (complete) events for spans — microsecond ``ts``/``dur``,
  ``pid`` from the writing process, ``tid`` defaulting to the pid but
  overridable per event (the supervisor writes lease spans with
  ``tid=<worker pid>`` so a worker that crashed before writing
  anything still gets its lease history on its own track);
* ``i`` (instant) events for every non-span moment — worker crashes,
  respawns, quarantines — so the timeline shows *why* a gap exists.

Timestamps are wall-clock seconds rebased to the earliest event so the
trace starts near zero regardless of when the run happened.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from .events import merge_events

_US = 1_000_000.0


def to_trace_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert a merged timeline to Chrome trace-event dicts."""
    if not events:
        return []
    # Spans carry their wall-clock begin in "start" (the append "ts"
    # is the span *end*), so the rebase origin must consider both or
    # the earliest span would land at negative microseconds.
    base = min(
        float(e.get("start", e.get("ts", 0.0)))
        if e.get("kind") == "span" else float(e.get("ts", 0.0))
        for e in events
    )
    out: List[Dict[str, Any]] = []
    named: set = set()
    for record in events:
        pid = int(record.get("pid", 0))
        kind = str(record.get("kind", "?"))
        ts = float(record.get("ts", base))
        if kind == "process.start":
            role = str(record.get("role", "process"))
            if pid not in named:
                named.add(pid)
                out.append({
                    "name": "process_name", "ph": "M", "pid": pid,
                    "args": {"name": f"{role}-{pid}"},
                })
            continue
        tid = int(record.get("tid", pid))
        if kind == "span":
            start = float(record.get("start", ts))
            attrs = dict(record.get("attrs") or {})
            attrs["pid"] = pid
            attrs["seq"] = record.get("seq")
            out.append({
                "name": str(record.get("name", "span")),
                "ph": "X",
                "ts": round((start - base) * _US, 3),
                "dur": round(float(record.get("dur", 0.0)) * _US, 3),
                "pid": pid,
                "tid": tid,
                "cat": "span",
                "args": attrs,
            })
        else:
            args = {
                k: v for k, v in record.items()
                if k not in ("ts", "pid", "seq", "kind", "tid")
            }
            out.append({
                "name": kind,
                "ph": "i",
                "ts": round((ts - base) * _US, 3),
                "pid": pid,
                "tid": tid,
                "s": "t",
                "cat": "event",
                "args": args,
            })
    return out


def export_perfetto(directory: Path) -> Dict[str, Any]:
    """Merge ``directory`` and wrap as a loadable trace document."""
    events = merge_events(directory)
    return {
        "traceEvents": to_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro-telemetry", "events": len(events)},
    }


def write_perfetto(directory: Path, output: Path) -> int:
    """Export ``directory`` to ``output``; returns the event count."""
    payload = export_perfetto(directory)
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return len(payload["traceEvents"])


def validate_perfetto(payload: Dict[str, Any]) -> List[str]:
    """Schema-check a trace document; returns a list of problems.

    This is the check the ``telemetry-smoke`` CI lane runs against the
    exported JSON: structural validity only, no timing semantics.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph in ("X", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
            if not isinstance(ev.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems
