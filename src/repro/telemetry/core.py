"""The instrumentation core: spans, metrics, bounded ring buffers.

Telemetry is **off by default** and zero-cost when off: every
instrumented seam asks :func:`get` for the active sink exactly once
per coarse operation (a ``run_jobs`` call, a simulation run, a chunk
fetch — never per event-loop iteration) and pays a single ``is None``
branch when ``REPRO_TELEMETRY`` is unset.  Setting
``REPRO_TELEMETRY=<dir>`` turns the same calls into:

* **spans** — ``with tel.span("sim.drain", backend="turbo"):``
  records a monotonic duration, accumulates it into the per-name
  timer registry, keeps the record in a bounded in-memory ring, and
  appends one newline-JSON event to this process's
  ``events-<pid>.jsonl`` under the telemetry directory;
* **counters / gauges** — a process-local metrics registry
  (:class:`MetricsRegistry`) with cheap integer/float cells;
* **events** — arbitrary structured moments (a worker spawn, a lease,
  a retry backoff) appended to the same per-process stream.

Every line in an event stream is written with a single ``write()``
call and flushed, so a crashed process can tear at most the trailing
line — the merger (:mod:`repro.telemetry.events`) skips it, the same
append discipline the durable store relies on.  Event timestamps are
wall-clock (``time.time()``), tagged with ``pid`` and a per-process
``seq`` so the merged run timeline has a deterministic total order
even under equal timestamps.

Telemetry never perturbs results: nothing here feeds a job hash, and
the golden-equivalence suite runs with telemetry enabled in CI.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable enabling telemetry: the directory that
#: receives per-process ``events-<pid>.jsonl`` streams.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Bound of the in-memory span/event ring (per process).
RING_CAPACITY = 4096

#: Event-stream filename pattern (one file per writing process).
EVENTS_GLOB = "events-*.jsonl"


class MetricsRegistry:
    """Process-local counters, gauges, and span-duration timers."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: accumulated span seconds by span name.
        self.timers: Dict[str, float] = {}

    def counter(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {k: round(v, 6) for k, v in self.timers.items()},
        }


class _Span:
    """One timed region; records on exit (even when the body raises)."""

    __slots__ = ("_tel", "name", "attrs", "_start", "_wall")

    def __init__(self, tel: "Telemetry", name: str, attrs: Dict[str, Any]):
        self._tel = tel
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        duration = time.perf_counter() - self._start
        self._tel._record_span(self.name, self._wall, duration, self.attrs)


class _NoopSpan:
    """The disabled-path span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Telemetry:
    """One process's telemetry sink (registry + ring + event stream).

    Construct through :func:`get`, never directly: the accessor ties
    the instance to the current ``REPRO_TELEMETRY`` value *and* the
    current pid, so a forked worker transparently gets its own
    ``events-<pid>.jsonl`` instead of interleaving with its parent.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.pid = os.getpid()
        self.registry = MetricsRegistry()
        self.ring: deque = deque(maxlen=RING_CAPACITY)
        self.role: Optional[str] = None
        self._seq = 0
        self._lock = threading.Lock()
        self._fh = None
        self._fh_failed = False

    # -- event stream --------------------------------------------------

    @property
    def events_path(self) -> Path:
        return self.directory / f"events-{self.pid}.jsonl"

    def _handle(self):
        if self._fh is None and not self._fh_failed:
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._fh = self.events_path.open("a")
            except OSError:
                # An unwritable telemetry dir degrades to in-memory
                # only — observability must never take the run down.
                self._fh_failed = True
        return self._fh

    def event(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one structured event to this process's stream.

        The record is also kept in the in-memory ring.  Each line is
        one ``write()`` + flush, so concurrent writers (threads) and
        crashes can tear at most the final line of the file.
        """
        with self._lock:
            self._seq += 1
            record = {
                "ts": time.time(),
                "pid": self.pid,
                "seq": self._seq,
                "kind": kind,
            }
            record.update(fields)
            self.ring.append(record)
            handle = self._handle()
            if handle is not None:
                try:
                    handle.write(
                        json.dumps(record, sort_keys=True,
                                   separators=(",", ":")) + "\n"
                    )
                    handle.flush()
                except (OSError, TypeError, ValueError):
                    pass
        return record

    def set_role(self, role: str) -> None:
        """Name this process's track (``supervisor`` / ``worker`` /
        ``campaign``); stamped once into the stream for the export."""
        if self.role == role:
            return
        self.role = role
        self.event("process.start", role=role)

    # -- spans ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def _record_span(
        self, name: str, wall: float, duration: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.registry.add_time(name, duration)
        fields: Dict[str, Any] = {
            "name": name, "dur": round(duration, 6), "start": wall,
        }
        if attrs:
            fields["attrs"] = attrs
        self.event("span", **fields)

    def synthetic_span(
        self, name: str, start: float, duration: float, **attrs: Any
    ) -> None:
        """Record a span whose bounds are known rather than measured
        (e.g. a retry-backoff window, a lease reconstructed by the
        supervisor after the worker died).  A ``tid`` attribute is
        hoisted to the record's top level so the Perfetto export can
        route the span onto another process's track."""
        self.registry.add_time(name, duration)
        fields: Dict[str, Any] = {
            "name": name, "dur": round(duration, 6), "start": start,
        }
        tid = attrs.pop("tid", None)
        if tid is not None:
            fields["tid"] = tid
        if attrs:
            fields["attrs"] = attrs
        self.event("span", **fields)

    # -- metrics -------------------------------------------------------

    def counter(self, name: str, n: int = 1) -> None:
        self.registry.counter(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name, value)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None


_active: Optional[Telemetry] = None


def get() -> Optional[Telemetry]:
    """The active sink, or None when telemetry is off.

    This is the single gate every instrumented seam goes through: the
    disabled path is one environment read and one ``is None`` branch.
    The instance is rebuilt whenever ``REPRO_TELEMETRY`` changes or
    the pid does (forked workers write their own stream).
    """
    global _active
    raw = os.environ.get(TELEMETRY_ENV)
    if not raw:
        if _active is not None:
            _active.close()
            _active = None
        return None
    directory = Path(raw)
    if (
        _active is None
        or _active.directory != directory
        or _active.pid != os.getpid()
    ):
        if _active is not None and _active.pid == os.getpid():
            _active.close()
        _active = Telemetry(directory)
    return _active


def reset() -> None:
    """Drop the active sink (tests; the next :func:`get` rebuilds)."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


def enabled() -> bool:
    return bool(os.environ.get(TELEMETRY_ENV))


def span(name: str, **attrs: Any):
    """Module-level convenience: a real span when on, no-op when off."""
    tel = get()
    return NOOP_SPAN if tel is None else tel.span(name, **attrs)


def counter(name: str, n: int = 1) -> None:
    tel = get()
    if tel is not None:
        tel.counter(name, n)


def event(kind: str, **fields: Any) -> None:
    tel = get()
    if tel is not None:
        tel.event(kind, **fields)
