"""Merging per-process event streams into one run timeline.

Each process that had telemetry enabled appended newline-JSON records
to its own ``events-<pid>.jsonl`` under the telemetry directory.  The
merger reads every stream, drops lines that do not parse (a process
that died mid-``write()`` can tear at most the trailing line of its
file — same failure model the durable store's ``index.jsonl`` append
path tolerates), and orders the survivors by ``(ts, host, pid, seq)``.
``pid`` and ``seq`` break wall-clock ties deterministically, so two
merges of the same directory always agree line for line.

Distributed campaigns add one level of nesting: each host agent
redirects its telemetry into ``<dir>/<host>/`` (see
:func:`repro.cluster.agent.agent_main`), so streams from different
hosts can carry *colliding pids*.  The merger folds the subdirectory
name into every nested record as its ``host`` field — part of the
merge key and of Perfetto track routing — which keeps two pid-4711
streams from two hosts distinct end to end.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .core import EVENTS_GLOB


def event_files(directory: Path) -> List[Path]:
    """The stream files under ``directory``, including per-host
    subdirectories, sorted (top-level streams first)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    nested = [
        path
        for sub in sorted(p for p in directory.iterdir() if p.is_dir())
        for path in sorted(sub.glob(EVENTS_GLOB))
    ]
    return sorted(directory.glob(EVENTS_GLOB)) + nested


def read_events(
    path: Path, host: Optional[str] = None
) -> Iterator[Dict[str, Any]]:
    """Yield parsable records from one stream, skipping torn lines.

    Any line that fails to parse as a JSON object is dropped rather
    than raised: the only way a well-behaved writer produces one is a
    crash mid-append, and losing that final partial record is exactly
    the torn-write tolerance the format promises.  ``host`` (the
    per-host subdirectory name) is folded into each record that does
    not already carry one.
    """
    try:
        with Path(path).open("r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    if host and "host" not in record:
                        record["host"] = host
                    yield record
    except OSError:
        return


def _merge_key(record: Dict[str, Any]) -> Tuple[float, str, int, int]:
    return (
        float(record.get("ts", 0.0)),
        str(record.get("host", "")),
        int(record.get("pid", 0)),
        int(record.get("seq", 0)),
    )


def merge_events(directory: Path) -> List[Dict[str, Any]]:
    """One deterministic run timeline from all streams in ``directory``."""
    directory = Path(directory)
    merged: List[Dict[str, Any]] = []
    for path in event_files(directory):
        host = path.parent.name if path.parent != directory else None
        merged.extend(read_events(path, host=host))
    merged.sort(key=_merge_key)
    return merged


def summarize_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a merged timeline: per-kind counts, span totals, pids."""
    kinds: Dict[str, int] = {}
    span_totals: Dict[str, float] = {}
    pids = set()
    hosts = set()
    for record in events:
        kind = str(record.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
        pids.add(record.get("pid"))
        if record.get("host"):
            hosts.add(str(record["host"]))
        if kind == "span":
            name = str(record.get("name", "?"))
            span_totals[name] = (
                span_totals.get(name, 0.0) + float(record.get("dur", 0.0))
            )
    return {
        "total": len(events),
        "kinds": kinds,
        "span_seconds": {k: round(v, 6) for k, v in span_totals.items()},
        "processes": sorted(p for p in pids if p is not None),
        "hosts": sorted(hosts),
    }


def slowest_spans(
    events: List[Dict[str, Any]], limit: int = 10
) -> List[Dict[str, Any]]:
    """The ``limit`` individually slowest span records, longest first.

    Ties break on the merge key so two runs over the same directory
    always list the same spans in the same order.  Each entry carries
    the span's name, duration, start offset from the earliest span
    start, owning pid, and attrs.
    """
    spans = [r for r in events if r.get("kind") == "span"]
    if not spans:
        return []
    base = min(float(r.get("start", r.get("ts", 0.0))) for r in spans)
    spans.sort(key=lambda r: (-float(r.get("dur", 0.0)), _merge_key(r)))
    out = []
    for record in spans[:limit]:
        out.append({
            "name": str(record.get("name", "?")),
            "dur": round(float(record.get("dur", 0.0)), 6),
            "start": round(
                float(record.get("start", record.get("ts", 0.0))) - base, 6
            ),
            "pid": record.get("pid"),
            "attrs": record.get("attrs", {}),
        })
    return out
