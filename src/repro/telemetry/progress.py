"""Live campaign progress: snapshots and ``status --follow``.

A progress snapshot combines two sources: the campaign manifest (the
durable source of truth for done / quarantined / total) and, when a
telemetry directory is available, the merged event streams (retries,
worker crashes, jobs currently in flight).  The follower polls both,
keeps an exponential moving average of completion throughput, and
projects an ETA — the operational view a 10^4-job campaign was
missing when it stalled.

Imports from :mod:`repro.campaigns` are deferred to call time so
``repro.telemetry`` stays importable from inside the campaign
executor without a cycle.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional

from .events import merge_events

#: EMA smoothing factor for throughput (per follow tick).
EMA_ALPHA = 0.3


def _telemetry_counts(telemetry_dir: Optional[Path]) -> Dict[str, int]:
    counts = {"retried": 0, "crashes": 0, "inflight": 0}
    if telemetry_dir is None:
        return counts
    started: Dict[str, int] = {}
    finished = set()
    for record in merge_events(Path(telemetry_dir)):
        kind = record.get("kind")
        if kind == "job.retry":
            counts["retried"] += 1
        elif kind == "worker.crash":
            counts["crashes"] += 1
        elif kind == "lease.assign":
            job = record.get("job")
            if job:
                started[job] = started.get(job, 0) + 1
        elif kind in ("job.ok", "job.error"):
            job = record.get("job")
            if job:
                finished.add((job, kind))
                started[job] = max(0, started.get(job, 1) - 1)
        elif kind == "job.quarantine":
            # Terminal: whatever leases the job held are closed.
            job = record.get("job")
            if job:
                started.pop(job, None)
    counts["inflight"] = sum(1 for n in started.values() if n > 0)
    return counts


def campaign_progress(
    name: str,
    directory: Optional[Path] = None,
    telemetry_dir: Optional[Path] = None,
) -> Optional[Dict[str, Any]]:
    """One progress snapshot, or None when no manifest exists yet."""
    from repro.campaigns import CampaignManifest, manifest_path

    manifest = CampaignManifest.load(manifest_path(name, directory))
    if manifest is None:
        return None
    total = int(manifest.data.get("total_points") or 0)
    done = len(manifest.completed)
    quarantined = len(manifest.quarantined)
    snapshot = {
        "campaign": name,
        "status": manifest.status,
        "total": total,
        "done": done,
        "quarantined": quarantined,
        "remaining": max(0, total - done - quarantined),
    }
    snapshot.update(_telemetry_counts(telemetry_dir))
    return snapshot


def format_progress(
    snap: Dict[str, Any],
    rate: Optional[float] = None,
    eta_s: Optional[float] = None,
) -> str:
    total = snap["total"] or 1
    pct = 100.0 * snap["done"] / total
    line = (
        f"[{snap['campaign']}] {snap['done']}/{snap['total']} done "
        f"({pct:.1f}%) | inflight {snap['inflight']} "
        f"| retried {snap['retried']} "
        f"| quarantined {snap['quarantined']} | {snap['status']}"
    )
    if rate is not None:
        line += f" | {rate:.2f} jobs/s"
    if eta_s is not None:
        line += f" | ETA {eta_s:.0f}s"
    return line


def follow_campaign(
    name: str,
    directory: Optional[Path] = None,
    telemetry_dir: Optional[Path] = None,
    interval: float = 2.0,
    ticks: Optional[int] = None,
    out=None,
    sleep=time.sleep,
    clock=time.monotonic,
) -> Dict[str, Any]:
    """Poll progress until the campaign settles (or ``ticks`` expire).

    ``ticks``, ``out``, ``sleep``, and ``clock`` are injectable so the
    follow loop is testable without wall-clock waits.  Returns the
    final snapshot (augmented with ``rate`` and ``eta_s``).
    """
    import sys

    out = out or sys.stdout
    ema_rate: Optional[float] = None
    last_done: Optional[int] = None
    last_t: Optional[float] = None
    tick = 0
    snap: Dict[str, Any] = {}
    while True:
        tick += 1
        now = clock()
        current = campaign_progress(
            name, directory=directory, telemetry_dir=telemetry_dir
        )
        if current is None:
            out.write(f"[{name}] no manifest yet\n")
            out.flush()
        else:
            snap = current
            if last_done is not None and last_t is not None:
                dt = max(now - last_t, 1e-9)
                inst = (snap["done"] - last_done) / dt
                ema_rate = (
                    inst if ema_rate is None
                    else EMA_ALPHA * inst + (1 - EMA_ALPHA) * ema_rate
                )
            last_done, last_t = snap["done"], now
            eta_s = (
                snap["remaining"] / ema_rate
                if ema_rate and ema_rate > 0 else None
            )
            out.write(format_progress(snap, ema_rate, eta_s) + "\n")
            out.flush()
            snap["rate"] = ema_rate
            snap["eta_s"] = eta_s
            if snap["remaining"] == 0 and snap["status"] != "running":
                break
        if ticks is not None and tick >= ticks:
            break
        sleep(interval)
    return snap
