"""Structured telemetry: spans, metrics, event streams, exporters.

Off unless ``REPRO_TELEMETRY=<dir>`` is set; see docs/OBSERVABILITY.md.
:mod:`repro.telemetry.progress` is intentionally not imported here —
it reaches back into :mod:`repro.campaigns` and would create a cycle;
consumers import it directly.
"""

from .core import (
    NOOP_SPAN,
    RING_CAPACITY,
    TELEMETRY_ENV,
    MetricsRegistry,
    Telemetry,
    counter,
    enabled,
    event,
    get,
    reset,
    span,
)
from .events import event_files, merge_events, read_events, summarize_events
from .perfetto import (
    export_perfetto,
    to_trace_events,
    validate_perfetto,
    write_perfetto,
)

__all__ = [
    "NOOP_SPAN",
    "RING_CAPACITY",
    "TELEMETRY_ENV",
    "MetricsRegistry",
    "Telemetry",
    "counter",
    "enabled",
    "event",
    "event_files",
    "export_perfetto",
    "get",
    "merge_events",
    "read_events",
    "reset",
    "span",
    "summarize_events",
    "to_trace_events",
    "validate_perfetto",
    "write_perfetto",
]
