"""Declarative simulation jobs.

A :class:`SimJob` names everything :func:`repro.sim.system.simulate`
needs — the workload *by reference* into the engine catalog, the
protection scheme by name (plus optional explicit parameters), and the
simulator knobs — as plain, frozen, hashable data.  That buys three
things at once:

* identical jobs deduplicate before any work happens;
* jobs pickle cheaply into worker processes (traces are rebuilt from
  their seeded generators inside the child, never shipped over IPC);
* a canonical JSON form hashes into a stable on-disk cache key.

Parameter bags (workload params, scheme params, config overrides) are
stored as sorted ``(key, value)`` tuples of JSON scalars so that two
jobs built from differently-ordered keyword arguments hash alike.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

#: A frozen parameter bag: sorted (key, scalar) pairs.
Params = Tuple[Tuple[str, Any], ...]

_SCALARS = (str, int, float, bool, type(None))


def freeze_params(params: Optional[Mapping[str, Any]]) -> Params:
    """Normalize a mapping of JSON scalars into a hashable tuple."""
    if not params:
        return ()
    for key, value in params.items():
        if not isinstance(key, str):
            raise TypeError(f"parameter names must be str, got {key!r}")
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"parameter {key!r} must be a JSON scalar "
                f"(str/int/float/bool/None), got {type(value).__name__}"
            )
    return tuple(sorted(params.items()))


def _coerce_params(params: Union[None, Mapping[str, Any], Params]) -> Params:
    if params is None:
        return ()
    if isinstance(params, tuple):
        return params
    return freeze_params(params)


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by reference: catalog kind + builder parameters.

    The spec never holds traces; :func:`repro.engine.catalog.
    build_workload` materializes them deterministically (all builders
    are seeded), so a spec is both the dedup/cache key and the cheap
    thing to ship to worker processes.
    """

    kind: str
    params: Params = ()

    @classmethod
    def make(cls, kind: str, **params: Any) -> "WorkloadSpec":
        return cls(kind=kind, params=freeze_params(params))

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class SimJob:
    """One point of a sweep: (workload, scheme, simulator knobs).

    ``scheme`` names a scheme from the catalog; with an empty
    ``scheme_params`` the catalog applies the paper's per-FlipTH
    configuration (:func:`repro.engine.catalog.scheme_under_test`),
    while a non-empty bag instantiates the scheme with exactly those
    constructor arguments.  ``rfm_th=None`` means "derive from the
    scheme configuration"; drivers that know the RAA threshold pass it
    explicitly.  ``scale`` is the trace-coverage calibration knob that
    BlockHammer's window-compressed thresholds track.
    """

    workload: WorkloadSpec
    scheme: str = "none"
    scheme_params: Params = ()
    flip_th: int = 10_000
    rfm_th: Optional[int] = None
    scale: float = 1.0
    mlp: int = 4
    max_cycles: Optional[int] = None
    track_hammer: bool = True
    config_overrides: Params = ()

    @classmethod
    def make(
        cls,
        workload: WorkloadSpec,
        scheme: str = "none",
        scheme_params: Union[None, Mapping[str, Any], Params] = None,
        config_overrides: Union[None, Mapping[str, Any], Params] = None,
        **knobs: Any,
    ) -> "SimJob":
        """Build a job, freezing any dict-valued parameter bags."""
        return cls(
            workload=workload,
            scheme=scheme,
            scheme_params=_coerce_params(scheme_params),
            config_overrides=_coerce_params(config_overrides),
            **knobs,
        )

    def canonical(self) -> Dict[str, Any]:
        """A stable description of the job that round-trips via JSON."""

        def pairs(params: Params):
            return [[key, value] for key, value in params]

        return {
            "workload": {"kind": self.workload.kind,
                         "params": pairs(self.workload.params)},
            "scheme": self.scheme,
            "scheme_params": pairs(self.scheme_params),
            "flip_th": self.flip_th,
            "rfm_th": self.rfm_th,
            "scale": self.scale,
            "mlp": self.mlp,
            "max_cycles": self.max_cycles,
            "track_hammer": self.track_hammer,
            "config_overrides": pairs(self.config_overrides),
        }

    def job_hash(self) -> str:
        """Content hash identifying the job (dedup + cache key)."""
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    @classmethod
    def from_canonical(cls, data: Mapping[str, Any]) -> "SimJob":
        """Rebuild a job from :meth:`canonical` output.

        The inverse the cluster transport needs: assignment messages
        ship jobs as canonical JSON, and the receiving host agent must
        reconstruct a job whose :meth:`job_hash` matches the
        coordinator's — parameter pairs come back as lists after a
        JSON round-trip and are re-frozen into tuples here.
        """

        def unpairs(raw: Any) -> Params:
            return tuple((str(key), value) for key, value in raw or ())

        workload = data["workload"]
        return cls(
            workload=WorkloadSpec(kind=str(workload["kind"]),
                                  params=unpairs(workload.get("params"))),
            scheme=str(data.get("scheme", "none")),
            scheme_params=unpairs(data.get("scheme_params")),
            flip_th=int(data.get("flip_th", 10_000)),
            rfm_th=data.get("rfm_th"),
            scale=float(data.get("scale", 1.0)),
            mlp=int(data.get("mlp", 4)),
            max_cycles=data.get("max_cycles"),
            track_hammer=bool(data.get("track_hammer", True)),
            config_overrides=unpairs(data.get("config_overrides")),
        )
