"""The job executor: dedup → cache → supervised (parallel) simulate.

:func:`run_jobs` is the one entry point every experiment driver and
bench goes through.  Results come back in input order; identical jobs
(same :meth:`~repro.engine.job.SimJob.job_hash`) are simulated once
and fanned back out, warm cache entries skip simulation entirely, and
``n_jobs > 1`` distributes the remaining work over a supervised
worker pool (:mod:`repro.engine.supervisor`): per-job leases with
optional timeouts, crash detection, retry with exponential backoff,
and quarantine of poison jobs instead of opaque pool errors.
``n_jobs=1`` is a deterministic serial path with no pool involved at
all (unless a ``job_timeout`` is requested, which needs a worker
process to enforce).

Worker processes receive only the pickled :class:`SimJob`; traces are
rebuilt from their seeded generators inside the child, so parallel
runs are byte-identical to serial ones.

Every call publishes a :class:`RunStats` on ``run_jobs.last_stats``
(``simulated == 0`` on a fully warm cache is the invariant the
determinism tests pin down).  Jobs that exhaust their retry budget
surface as structured :class:`~repro.engine.supervisor.JobFailure`
records on ``last_stats.failures`` — with job hash, scheme, workload,
per-attempt events, and the traceback — and either raise a
:class:`JobExecutionError` (``on_failure="raise"``, the default) or
leave ``None`` in their result slots (``on_failure="skip"``, what the
campaign executor uses to quarantine and keep going).
"""

from __future__ import annotations

import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.cache import ResultCache
from repro.engine.catalog import build_config, build_workload, scheme_factory_for
from repro.engine.job import SimJob
from repro.engine.supervisor import (
    JobFailure,
    RetryPolicy,
    SupervisedPool,
)
from repro.sim.metrics import SimulationResult

#: Default retry budget for failed/crashed/timed-out jobs.
DEFAULT_MAX_RETRIES = 2


class JobExecutionError(RuntimeError):
    """Jobs failed after every retry; carries the structured records.

    The message leads with the first failure's identity (hash, scheme,
    workload, reason) so a campaign log is actionable without digging
    — the full per-job diagnostics live on :attr:`failures`.
    """

    def __init__(self, failures: List[JobFailure]):
        self.failures = list(failures)
        first = self.failures[0]
        extra = (
            f" (and {len(self.failures) - 1} more)"
            if len(self.failures) > 1 else ""
        )
        super().__init__(f"job failed: {first.describe()}{extra}")


@dataclass
class RunStats:
    """Accounting for one :func:`run_jobs` call."""

    total: int = 0        #: jobs requested (including duplicates)
    unique: int = 0       #: distinct job hashes
    cache_hits: int = 0   #: unique jobs served from the on-disk cache
    cache_misses: int = 0       #: unique jobs the cache could not serve
    cache_quarantined: int = 0  #: corrupt entries quarantined on lookup
    simulated: int = 0    #: unique jobs successfully executed
    n_jobs: int = 1       #: worker processes used
    retried: int = 0      #: attempts re-queued after a failure
    failed: int = 0       #: unique jobs that exhausted their retries
    failures: List[JobFailure] = field(default_factory=list)
    #: Wall seconds by phase (``cache_lookup`` / ``execute`` /
    #: ``cache_put``); where this run's time actually went, so
    #: bench-speed entries can attribute a speedup to a phase.
    timing_breakdown: Dict[str, float] = field(default_factory=dict)


def materialize_job(job: SimJob):
    """(traces, scheme factory, config, rfm_th) for one job.

    The single build path shared by the executor, the speed bench
    (:mod:`repro.speed`) and ``repro profile`` — callers that time or
    profile ``simulate()`` separately from workload construction must
    still build exactly what :func:`run_jobs` executes.
    """
    traces = build_workload(job.workload)
    factory, rfm_th = scheme_factory_for(job)
    config = build_config(job.config_overrides)
    return traces, factory, config, rfm_th


def execute_job(job: SimJob) -> SimulationResult:
    """Materialize and run one job (also the worker-process entry)."""
    from repro.sim.system import simulate

    traces, factory, config, rfm_th = materialize_job(job)
    return simulate(
        traces,
        scheme_factory=factory,
        config=config,
        rfm_th=rfm_th,
        flip_th=job.flip_th,
        mlp=job.mlp,
        track_hammer=job.track_hammer,
        max_cycles=job.max_cycles,
    )


def _execute_serial(
    missing: List[Tuple[str, SimJob]], policy: RetryPolicy, stats: RunStats
) -> Dict[str, SimulationResult]:
    """In-process execution with the same retry/quarantine contract.

    Injected crashes (:class:`repro.faults.InjectedCrash`) raise here
    instead of killing the interpreter, so the serial path exercises
    the identical retry machinery; ``hang`` faults genuinely hang —
    lease enforcement needs a worker process (pass a ``job_timeout``).
    """
    from repro import telemetry
    from repro.faults import maybe_fail

    tel = telemetry.get()
    results: Dict[str, SimulationResult] = {}
    for job_hash, job in missing:
        events = []
        attempts = 0
        while True:
            attempts += 1
            try:
                maybe_fail("worker.execute", job_hash)
                span = (
                    tel.span("job.execute", job=job_hash,
                             scheme=job.scheme, attempt=attempts)
                    if tel is not None else telemetry.NOOP_SPAN
                )
                with span:
                    results[job_hash] = execute_job(job)
                if tel is not None:
                    tel.event("job.ok", job=job_hash, attempts=attempts)
                break
            except Exception as error:  # noqa: BLE001 — recorded below
                message = f"{type(error).__name__}: {error}"
                events.append({
                    "attempt": attempts,
                    "reason": "exception",
                    "message": message,
                })
                if tel is not None:
                    tel.event(
                        "job.error", job=job_hash,
                        attempt=attempts, message=message,
                    )
                if attempts > policy.max_retries:
                    stats.failures.append(JobFailure(
                        job_hash=job_hash,
                        scheme=job.scheme,
                        workload=job.workload.kind,
                        attempts=attempts,
                        reason="exception",
                        message=message,
                        traceback=traceback.format_exc(),
                        events=events,
                    ))
                    if tel is not None:
                        tel.event(
                            "job.quarantine", job=job_hash,
                            attempts=attempts, reason="exception",
                        )
                    break
                stats.retried += 1
                delay = policy.delay(job_hash, attempts)
                if tel is not None:
                    tel.event(
                        "job.retry", job=job_hash,
                        attempt=attempts, delay=round(delay, 6),
                    )
                if delay > 0.0:
                    if tel is not None:
                        tel.synthetic_span(
                            "retry.backoff", time.time(), delay,
                            job=job_hash, attempt=attempts,
                        )
                    time.sleep(delay)
    return results


def run_jobs(
    jobs: Iterable[SimJob],
    n_jobs: int = 1,
    use_cache: bool = True,
    cache_dir=None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_timeout: Optional[float] = None,
    on_failure: str = "raise",
    retry_policy: Optional[RetryPolicy] = None,
) -> List[Optional[SimulationResult]]:
    """Run a batch of jobs; results align with the input order.

    ``n_jobs`` — worker processes (1 = serial, in-process).
    ``use_cache`` — consult/populate the on-disk result cache.
    ``cache_dir`` — cache location override (defaults to
    ``REPRO_CACHE_DIR`` or ``~/.cache/repro/sim``).
    ``max_retries`` — retry budget per job (crash, exception, or
    timeout all count; exhausted jobs become structured failures).
    ``job_timeout`` — per-job lease in seconds; needs worker
    processes, so a timeout forces the supervised pool even when
    ``n_jobs=1``.
    ``on_failure`` — ``"raise"`` (default) raises
    :class:`JobExecutionError` once all non-failed results are
    collected and cached; ``"skip"`` returns ``None`` in the failed
    jobs' slots.  Either way ``run_jobs.last_stats.failures`` carries
    the records.
    ``retry_policy`` — full :class:`RetryPolicy` override (backoff
    shape); wins over ``max_retries``.
    """
    if on_failure not in ("raise", "skip"):
        raise ValueError(
            f"on_failure must be 'raise' or 'skip', got {on_failure!r}"
        )
    from repro import telemetry

    job_list = list(jobs)
    n_jobs = max(1, int(n_jobs))
    policy = retry_policy or RetryPolicy(max_retries=max_retries)
    stats = RunStats(total=len(job_list), n_jobs=n_jobs)
    tel = telemetry.get()

    order: List[str] = []
    unique: Dict[str, SimJob] = {}
    for job in job_list:
        job_hash = job.job_hash()
        order.append(job_hash)
        if job_hash not in unique:
            unique[job_hash] = job
    stats.unique = len(unique)

    results: Dict[str, SimulationResult] = {}
    cache: Optional[ResultCache] = (
        ResultCache(cache_dir) if use_cache else None
    )
    t0 = time.perf_counter()
    if cache is not None:
        span = (
            tel.span("run_jobs.cache_lookup", unique=stats.unique)
            if tel is not None else telemetry.NOOP_SPAN
        )
        with span:
            for job_hash, job in unique.items():
                hit = cache.get(job)
                if hit is not None:
                    results[job_hash] = hit
        stats.cache_hits = cache.hits
        stats.cache_misses = cache.misses
        stats.cache_quarantined = cache.quarantined
    stats.timing_breakdown["cache_lookup"] = time.perf_counter() - t0

    missing = [
        (job_hash, job)
        for job_hash, job in unique.items()
        if job_hash not in results
    ]
    if missing:
        workers = min(n_jobs, len(missing))
        supervised = workers > 1 or job_timeout is not None
        executed: Dict[str, SimulationResult] = {}
        t0 = time.perf_counter()
        span = (
            tel.span(
                "run_jobs.execute", missing=len(missing),
                workers=workers, supervised=supervised,
            )
            if tel is not None else telemetry.NOOP_SPAN
        )
        with span:
            if supervised:
                pool = SupervisedPool(
                    workers, job_timeout=job_timeout, policy=policy
                )
                try:
                    outcome = pool.run(missing)
                except OSError as error:
                    warnings.warn(
                        f"worker pool unavailable ({error}); "
                        "falling back to serial execution",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    executed = _execute_serial(missing, policy, stats)
                else:
                    executed = outcome.results
                    stats.retried += outcome.retried
                    stats.failures.extend(
                        outcome.failures[h] for h in sorted(outcome.failures)
                    )
                    if outcome.queue_wait_s:
                        stats.timing_breakdown["queue_wait"] = round(
                            outcome.queue_wait_s, 6
                        )
            else:
                executed = _execute_serial(missing, policy, stats)
        stats.timing_breakdown["execute"] = time.perf_counter() - t0
        results.update(executed)
        stats.simulated = len(executed)
        stats.failed = len(stats.failures)
        t0 = time.perf_counter()
        if cache is not None:
            span = (
                tel.span("run_jobs.cache_put", entries=len(executed))
                if tel is not None else telemetry.NOOP_SPAN
            )
            with span:
                for job_hash, _job in missing:
                    if job_hash in executed:
                        cache.put(unique[job_hash], executed[job_hash])
        stats.timing_breakdown["cache_put"] = time.perf_counter() - t0
    stats.timing_breakdown = {
        k: round(v, 6) for k, v in stats.timing_breakdown.items()
    }

    run_jobs.last_stats = stats
    if tel is not None:
        tel.event(
            "run_jobs.done",
            total=stats.total, unique=stats.unique,
            cache_hits=stats.cache_hits, simulated=stats.simulated,
            retried=stats.retried, failed=stats.failed,
            timing=stats.timing_breakdown,
        )
    if stats.failures and on_failure == "raise":
        raise JobExecutionError(stats.failures)
    return [results.get(job_hash) for job_hash in order]


#: Stats of the most recent call (None before the first call).
run_jobs.last_stats = None
