"""The job executor: dedup → cache → (parallel) simulate.

:func:`run_jobs` is the one entry point every experiment driver and
bench goes through.  Results come back in input order; identical jobs
(same :meth:`~repro.engine.job.SimJob.job_hash`) are simulated once
and fanned back out, warm cache entries skip simulation entirely, and
``n_jobs > 1`` distributes the remaining work over a
``ProcessPoolExecutor``.  ``n_jobs=1`` is a deterministic serial path
with no pool involved at all.

Worker processes receive only the pickled :class:`SimJob`; traces are
rebuilt from their seeded generators inside the child, so parallel
runs are byte-identical to serial ones.

Every call publishes a :class:`RunStats` on ``run_jobs.last_stats``
(``simulated == 0`` on a fully warm cache is the invariant the
determinism tests pin down).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.cache import ResultCache
from repro.engine.catalog import build_config, build_workload, scheme_factory_for
from repro.engine.job import SimJob
from repro.sim.metrics import SimulationResult


@dataclass
class RunStats:
    """Accounting for one :func:`run_jobs` call."""

    total: int = 0        #: jobs requested (including duplicates)
    unique: int = 0       #: distinct job hashes
    cache_hits: int = 0   #: unique jobs served from the on-disk cache
    simulated: int = 0    #: unique jobs actually executed
    n_jobs: int = 1       #: worker processes used


def materialize_job(job: SimJob):
    """(traces, scheme factory, config, rfm_th) for one job.

    The single build path shared by the executor, the speed bench
    (:mod:`repro.speed`) and ``repro profile`` — callers that time or
    profile ``simulate()`` separately from workload construction must
    still build exactly what :func:`run_jobs` executes.
    """
    traces = build_workload(job.workload)
    factory, rfm_th = scheme_factory_for(job)
    config = build_config(job.config_overrides)
    return traces, factory, config, rfm_th


def execute_job(job: SimJob) -> SimulationResult:
    """Materialize and run one job (also the worker-process entry)."""
    from repro.sim.system import simulate

    traces, factory, config, rfm_th = materialize_job(job)
    return simulate(
        traces,
        scheme_factory=factory,
        config=config,
        rfm_th=rfm_th,
        flip_th=job.flip_th,
        mlp=job.mlp,
        track_hammer=job.track_hammer,
        max_cycles=job.max_cycles,
    )


def _execute_parallel(
    missing: List[Tuple[str, SimJob]], workers: int
) -> Dict[str, SimulationResult]:
    jobs = [job for _hash, job in missing]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        completed = list(pool.map(execute_job, jobs))
    return {h: result for (h, _job), result in zip(missing, completed)}


def run_jobs(
    jobs: Iterable[SimJob],
    n_jobs: int = 1,
    use_cache: bool = True,
    cache_dir=None,
) -> List[SimulationResult]:
    """Run a batch of jobs; results align with the input order.

    ``n_jobs`` — worker processes (1 = serial, in-process).
    ``use_cache`` — consult/populate the on-disk result cache.
    ``cache_dir`` — cache location override (defaults to
    ``REPRO_CACHE_DIR`` or ``~/.cache/repro/sim``).
    """
    job_list = list(jobs)
    n_jobs = max(1, int(n_jobs))
    stats = RunStats(total=len(job_list), n_jobs=n_jobs)

    order: List[str] = []
    unique: Dict[str, SimJob] = {}
    for job in job_list:
        job_hash = job.job_hash()
        order.append(job_hash)
        if job_hash not in unique:
            unique[job_hash] = job
    stats.unique = len(unique)

    results: Dict[str, SimulationResult] = {}
    cache: Optional[ResultCache] = (
        ResultCache(cache_dir) if use_cache else None
    )
    if cache is not None:
        for job_hash, job in unique.items():
            hit = cache.get(job)
            if hit is not None:
                results[job_hash] = hit
        stats.cache_hits = len(results)

    missing = [
        (job_hash, job)
        for job_hash, job in unique.items()
        if job_hash not in results
    ]
    stats.simulated = len(missing)
    if missing:
        workers = min(n_jobs, len(missing))
        if workers > 1:
            try:
                results.update(_execute_parallel(missing, workers))
            except (OSError, BrokenProcessPool) as error:
                warnings.warn(
                    f"process pool unavailable ({error}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                for job_hash, job in missing:
                    results[job_hash] = execute_job(job)
        else:
            for job_hash, job in missing:
                results[job_hash] = execute_job(job)
        if cache is not None:
            for job_hash, job in missing:
                cache.put(job, results[job_hash])

    run_jobs.last_stats = stats
    return [results[job_hash] for job_hash in order]


#: Stats of the most recent call (None before the first call).
run_jobs.last_stats = None
