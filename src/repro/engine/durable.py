"""Durable JSON records: atomic writes, sealed payloads, quarantine.

Every result-store, cache, and manifest write in this repo goes
through :func:`atomic_write_json`: the payload lands in a temp file
next to its destination and is renamed into place, so a process killed
mid-write leaves the previous contents intact — never a half-written
JSON file.  Store entries are additionally **sealed**: a ``sha256``
field over the canonical payload is added on write and verified on
read, so truncation *and* silent bit rot both surface as
:class:`CorruptEntryError` instead of wrong results.

Corruption is handled by **quarantine, not exceptions mid-campaign**:
:func:`quarantine_file` moves the offending file into a sibling
``quarantine/`` directory (out of every entry glob) and logs why, so
the read path reports a miss, the point is re-simulated, and the
evidence survives for diagnosis.

The writer is also where the fault-injection harness
(:mod:`repro.faults`, docs/FAULTS.md) hooks in: a ``torn`` rule makes
the write land truncated at the *final* path (simulating the
pre-atomic writers this module retires, or a filesystem eating a
write), a ``corrupt`` rule flips the seal (bit rot), and a ``crash``
rule kills the process in the window between temp write and rename —
the exact window the atomic protocol must make safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.faults import maybe_fail

#: Name of the seal field added to durable records.
SEAL_KEY = "sha256"

#: Quarantine directory name inside a store generation / campaign dir.
QUARANTINE_DIR = "quarantine"

#: Append-only log of quarantined files inside the quarantine dir.
QUARANTINE_LOG = "log.jsonl"


class CorruptEntryError(ValueError):
    """A durable record that is unreadable, truncated, or unsealed."""


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def payload_checksum(record: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON of ``record`` minus its seal."""
    unsealed = {k: v for k, v in record.items() if k != SEAL_KEY}
    return hashlib.sha256(_canonical(unsealed).encode("utf-8")).hexdigest()


def seal(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` carrying its payload checksum."""
    sealed = dict(record)
    sealed[SEAL_KEY] = payload_checksum(record)
    return sealed


def is_sealed_ok(record: Dict[str, Any]) -> bool:
    """Seal verification; records without a seal (legacy) pass."""
    stored = record.get(SEAL_KEY)
    if stored is None:
        return True
    return stored == payload_checksum(record)


def read_json_verified(path: Path) -> Dict[str, Any]:
    """Load a durable record, raising :class:`CorruptEntryError`.

    ``FileNotFoundError`` passes through untouched (a missing entry is
    a miss, not corruption); anything else unreadable — truncated
    JSON, a non-object payload, a failed seal — is corruption.
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        raise
    except OSError as error:
        raise CorruptEntryError(f"unreadable: {error}") from error
    try:
        record = json.loads(text)
    except ValueError as error:
        raise CorruptEntryError(f"invalid JSON: {error}") from error
    if not isinstance(record, dict):
        raise CorruptEntryError(
            f"expected a JSON object, got {type(record).__name__}"
        )
    if not is_sealed_ok(record):
        raise CorruptEntryError("sha256 seal mismatch (payload tampered "
                                "or partially written)")
    return record


def atomic_write_json(
    path: Path,
    record: Dict[str, Any],
    indent: Optional[int] = None,
    fault_site: Optional[str] = None,
    fault_key: str = "",
) -> None:
    """Write ``record`` to ``path`` via temp-file rename.

    ``fault_site`` names the injection point consulted *between* the
    temp write and the rename — the window a ``kill -9`` would hit.
    Exceptions from the filesystem propagate; callers that must
    degrade gracefully (the cache) wrap the call.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(record, indent=indent, sort_keys=indent is None,
                      separators=(",", ":") if indent is None else None)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text + "\n")
    rule = maybe_fail(fault_site, fault_key) if fault_site else None
    if rule is not None and rule.kind == "torn":
        # Simulate a non-atomic writer torn mid-payload: the final
        # path gets the first half of the text, the temp file goes.
        path.write_text(text[: max(1, len(text) // 2)])
        tmp.unlink(missing_ok=True)
        return
    if rule is not None and rule.kind == "corrupt":
        # Simulate silent bit rot: valid JSON, failed seal.
        rotted = dict(record)
        rotted[SEAL_KEY] = payload_checksum(record)[::-1]
        tmp.write_text(json.dumps(rotted, indent=indent) + "\n")
    os.replace(tmp, path)


def quarantine_file(
    path: Path, reason: str, root: Optional[Path] = None
) -> Optional[Path]:
    """Move a corrupt file into ``<root>/quarantine/`` and log why.

    ``root`` defaults to the file's parent (for flat layouts); sharded
    callers pass the generation directory so all quarantined entries
    pool in one place.  Best-effort: returns the new path, or None if
    the move failed (the file is left alone and stays a cache miss).
    """
    path = Path(path)
    root = Path(root) if root is not None else path.parent
    target_dir = root / QUARANTINE_DIR
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        n = 0
        while target.exists():
            n += 1
            target = target_dir / f"{path.name}.{n}"
        os.replace(path, target)
    except OSError:
        return None
    try:
        with (target_dir / QUARANTINE_LOG).open("a") as handle:
            handle.write(json.dumps({
                "file": path.name,
                "quarantined_as": target.name,
                "reason": reason,
                "time": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
            }, sort_keys=True) + "\n")
    except OSError:
        pass
    return target


def quarantine_log(root: Path) -> list:
    """Parsed quarantine log records under ``root`` (may be empty)."""
    path = Path(root) / QUARANTINE_DIR / QUARANTINE_LOG
    records = []
    try:
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        pass
    return records
