"""The workload and scheme catalogs behind :class:`SimJob`.

Everything a job references by name is resolved here:

* **workload kinds** — registered builder functions that materialize a
  list of :class:`~repro.workloads.trace.CoreTrace` from a
  :class:`~repro.engine.job.WorkloadSpec`'s parameters.  All builders
  are seeded, so materialization is deterministic and can happen
  inside worker processes.
* **scheme factories** — :func:`scheme_under_test` holds the paper's
  per-FlipTH configuration for every scheme (moved here from
  ``experiments/runner.py``); explicit ``scheme_params`` bypass it.
* **config overrides** — :func:`build_config` maps dotted override
  keys (``scheduler``, ``timings.trefw``, ``organization.channels``)
  onto a :class:`~repro.params.SystemConfig`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.job import Params, SimJob, WorkloadSpec
from repro.params import (
    DEFAULT_ADAPTIVE_THRESHOLD,
    DEFAULT_CONFIG,
    SystemConfig,
)
from repro.workloads.trace import CoreTrace

#: Default experiment sizing (CI-friendly; scale them up for precision).
DEFAULT_CORES = 4
DEFAULT_REQUESTS = 1200
DEFAULT_BANKS = 16

#: BlockHammer window compression (documented substitution, DESIGN.md).
#:
#: BlockHammer's blacklist dynamics compare per-row ACT counts
#: accumulated over tCBF (= tREFW, 32 ms) against N_BL.  The default
#: traces cover roughly 1/100 of a tREFW, so at paper-scale N_BL no row
#: could ever be blacklisted and the scheme would look free.  The
#: experiments therefore scale N_BL, FlipTH and tCBF down by this
#: factor, preserving the count-to-threshold ratios that drive both
#: correct throttling and the misidentification the paper reports.
BH_WINDOW_COMPRESSION = 16


def _sized(scale: float, base: int) -> int:
    return max(64, int(base * scale))


# ----------------------------------------------------------------------
# workload catalog
# ----------------------------------------------------------------------

_WORKLOAD_BUILDERS: Dict[str, Callable[..., List[CoreTrace]]] = {}

#: Kind prefix routing a spec to an ingested TraceSet instead of a
#: registered builder: ``trace:<path>`` loads the TraceSet directory
#: (or single trace file) at ``<path>`` — see docs/WORKLOADS.md.
TRACE_KIND_PREFIX = "trace:"


def register_workload(kind: str):
    """Decorator registering a workload builder under ``kind``."""

    def decorator(builder: Callable[..., List[CoreTrace]]):
        _WORKLOAD_BUILDERS[kind] = builder
        return builder

    return decorator


def workload_kinds() -> List[str]:
    """The registered builder kinds (each buildable as-is).

    The ``trace:<path>`` pseudo-kind is deliberately absent: it names
    ingested content, not a builder, so enumerating callers can build
    every returned kind without special-casing.  Specs route to it via
    :data:`TRACE_KIND_PREFIX` / :func:`traceset_spec`.
    """
    return sorted(_WORKLOAD_BUILDERS)


def build_workload(spec: WorkloadSpec) -> List[CoreTrace]:
    """Materialize the traces a spec references (deterministic)."""
    if spec.kind.startswith(TRACE_KIND_PREFIX):
        from repro.traces.ingest import build_trace_workload

        path = spec.kind[len(TRACE_KIND_PREFIX):]
        return build_trace_workload(path, **spec.as_dict())
    try:
        builder = _WORKLOAD_BUILDERS[spec.kind]
    except KeyError:
        raise KeyError(
            f"unknown workload kind {spec.kind!r}; "
            f"known: {', '.join(workload_kinds())} (or trace:<path>)"
        ) from None
    return builder(**spec.as_dict())


def traceset_spec(path, **params) -> WorkloadSpec:
    """A ``trace:<path>`` spec with the set's content digest folded in.

    The job hash covers only the spec, not the files it points at;
    pinning the TraceSet digest into the params means a rewritten
    TraceSet at the same path can never be satisfied by a stale cache
    entry.  Single trace files hash their raw bytes instead.
    """
    import hashlib
    import json
    from pathlib import Path

    from repro.traces.ingest import MANIFEST_NAME

    path = Path(path)
    if path.is_dir():
        # The manifest's committed content digest, not a full load: the
        # worker's TraceSet.load(verify=True) still checks every file's
        # sha256, so drivers stay cheap without losing integrity.
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        digest = manifest["digest"]
    else:
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:16]
    return WorkloadSpec.make(
        TRACE_KIND_PREFIX + str(path), digest=digest, **params
    )


#: Benign-mix seeds the attack panels of Figures 10 and 11 average
#: over (short closed-loop traces are interleaving-phase sensitive).
DEFAULT_ATTACK_SEEDS = (31, 41, 51)

#: (name, seed) of the paper's benign suite: 2 multiprogrammed + 3
#: multithreaded workloads.
NORMAL_WORKLOAD_SEEDS = (
    ("mix-high", 11),
    ("mix-blend", 12),
    ("fft", 21),
    ("radix", 22),
    ("pagerank", 23),
)


@register_workload("mix-high")
def _build_mix_high(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 11,
) -> List[CoreTrace]:
    from repro.workloads.spec_like import mix_high

    return mix_high(num_cores, _sized(scale, DEFAULT_REQUESTS), num_banks,
                    seed=seed)


@register_workload("mix-blend")
def _build_mix_blend(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 12,
) -> List[CoreTrace]:
    from repro.workloads.spec_like import mix_blend

    return mix_blend(num_cores, _sized(scale, DEFAULT_REQUESTS), num_banks,
                     seed=seed)


@register_workload("fft")
def _build_fft(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 21,
) -> List[CoreTrace]:
    from repro.workloads.multithreaded import fft_like

    return fft_like(num_cores, _sized(scale, DEFAULT_REQUESTS), num_banks,
                    seed=seed)


@register_workload("radix")
def _build_radix(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 22,
) -> List[CoreTrace]:
    from repro.workloads.multithreaded import radix_like

    return radix_like(num_cores, _sized(scale, DEFAULT_REQUESTS), num_banks,
                      seed=seed)


@register_workload("pagerank")
def _build_pagerank(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 23,
) -> List[CoreTrace]:
    from repro.workloads.multithreaded import pagerank_like

    return pagerank_like(num_cores, _sized(scale, DEFAULT_REQUESTS),
                         num_banks, seed=seed)


@register_workload("attack")
def _build_attack(
    pattern: str,
    scale: float = 1.0,
    num_cores: int = 8,
    num_banks: int = DEFAULT_BANKS,
    flip_th: int = 6_250,
    seed: int = 31,
) -> List[CoreTrace]:
    """One attacker core plus ``num_cores - 1`` benign cores.

    Eight cores by default: the attacker's weight in the aggregate IPC
    (1/8) approximates the paper's 1/16, and the extra benign cores
    dilute single-bank interleaving noise.  Experiments average the
    attack panels over several ``seed`` values — short closed-loop
    traces make individual runs sensitive to interleaving phase.
    """
    from repro.workloads.attacks import (
        blockhammer_adversarial_trace,
        multi_sided_trace,
    )
    from repro.workloads.spec_like import mix_high

    n = _sized(scale, DEFAULT_REQUESTS)
    benign = mix_high(num_cores - 1, n, num_banks, seed=seed)
    if pattern == "multi-sided":
        attacker = multi_sided_trace(
            num_victims=32, bank_index=0, total_requests=8 * n
        )
    elif pattern == "bh-adversarial":
        from collections import Counter

        cbf_size, n_bl_sim, _flip_sim = scaled_blockhammer_params(
            flip_th, scale
        )
        # The attacker profiles the benign threads' hottest rows on the
        # target bank and hammers their CBF-covering aliases.
        hot = Counter(
            e.row
            for trace in benign
            for e in trace.entries
            if e.bank_index % num_banks == 0
        )
        benign_rows = [row for row, _ in hot.most_common(4)] or [1000]
        attacker = blockhammer_adversarial_trace(
            benign_rows=benign_rows,
            cbf_size=cbf_size,
            blacklist_threshold=n_bl_sim,
            bank_index=0,
            total_requests=8 * n,
        )
    else:
        raise ValueError(f"unknown attack pattern {pattern!r}")
    return benign + [attacker]


@register_workload("capacity-pressure")
def _build_capacity_pressure(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 61,
) -> List[CoreTrace]:
    from repro.traces.families import capacity_pressure

    return capacity_pressure(
        num_cores=num_cores, num_requests=_sized(scale, DEFAULT_REQUESTS),
        num_banks=num_banks, seed=seed,
    )


@register_workload("row-conflict-heavy")
def _build_row_conflict_heavy(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 62,
) -> List[CoreTrace]:
    from repro.traces.families import row_conflict_heavy

    return row_conflict_heavy(
        num_cores=num_cores, num_requests=_sized(scale, DEFAULT_REQUESTS),
        num_banks=num_banks, seed=seed,
    )


@register_workload("multi-channel-imbalanced")
def _build_multi_channel_imbalanced(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
    seed: int = 63,
) -> List[CoreTrace]:
    from repro.traces.families import multi_channel_imbalanced

    return multi_channel_imbalanced(
        num_cores=num_cores, num_requests=_sized(scale, DEFAULT_REQUESTS),
        num_banks=num_banks, seed=seed,
    )


def smoke_workload_specs(scale: float = 0.1) -> Dict[str, WorkloadSpec]:
    """One tiny spec per registered kind (the CI smoke surface).

    Covers every builder in the catalog — kinds with required
    parameters get a representative choice — so "every registered
    workload kind materializes" stays a one-call check as the catalog
    grows.  The ``trace:<path>`` pseudo-kind is excluded; it has no
    builder, only ingested content.
    """
    specs = {}
    for kind in sorted(_WORKLOAD_BUILDERS):
        extra = {"pattern": "multi-sided"} if kind == "attack" else {}
        specs[kind] = WorkloadSpec.make(
            kind, scale=scale, num_cores=2, **extra
        )
    return specs


def normal_workload_specs(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
) -> Dict[str, WorkloadSpec]:
    """Specs for the paper's benign suite, keyed by workload name."""
    return {
        name: WorkloadSpec.make(
            name, scale=scale, num_cores=num_cores, num_banks=num_banks,
            seed=seed,
        )
        for name, seed in NORMAL_WORKLOAD_SEEDS
    }


def attack_workload_spec(
    kind: str,
    scale: float = 1.0,
    num_cores: int = 8,
    num_banks: int = DEFAULT_BANKS,
    flip_th: int = 6_250,
    seed: int = 31,
) -> WorkloadSpec:
    """Spec for one attack workload (see the ``attack`` builder)."""
    return WorkloadSpec.make(
        "attack", pattern=kind, scale=scale, num_cores=num_cores,
        num_banks=num_banks, flip_th=flip_th, seed=seed,
    )


def normal_workloads(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
) -> Dict[str, List[CoreTrace]]:
    """The benign suite, materialized (legacy trace-level interface)."""
    return {
        name: build_workload(spec)
        for name, spec in normal_workload_specs(
            scale, num_cores, num_banks
        ).items()
    }


def attack_workload(
    kind: str,
    scale: float = 1.0,
    num_cores: int = 8,
    num_banks: int = DEFAULT_BANKS,
    flip_th: int = 6_250,
    seed: int = 31,
) -> List[CoreTrace]:
    """One attack workload, materialized (legacy trace-level interface).

    ``kind`` is the attack pattern ("multi-sided" / "bh-adversarial"),
    keeping the historic runner.py parameter name.
    """
    return build_workload(
        attack_workload_spec(kind, scale, num_cores, num_banks, flip_th, seed)
    )


# ----------------------------------------------------------------------
# scheme catalog
# ----------------------------------------------------------------------


def scheme_under_test(
    name: str, flip_th: int, scale: float = 1.0
) -> Tuple[Optional[Callable[[], object]], int]:
    """(scheme factory, rfm_th) for a named scheme at a FlipTH.

    Follows the paper's per-FlipTH configurations (Section VI-A).
    ``scale`` is the trace-length multiplier; BlockHammer's
    window-compressed thresholds track it so the blacklist dynamics
    stay calibrated to the trace coverage.
    """
    from repro.analysis.parfm_failure import parfm_rfm_th_for
    from repro.core.config import paper_default_config
    from repro.core.mithril import MithrilScheme
    from repro.mitigations.cbt import CbtScheme
    from repro.mitigations.graphene import GrapheneScheme
    from repro.mitigations.para import ParaScheme
    from repro.mitigations.parfm import ParfmScheme
    from repro.mitigations.twice import TwiceScheme

    if name == "none":
        return None, 0
    if name in ("mithril", "mithril+"):
        config = paper_default_config(
            flip_th, adaptive_th=DEFAULT_ADAPTIVE_THRESHOLD
        )
        plus = name == "mithril+"
        return (
            lambda: MithrilScheme(
                n_entries=config.n_entries,
                rfm_th=config.rfm_th,
                adaptive_th=config.adaptive_th,
                plus=plus,
            ),
            config.rfm_th,
        )
    if name == "parfm":
        rfm_th = parfm_rfm_th_for(flip_th) or 2
        return (lambda: ParfmScheme()), rfm_th
    if name == "blockhammer":
        factory = _blockhammer_factory(flip_th, scale)
        return factory, 0
    if name == "para":
        return (lambda: ParaScheme(flip_th=flip_th)), 0
    if name == "graphene":
        return (lambda: GrapheneScheme(flip_th=flip_th)), 0
    if name == "twice":
        return (lambda: TwiceScheme(flip_th=flip_th)), 0
    if name == "cbt":
        return (lambda: CbtScheme(flip_th=flip_th)), 0
    raise ValueError(f"unknown scheme {name!r}")


def scaled_blockhammer_params(
    flip_th: int, scale: float = 1.0
) -> Tuple[int, int, int]:
    """(cbf_size, scaled N_BL, scaled FlipTH) for simulation runs."""
    from repro.mitigations.blockhammer import blockhammer_config

    cbf_size, n_bl = blockhammer_config(flip_th)
    compression = BH_WINDOW_COMPRESSION / max(scale, 1e-6)
    n_bl_sim = max(4, int(n_bl / compression))
    flip_sim = max(n_bl_sim + 4, int(flip_th / compression))
    return cbf_size, n_bl_sim, flip_sim


def _blockhammer_factory(flip_th: int, scale: float = 1.0):
    from repro.mitigations.blockhammer import BlockHammerScheme
    from repro.params import DramTimings

    cbf_size, n_bl_sim, flip_sim = scaled_blockhammer_params(flip_th, scale)
    compression = BH_WINDOW_COMPRESSION / max(scale, 1e-6)
    timings = dataclasses.replace(
        DramTimings(), trefw=DramTimings().trefw / compression
    )
    return lambda: BlockHammerScheme(
        flip_th=flip_sim,
        cbf_size=cbf_size,
        n_bl=n_bl_sim,
        timings=timings,
    )


def _parameterized_scheme_factory(name: str, params: Dict[str, object]):
    """Factory for a scheme with explicit constructor arguments."""
    if name in ("mithril", "mithril+"):
        from repro.core.mithril import MithrilScheme

        kwargs = dict(params)
        kwargs.setdefault("plus", name == "mithril+")
        return lambda: MithrilScheme(**kwargs)
    from repro.protection import build_scheme

    return lambda: build_scheme(name, **params)


def scheme_factory_for(job: SimJob):
    """(factory, effective rfm_th) for a job's scheme description."""
    if job.scheme_params:
        params = dict(job.scheme_params)
        factory = _parameterized_scheme_factory(job.scheme, params)
        if job.rfm_th is not None:
            return factory, job.rfm_th
        # rfm_th=None derives from the scheme's own configuration; an
        # explicitly parameterized scheme carries it in its params
        # (0 = no RFM issue, correct for ARR-based schemes).
        return factory, int(params.get("rfm_th", 0))
    factory, derived = scheme_under_test(job.scheme, job.flip_th, job.scale)
    return factory, (job.rfm_th if job.rfm_th is not None else derived)


# ----------------------------------------------------------------------
# config overrides
# ----------------------------------------------------------------------


def build_config(overrides: Params) -> SystemConfig:
    """Apply dotted override keys onto the default system config.

    Bare keys (``scheduler``, ``num_cores``, ...) replace
    :class:`SystemConfig` fields; ``timings.<field>`` and
    ``organization.<field>`` reach into the nested dataclasses.
    """
    config = DEFAULT_CONFIG
    top: Dict[str, object] = {}
    timings: Dict[str, object] = {}
    organization: Dict[str, object] = {}
    for key, value in overrides:
        if key.startswith("timings."):
            timings[key.split(".", 1)[1]] = value
        elif key.startswith("organization."):
            organization[key.split(".", 1)[1]] = value
        else:
            top[key] = value
    if top:
        config = dataclasses.replace(config, **top)
    if timings:
        config = config.with_timings(**timings)
    if organization:
        config = config.with_organization(**organization)
    return config
