"""Unified experiment engine: declarative sweep jobs + executor.

The engine separates *describing* a simulation point from *running*
it.  A :class:`~repro.engine.job.SimJob` names the workload (by
reference into the workload catalog), the protection scheme, and every
simulator knob as plain hashable data.  :func:`~repro.engine.executor.
run_jobs` deduplicates identical jobs, serves repeats from an on-disk
result cache, and fans the remainder out over worker processes.

Typical driver usage::

    from repro.engine import SimJob, normal_workload_specs, run_jobs

    specs = normal_workload_specs(scale=1.0)
    jobs = [SimJob(workload=spec) for spec in specs.values()]
    jobs += [
        SimJob(workload=spec, scheme="mithril", flip_th=6_250)
        for spec in specs.values()
    ]
    results = run_jobs(jobs, n_jobs=4)

See ``docs/ENGINE.md`` for the full job model and the caching and
parallelism knobs.
"""

from repro.engine.cache import (
    ResultCache,
    code_version,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.engine.catalog import (
    TRACE_KIND_PREFIX,
    attack_workload_spec,
    build_config,
    build_workload,
    normal_workload_specs,
    register_workload,
    scheme_factory_for,
    smoke_workload_specs,
    traceset_spec,
    workload_kinds,
)
from repro.engine.durable import (
    CorruptEntryError,
    atomic_write_json,
    quarantine_file,
    read_json_verified,
)
from repro.engine.executor import (
    DEFAULT_MAX_RETRIES,
    JobExecutionError,
    RunStats,
    execute_job,
    run_jobs,
)
from repro.engine.job import SimJob, WorkloadSpec, freeze_params
from repro.engine.plan import JobPlan, PlanResults
from repro.engine.store import CacheIndex, GenerationStats
from repro.engine.supervisor import JobFailure, RetryPolicy, SupervisedPool

__all__ = [
    "SimJob",
    "WorkloadSpec",
    "freeze_params",
    "JobPlan",
    "PlanResults",
    "RunStats",
    "run_jobs",
    "execute_job",
    "JobExecutionError",
    "JobFailure",
    "RetryPolicy",
    "SupervisedPool",
    "DEFAULT_MAX_RETRIES",
    "CorruptEntryError",
    "atomic_write_json",
    "quarantine_file",
    "read_json_verified",
    "ResultCache",
    "CacheIndex",
    "GenerationStats",
    "default_cache_dir",
    "code_version",
    "result_to_dict",
    "result_from_dict",
    "register_workload",
    "workload_kinds",
    "build_workload",
    "build_config",
    "normal_workload_specs",
    "attack_workload_spec",
    "scheme_factory_for",
    "smoke_workload_specs",
    "traceset_spec",
    "TRACE_KIND_PREFIX",
]
