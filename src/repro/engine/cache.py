"""On-disk result cache keyed by job hash + code-version salt.

Completed simulation points are stored as JSON under::

    <cache dir>/<code version>/<hh>/<job hash>.json

where ``hh`` is the two-hex-character shard prefix of the job hash
(:mod:`repro.engine.store`); entries written by pre-sharding versions
of this module sit flat in the generation directory and are still
found, counted, and garbage-collected — :meth:`ResultCache.migrate`
moves them into shards without changing their hashes, so nothing is
invalidated.  Each generation also carries an ``index.jsonl``
(:class:`~repro.engine.store.CacheIndex`) answering count/size/query
by scheme, workload, FlipTH, or campaign experiment without opening
entry files.

The *code version* is a hash over every ``*.py`` file of the ``repro``
package plus an explicit schema salt, so any change to the simulator,
the schemes, or the workload generators silently invalidates old
entries — a stale cache can never masquerade as a fresh result.  The
salt (:data:`CACHE_SCHEMA_SALT`) exists for deliberate bumps: the
hot-path overhaul bumped it to retire every warm cache written by the
pre-optimization simulator, even for users running an identical source
tree from a different install path.  The cache directory defaults to
``~/.cache/repro/sim`` and is overridden by the ``REPRO_CACHE_DIR``
environment variable (tests point it at a tmpdir).

Entries store both the canonical job description and the result, so a
cache directory doubles as a browsable record of completed sweeps.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro.engine.durable import (
    QUARANTINE_DIR,
    CorruptEntryError,
    atomic_write_json,
    quarantine_file,
    quarantine_log,
    read_json_verified,
    seal,
)
from repro.engine.job import SimJob
from repro.engine.store import (
    INDEX_NAME,
    CacheIndex,
    GenerationStats,
    count_entries,
    is_shard_dir,
    iter_entry_paths,
    record_for_put,
    shard_name,
)
from repro.sim.metrics import SimulationResult
from repro.types import EnergyCounts

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Deliberate cache-generation bump, folded into :func:`code_version`.
#: v2: simulator hot-path overhaul (zero-alloc event loop, incremental
#: schedulers, array-backed sketches) — results are byte-identical,
#: but pre-overhaul entries must not satisfy post-overhaul jobs.
#: v3: vectorized turbo backend + numpy-optional workload generation.
#: Results are byte-identical across backends (the golden suite pins
#: both), but the salt retires caches written before the equivalence
#: machinery existed.
CACHE_SCHEMA_SALT = "v3-turbo"

_code_version: Dict[str, str] = {}


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sim"


def code_version() -> str:
    """Hash of the installed ``repro`` sources (the cache salt).

    The pure-RNG fallback marker is folded in: a numpy-less
    environment writes to its own cache generation, so the one
    workload path that is *not* vendored bit-exact (non-default
    pagerank Zipf parameterizations, see
    :func:`repro.workloads.nprng.zipf_weights`) can never poison a
    numpy environment's cache, or vice versa.  The scalar/turbo
    simulation *backend* is deliberately **not** folded in — backends
    are byte-identical (golden-pinned) implementation details and
    share cache entries.
    """
    from repro.workloads.nprng import using_pure_rng

    marker = "purerng" if using_pure_rng() else ""
    cached = _code_version.get(marker)
    if cached is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        digest.update(CACHE_SCHEMA_SALT.encode())
        digest.update(b"\0")
        digest.update(marker.encode())
        digest.update(b"\0")
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        cached = _code_version[marker] = digest.hexdigest()[:16]
    return cached


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return dataclasses.asdict(result)


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    payload = dict(data)
    payload["energy"] = EnergyCounts(**payload["energy"])
    return SimulationResult(**payload)


class ResultCache:
    """Get/put completed :class:`SimulationResult`s by job.

    Each instance keeps running ``hits`` / ``misses`` / ``quarantined``
    counts across its :meth:`get` calls — the executor surfaces them
    on ``run_jobs.last_stats`` and the telemetry layer mirrors them as
    ``cache.hit`` / ``cache.miss`` / ``cache.quarantine`` counters.
    """

    def __init__(self, directory=None):
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def version_dir(self, version: Optional[str] = None) -> Path:
        return self.directory / (version or code_version())

    def path_for(self, job: SimJob) -> Path:
        """The sharded entry path (where new writes go)."""
        job_hash = job.job_hash()
        return (
            self.version_dir() / shard_name(job_hash) / f"{job_hash}.json"
        )

    def flat_path_for(self, job: SimJob) -> Path:
        """The pre-sharding flat path (legacy caches, read-only)."""
        return self.version_dir() / f"{job.job_hash()}.json"

    def get(self, job: SimJob) -> Optional[SimulationResult]:
        """The cached result for ``job``, or None.

        Looks in the sharded location first, then falls back to the
        flat legacy layout, so caches written before sharding keep
        serving hits without migration.  A truncated, unparsable, or
        seal-failing entry (:mod:`repro.engine.durable`) is moved into
        the generation's ``quarantine/`` directory and reported as a
        miss — the point re-simulates instead of raising (or serving
        garbage) mid-campaign.
        """
        from repro import telemetry

        for path in (self.path_for(job), self.flat_path_for(job)):
            try:
                record = self._read_entry(path)
            except FileNotFoundError:
                continue
            if record is None:
                continue
            try:
                result = result_from_dict(record["result"])
            except (KeyError, TypeError, ValueError) as error:
                quarantine_file(
                    path, f"undecodable result payload: {error}",
                    root=self.version_dir(),
                )
                self.quarantined += 1
                telemetry.counter("cache.quarantine")
                continue
            self.hits += 1
            telemetry.counter("cache.hit")
            return result
        self.misses += 1
        telemetry.counter("cache.miss")
        return None

    def _read_entry(self, path: Path) -> Optional[Dict[str, Any]]:
        """Verified entry record at ``path``; corrupt ⇒ quarantine + None.

        ``FileNotFoundError`` propagates (a missing entry is a miss at
        a different layout, not corruption).
        """
        try:
            return read_json_verified(path)
        except FileNotFoundError:
            raise
        except CorruptEntryError as error:
            from repro import telemetry

            quarantine_file(path, str(error), root=self.version_dir())
            self.quarantined += 1
            telemetry.counter("cache.quarantine")
            telemetry.event(
                "cache.quarantine", path=str(path), reason=str(error)
            )
            return None

    def put(self, job: SimJob, result: SimulationResult) -> None:
        """Store a result; an unwritable cache degrades to a no-op.

        The entry is sealed (payload sha256) and written via atomic
        temp-file rename, so a process killed mid-``put`` leaves
        either the previous entry or no entry — never a torn one.
        """
        try:
            path = self.path_for(job)
            record = {
                "job": job.canonical(), "result": result_to_dict(result)
            }
            atomic_write_json(
                path, seal(record),
                fault_site="cache.entry.write", fault_key=job.job_hash(),
            )
        except OSError:
            return
        self.index_for_version().append(record_for_put(job, path))

    def verify(self, job: SimJob) -> str:
        """Integrity state of one job's entry without deserializing it.

        Returns ``"ok"``, ``"missing"``, or ``"corrupt"`` (the corrupt
        file is quarantined as a side effect, same as :meth:`get`).
        Used by ``repro campaign verify`` and the campaign audit.
        """
        state = "missing"
        for path in (self.path_for(job), self.flat_path_for(job)):
            try:
                record = self._read_entry(path)
            except FileNotFoundError:
                continue
            if record is None:
                state = "corrupt"
                continue
            if "result" in record:
                return "ok"
            state = "corrupt"
        return state

    def duplicate_hashes(self, version: Optional[str] = None) -> list:
        """Job hashes present in both the flat and sharded layouts.

        A hash must resolve to exactly one entry; duplicates can only
        come from a legacy migration interrupted halfway and are worth
        surfacing (``campaign verify`` gates on zero).
        """
        version_dir = self.version_dir(version)
        seen: Dict[str, int] = {}
        for path in iter_entry_paths(version_dir):
            seen[path.stem] = seen.get(path.stem, 0) + 1
        return sorted(h for h, count in seen.items() if count > 1)

    def quarantine_records(self, version: Optional[str] = None) -> list:
        """Quarantine-log records of one generation (default live)."""
        return quarantine_log(self.version_dir(version))

    def entry_count(self, version: Optional[str] = None) -> int:
        """Number of cached results for one generation (default live)."""
        return count_entries(self.version_dir(version))

    def versions(self) -> Dict[str, int]:
        """Entry counts per code-version generation present on disk.

        Every source change mints a new generation
        (:func:`code_version`), so long-lived cache directories
        accumulate dead generations; this is the inventory behind
        ``repro cache --gc``.
        """
        if not self.directory.is_dir():
            return {}
        return {
            child.name: count_entries(child)
            for child in sorted(self.directory.iterdir())
            if child.is_dir()
        }

    # -- index, stats, migration --------------------------------------

    def index_for_version(self, version: Optional[str] = None) -> CacheIndex:
        """The raw (possibly stale) index of one generation."""
        return CacheIndex(self.version_dir(version))

    def index(self, version: Optional[str] = None) -> CacheIndex:
        """A fresh index for one generation, rebuilt if it disagrees
        with the entry files on disk (lost index, manual deletions,
        flat legacy layouts that never had one)."""
        index = self.index_for_version(version)
        if not index.is_fresh():
            index.rebuild()
        return index

    def stats(self) -> Dict[str, GenerationStats]:
        """Per-generation entry count / bytes / oldest & newest mtime.

        Served from each generation's index (rebuilt when stale), so
        repeated stats calls on a large cache never rescan entries.
        """
        if not self.directory.is_dir():
            return {}
        return {
            child.name: self.index(child.name).stats()
            for child in sorted(self.directory.iterdir())
            if child.is_dir()
        }

    def annotate(
        self,
        job_hashes: Iterable[str],
        experiment: str,
        version: Optional[str] = None,
    ) -> None:
        """Tag entries with a campaign-experiment attribution.

        Appends annotation records that merge into the index (the
        ``experiments`` field unions), enabling
        ``query(experiment=...)``.  Annotations are advisory — an index
        rebuild drops them until the next campaign run re-appends.
        """
        self.index_for_version(version).append_many(
            {"hash": job_hash, "experiments": [experiment]}
            for job_hash in job_hashes
        )

    def migrate(self, version: Optional[str] = None) -> int:
        """Move one generation's flat legacy entries into shards.

        Hashes (and therefore keys) are untouched — nothing is
        invalidated; the index is rebuilt afterwards.  Returns the
        number of entries moved.
        """
        version_dir = self.version_dir(version)
        if not version_dir.is_dir():
            return 0
        moved = 0
        for path in sorted(version_dir.glob("*.json")):
            if not path.is_file():
                continue
            target = version_dir / shard_name(path.stem) / path.name
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
                moved += 1
            except OSError:
                pass
        if moved:
            self.index_for_version(version).rebuild()
        return moved

    def gc(self, version: str) -> int:
        """Delete one dead generation's entries; returns the count.

        ``version`` must be a generation directory name from
        :meth:`versions` — the current :func:`code_version` is refused
        (it is live, not dead; use :meth:`clear` to drop everything).
        """
        if version == code_version():
            raise ValueError(
                f"refusing to gc the live generation {version}; "
                "use clear() to drop the whole cache"
            )
        version_dir = self.directory / version
        # Containment must hold on the *resolved* path: "..", "a/b" or
        # absolute names would otherwise escape the cache directory.
        try:
            resolved = version_dir.resolve()
            contained = resolved.parent == self.directory.resolve()
        except OSError:
            return 0
        if not contained or resolved.name != version:
            return 0
        if not version_dir.is_dir():
            return 0
        removed = 0
        for path in list(iter_entry_paths(version_dir)):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._remove_generation_scaffolding(version_dir)
        return removed

    def gc_stale(self) -> int:
        """Delete every generation except the live one."""
        live = code_version()
        return sum(
            self.gc(version) for version in self.versions()
            if version != live
        )

    def clear(self) -> int:
        """Delete every entry (all code versions); returns the count."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in self.directory.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for child in self.directory.iterdir():
            if child.is_dir():
                self._remove_generation_scaffolding(child)
        return removed

    def _remove_generation_scaffolding(self, version_dir: Path) -> None:
        """Drop a generation's index, quarantine, and emptied dirs."""
        try:
            (version_dir / INDEX_NAME).unlink()
        except OSError:
            pass
        quarantine = version_dir / QUARANTINE_DIR
        if quarantine.is_dir():
            for stale in list(quarantine.iterdir()):
                try:
                    stale.unlink()
                except OSError:
                    pass
            try:
                quarantine.rmdir()
            except OSError:
                pass
        for child in list(version_dir.iterdir()) if (
            version_dir.is_dir()
        ) else []:
            if is_shard_dir(child):
                try:
                    child.rmdir()
                except OSError:
                    pass
        try:
            version_dir.rmdir()
        except OSError:
            pass
