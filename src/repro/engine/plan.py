"""Keyed job planning: the driver-side bookkeeping around run_jobs.

Every sweep driver follows the same shape — register jobs under
meaningful keys while walking the sweep, execute the batch once, then
assemble rows by looking results up by key.  :class:`JobPlan` is that
pattern, once, with duplicate-key detection.

    plan = JobPlan()
    for name, spec in specs.items():
        plan.add(("base", name), SimJob(workload=spec))
    ...
    results = plan.run(n_jobs=4)
    baseline = results[("base", "fft")]
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.engine.executor import run_jobs
from repro.engine.job import SimJob
from repro.sim.metrics import SimulationResult


class PlanResults:
    """Completed plan: results addressable by the registration keys."""

    def __init__(self, index: Dict[Hashable, int],
                 results: List[SimulationResult]):
        self._index = index
        self._results = results

    def __getitem__(self, key: Hashable) -> SimulationResult:
        return self._results[self._index[key]]

    def __len__(self) -> int:
        return len(self._index)


class JobPlan:
    """An ordered batch of jobs, each registered under a unique key."""

    def __init__(self) -> None:
        self._jobs: List[SimJob] = []
        self._index: Dict[Hashable, int] = {}

    def add(self, key: Hashable, job: SimJob) -> None:
        """Register ``job`` under ``key`` (duplicate keys are bugs)."""
        if key in self._index:
            raise ValueError(f"duplicate job key {key!r}")
        self._index[key] = len(self._jobs)
        self._jobs.append(job)

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def jobs(self) -> List[SimJob]:
        """The registered jobs, in registration order (a copy).

        The export surface behind every driver's ``plan_jobs()`` — the
        campaign planner reuses a driver's exact job list without
        running anything.
        """
        return list(self._jobs)

    def run(
        self,
        n_jobs: int = 1,
        use_cache: bool = True,
        cache_dir=None,
    ) -> PlanResults:
        """Execute the batch through :func:`run_jobs`."""
        results = run_jobs(
            self._jobs, n_jobs=n_jobs, use_cache=use_cache,
            cache_dir=cache_dir,
        )
        return PlanResults(dict(self._index), results)
