"""The sharded, indexed side of the on-disk result store.

The result cache (:mod:`repro.engine.cache`) stores one JSON file per
completed simulation point.  A paper-scale campaign produces 10^4-10^5
points per code-version generation, which breaks the original flat
layout twice over: directory listings stop scaling, and answering
"how many mithril points do we have?" means opening every file.  This
module supplies the two missing structures:

* **sharding** — entries live under a two-level fan-out,
  ``<version>/<hh>/<hash>.json`` with ``hh`` the first
  :data:`SHARD_WIDTH` hex characters of the job hash, so no directory
  ever holds more than ~1/256th of a generation;
* **a per-generation index** — ``<version>/index.jsonl`` holds one
  JSON record per entry (job hash, scheme, workload kind, FlipTH,
  scale, size, mtime, plus optional campaign-experiment annotations),
  appended on every cache write and rebuilt from the entry files
  whenever it disagrees with the directory contents.  Count, size and
  query-by-scheme/workload/experiment are index reads, never file
  scans.

Both structures are backwards compatible: flat entries written by
earlier generations of the code are still found by
:meth:`~repro.engine.cache.ResultCache.get`, counted by the index
rebuild, and movable into shards via
:meth:`~repro.engine.cache.ResultCache.migrate` — without changing
their job hashes, so nothing is invalidated.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: Hex characters of the job hash used as the shard directory name.
SHARD_WIDTH = 2

#: Index file name inside a generation directory (``.jsonl``, so the
#: ``*.json`` entry globs never mistake it for a result).
INDEX_NAME = "index.jsonl"

_HEX = set("0123456789abcdef")


def shard_name(job_hash: str) -> str:
    """The shard directory name for a job hash."""
    return job_hash[:SHARD_WIDTH]


def is_shard_dir(path: Path) -> bool:
    name = path.name
    return (
        path.is_dir()
        and len(name) == SHARD_WIDTH
        and set(name) <= _HEX
    )


def iter_entry_paths(version_dir: Path) -> Iterator[Path]:
    """Every entry file of one generation, flat and sharded alike."""
    if not version_dir.is_dir():
        return
    for child in sorted(version_dir.iterdir()):
        if child.is_file() and child.suffix == ".json":
            yield child
        elif is_shard_dir(child):
            yield from sorted(child.glob("*.json"))


def count_entries(version_dir: Path) -> int:
    return sum(1 for _ in iter_entry_paths(version_dir))


@dataclass
class GenerationStats:
    """Aggregate statistics of one cache generation."""

    entries: int = 0
    total_bytes: int = 0
    oldest_mtime: Optional[float] = None
    newest_mtime: Optional[float] = None

    def add(self, size: int, mtime: Optional[float]) -> None:
        self.entries += 1
        self.total_bytes += size
        if mtime is not None:
            if self.oldest_mtime is None or mtime < self.oldest_mtime:
                self.oldest_mtime = mtime
            if self.newest_mtime is None or mtime > self.newest_mtime:
                self.newest_mtime = mtime

    def as_dict(self) -> Dict[str, Any]:
        return {
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "oldest_mtime": self.oldest_mtime,
            "newest_mtime": self.newest_mtime,
        }


def record_for_entry(path: Path) -> Dict[str, Any]:
    """Index record for one entry file (tolerates foreign content).

    Unreadable or non-engine JSON (hand-made files, partial writes)
    still yields a countable record — the hash and file stats are
    always known from the path — with null job fields.
    """
    record: Dict[str, Any] = {"hash": path.stem}
    try:
        stat = path.stat()
        record["bytes"] = stat.st_size
        record["mtime"] = stat.st_mtime
    except OSError:
        record["bytes"] = 0
        record["mtime"] = None
    try:
        with path.open() as handle:
            job = json.load(handle).get("job") or {}
    except (OSError, ValueError, AttributeError):
        job = {}
    workload = job.get("workload") or {}
    record["scheme"] = job.get("scheme")
    record["workload"] = (
        workload.get("kind") if isinstance(workload, dict) else None
    )
    record["flip_th"] = job.get("flip_th")
    record["scale"] = job.get("scale")
    return record


def record_for_put(job, path: Path) -> Dict[str, Any]:
    """Index record for a just-written entry, straight from the job."""
    try:
        stat = path.stat()
        size, mtime = stat.st_size, stat.st_mtime
    except OSError:
        size, mtime = 0, None
    return {
        "hash": job.job_hash(),
        "scheme": job.scheme,
        "workload": job.workload.kind,
        "flip_th": job.flip_th,
        "scale": job.scale,
        "bytes": size,
        "mtime": mtime,
    }


class CacheIndex:
    """The append-only jsonl index of one cache generation.

    Records merge by job hash, last write wins field-by-field —
    ``experiments`` annotations union instead, so a point evaluated by
    several campaign experiments keeps every attribution.  The index is
    advisory: :meth:`is_fresh` compares its record count against the
    actual entry files and :meth:`rebuild` regenerates it from scratch,
    so a lost or stale index costs one directory scan, never a wrong
    answer.
    """

    def __init__(self, version_dir: Path):
        self.version_dir = Path(version_dir)
        self.path = self.version_dir / INDEX_NAME
        # Parsed-records memo: a freshness check followed by a
        # stats()/query() call must not parse the index twice.
        # Invalidated by append/rebuild on this instance; instances
        # are short-lived (one per ResultCache.index() call), so
        # cross-process staleness is bounded by instance lifetime.
        self._merged: Optional[Dict[str, Dict[str, Any]]] = None

    # -- writing -------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Dict[str, Any]]) -> None:
        """Append records; an unwritable index degrades to a no-op.

        Appends are the one non-atomic write in the store — a torn
        append (partial last line, injectable via the ``index.append``
        fault site) is tolerated by design: :meth:`load` skips the
        broken line and :meth:`is_fresh` then disagrees with the entry
        count, triggering a rebuild.
        """
        from repro.faults import maybe_fail

        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records
        ]
        if not lines:
            return
        self._merged = None
        blob = "\n".join(lines) + "\n"
        rule = maybe_fail("index.append", self.version_dir.name)
        if rule is not None and rule.kind in ("torn", "corrupt"):
            blob = blob[: max(1, len(blob) // 2)]
        try:
            self.version_dir.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                handle.write(blob)
        except OSError:
            pass

    def rebuild(self) -> int:
        """Regenerate the index from the entry files; returns the count.

        The scan is the slow path (it opens every entry); queries and
        stats afterwards are index reads.  The write is atomic, so a
        crashed rebuild leaves the previous index intact.
        """
        records = [
            record_for_entry(path)
            for path in iter_entry_paths(self.version_dir)
        ]
        self._merged = {
            record["hash"]: record for record in records
        }
        try:
            self.version_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("w") as handle:
                for record in records:
                    handle.write(
                        json.dumps(record, sort_keys=True,
                                   separators=(",", ":")) + "\n"
                    )
            os.replace(tmp, self.path)
        except OSError:
            pass
        return len(records)

    # -- reading -------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Merged records by job hash (annotations unioned).

        Memoized per instance — treat the returned records as
        read-only.
        """
        if self._merged is not None:
            return self._merged
        merged: Dict[str, Dict[str, Any]] = {}
        try:
            with self.path.open() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    job_hash = record.get("hash")
                    if not job_hash:
                        continue
                    known = merged.setdefault(job_hash, {})
                    experiments = set(known.get("experiments") or [])
                    experiments.update(record.pop("experiments", []) or [])
                    known.update(record)
                    if experiments:
                        known["experiments"] = sorted(experiments)
        except OSError:
            pass
        self._merged = merged
        return merged

    def records(self) -> List[Dict[str, Any]]:
        return list(self.load().values())

    def is_fresh(self, entry_count: Optional[int] = None) -> bool:
        """Does the index agree with the directory's entry count?"""
        if entry_count is None:
            entry_count = count_entries(self.version_dir)
        if not self.path.exists():
            return entry_count == 0
        return len(self.load()) == entry_count

    def query(
        self,
        scheme: Optional[str] = None,
        workload: Optional[str] = None,
        experiment: Optional[str] = None,
        flip_th: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Records matching every given criterion (AND semantics)."""
        matches = []
        for record in self.records():
            if scheme is not None and record.get("scheme") != scheme:
                continue
            if workload is not None and record.get("workload") != workload:
                continue
            if flip_th is not None and record.get("flip_th") != flip_th:
                continue
            if experiment is not None and experiment not in (
                record.get("experiments") or []
            ):
                continue
            matches.append(record)
        return matches

    def stats(self) -> GenerationStats:
        stats = GenerationStats()
        for record in self.records():
            stats.add(int(record.get("bytes") or 0), record.get("mtime"))
        return stats
