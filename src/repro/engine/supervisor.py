"""Supervised pull-model worker pool: leases, retries, quarantine.

``ProcessPoolExecutor.map`` — the engine's original fan-out — has
exactly the failure modes a long campaign cannot afford: a worker
killed mid-job poisons the whole pool (``BrokenProcessPool`` aborts
every in-flight result), a hung worker stalls the map forever, and a
raising job surfaces as an opaque error with no record of *which* job
died.  This module replaces it with a supervisor that treats worker
death as an expected event:

* **pull model** — each worker owns a dedicated task queue and is
  handed one job at a time, so the supervisor always knows which job a
  worker holds (the *lease*) and since when;
* **timeouts** — a lease older than ``job_timeout`` gets its worker
  killed (``SIGKILL``) and replaced; the job counts a failed attempt;
* **retry with backoff** — failed attempts (exception, crash,
  timeout) are re-queued after an exponential backoff with
  deterministic per-job jitter, up to ``max_retries`` retries;
* **quarantine** — a job that exhausts its budget becomes a
  :class:`JobFailure` with full diagnostics (per-attempt events,
  traceback or exit code, scheme/workload identity) instead of
  aborting the batch.  Poison jobs that repeatedly kill their worker
  are the canonical case.

Workers run :func:`repro.engine.executor.execute_job` behind the
``worker.execute`` fault-injection site (:mod:`repro.faults`), which
is how the tests provoke every path above deterministically.
"""

from __future__ import annotations

import heapq
import logging
import multiprocessing
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.job import SimJob

#: Poll ceiling of the supervisor loop (also the detection latency for
#: a worker that died without posting a result).
_POLL_S = 0.25

#: Interval between supervisor heartbeat events (telemetry on only).
_HEARTBEAT_S = 1.0

log = logging.getLogger("repro.engine.supervisor")


@dataclass
class RetryPolicy:
    """How failed attempts are retried.

    ``max_retries`` bounds *re*-tries: a job runs at most
    ``max_retries + 1`` times.  The backoff for retry ``n`` (1-based)
    is ``min(cap, base * 2**(n-1))`` scaled by a deterministic jitter
    in ``[1, 1 + jitter]`` derived from the job hash — reproducible
    schedules, but simultaneous failures do not retry in lockstep.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 5.0
    jitter: float = 0.25

    def delay(self, job_hash: str, retry: int) -> float:
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** max(0, retry - 1)),
        )
        if base <= 0.0:
            return 0.0
        seed = int(job_hash[:8] or "0", 16) * 2654435761 % (1 << 32)
        frac = ((seed >> 8) & 0xFFFF) / 0xFFFF
        return base * (1.0 + self.jitter * frac)


@dataclass
class JobFailure:
    """One job's terminal failure, with enough context to act on it."""

    job_hash: str
    scheme: str
    workload: str
    attempts: int
    reason: str                     #: last failure kind
    message: str                    #: one-line last-failure summary
    traceback: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_hash": self.job_hash,
            "scheme": self.scheme,
            "workload": self.workload,
            "attempts": self.attempts,
            "reason": self.reason,
            "message": self.message,
            "traceback": self.traceback,
            "events": list(self.events),
        }

    def describe(self) -> str:
        return (
            f"{self.job_hash[:12]} {self.scheme}/{self.workload}: "
            f"{self.reason} after {self.attempts} attempt(s) — "
            f"{self.message}"
        )


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: one job per lease, structured error capture."""
    from repro import faults, telemetry
    from repro.engine.executor import execute_job

    faults.IN_WORKER = True
    # telemetry.get() re-checks the pid, so the forked child opens its
    # own events-<pid>.jsonl instead of appending to the parent's.
    tel = telemetry.get()
    if tel is not None:
        tel.set_role("worker")
    while True:
        item = task_queue.get()
        if item is None:
            return
        job_hash, job = item
        try:
            faults.maybe_fail("worker.execute", job_hash)
            span = (
                tel.span("job.execute", job=job_hash, scheme=job.scheme)
                if tel is not None else telemetry.NOOP_SPAN
            )
            with span:
                result = execute_job(job)
        except BaseException as error:  # noqa: BLE001 — reported, not hidden
            if tel is not None:
                tel.event(
                    "job.error", job=job_hash,
                    message=f"{type(error).__name__}: {error}",
                )
            result_queue.put((
                "err", job_hash,
                f"{type(error).__name__}: {error}",
                traceback.format_exc(),
            ))
        else:
            if tel is not None:
                tel.event("job.ok", job=job_hash)
            result_queue.put(("ok", job_hash, result, None))


class _Worker:
    """One supervised worker process and its lease state."""

    __slots__ = ("proc", "task_queue", "current", "deadline", "lease_wall")

    def __init__(self, ctx, result_queue):
        self.task_queue = ctx.SimpleQueue()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(self.task_queue, result_queue),
            daemon=True,
        )
        self.proc.start()
        self.current: Optional[str] = None
        self.deadline: Optional[float] = None
        self.lease_wall: Optional[float] = None

    def assign(self, job_hash: str, job: SimJob,
               timeout: Optional[float]) -> None:
        self.task_queue.put((job_hash, job))
        self.current = job_hash
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self.lease_wall = time.time()

    def release(self) -> None:
        self.current = None
        self.deadline = None
        self.lease_wall = None

    def close(self, kill: bool = False) -> None:
        try:
            if kill:
                self.proc.kill()
            elif self.proc.is_alive():
                self.task_queue.put(None)
            self.proc.join(timeout=2.0)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=2.0)
        except (OSError, ValueError):
            pass
        try:
            self.task_queue.close()
        except (OSError, AttributeError):
            pass


@dataclass
class PoolOutcome:
    """What one :meth:`SupervisedPool.run` call produced."""

    results: Dict[str, Any]
    failures: Dict[str, JobFailure]
    retried: int = 0
    #: Summed seconds jobs spent eligible-but-unassigned (worker
    #: contention, not backoff) — the executor folds this into
    #: ``RunStats.timing_breakdown["queue_wait"]``.
    queue_wait_s: float = 0.0


class SupervisedPool:
    """Run a batch of unique jobs under supervision.

    One-shot: construct, :meth:`run`, done (workers are recycled
    between batches by construction — a campaign batch is the unit of
    checkpointing anyway).  ``n_workers`` processes execute jobs;
    ``job_timeout`` (seconds, None = unbounded) bounds each lease.
    """

    def __init__(
        self,
        n_workers: int,
        job_timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        self.n_workers = max(1, int(n_workers))
        self.job_timeout = job_timeout
        self.policy = policy or RetryPolicy()
        self.ctx = multiprocessing.get_context()

    def run(self, items: List[Tuple[str, SimJob]]) -> PoolOutcome:
        from repro import telemetry

        jobs = dict(items)
        outcome = PoolOutcome(results={}, failures={})
        if not jobs:
            return outcome
        tel = telemetry.get()
        if tel is not None:
            tel.set_role("supervisor")
        result_queue = self.ctx.Queue()
        workers = [
            _Worker(self.ctx, result_queue)
            for _ in range(min(self.n_workers, len(jobs)))
        ]
        log.info(
            "pool: %d worker(s) over %d job(s), timeout=%s",
            len(workers), len(jobs), self.job_timeout,
        )
        if tel is not None:
            for worker in workers:
                tel.event("worker.spawn", worker=worker.proc.pid)
        attempts: Dict[str, int] = {h: 0 for h in jobs}
        events: Dict[str, List[Dict[str, Any]]] = {h: [] for h in jobs}
        start_mono = time.monotonic()
        # Monotonic instant each job (re-)became eligible, for the
        # queue-wait accounting (eligible-but-unassigned time).
        queued_at: Dict[str, float] = {h: start_mono for h in jobs}
        # (eligible_time, seq, hash) — seq keeps heap order stable.
        ready: List[Tuple[float, int, str]] = [
            (0.0, seq, job_hash)
            for seq, (job_hash, _job) in enumerate(items)
        ]
        heapq.heapify(ready)
        seq_counter = len(ready)
        remaining = set(jobs)
        last_heartbeat = start_mono

        def lease_closed(worker: "_Worker", result: str) -> None:
            """Stamp the supervisor-side lease span for a finished (or
            killed) lease, on the *worker's* track (tid=worker pid) so
            even a worker that died without writing a byte shows its
            lease history."""
            if tel is None or worker.lease_wall is None:
                return
            tel.synthetic_span(
                "lease", worker.lease_wall,
                time.time() - worker.lease_wall,
                tid=worker.proc.pid, job=worker.current, result=result,
            )

        def attempt_failed(job_hash: str, reason: str, message: str,
                           trace: Optional[str] = None) -> None:
            nonlocal seq_counter
            if job_hash in outcome.results or job_hash not in remaining:
                return
            events[job_hash].append({
                "attempt": attempts[job_hash],
                "reason": reason,
                "message": message,
            })
            job = jobs[job_hash]
            if attempts[job_hash] > self.policy.max_retries:
                log.info(
                    "quarantine %s after %d attempt(s): %s",
                    job_hash[:12], attempts[job_hash], reason,
                )
                if tel is not None:
                    tel.event(
                        "job.quarantine", job=job_hash,
                        attempts=attempts[job_hash], reason=reason,
                    )
                outcome.failures[job_hash] = JobFailure(
                    job_hash=job_hash,
                    scheme=job.scheme,
                    workload=job.workload.kind,
                    attempts=attempts[job_hash],
                    reason=reason,
                    message=message,
                    traceback=trace,
                    events=events[job_hash],
                )
                remaining.discard(job_hash)
                return
            outcome.retried += 1
            delay = self.policy.delay(job_hash, attempts[job_hash])
            log.debug(
                "retry %s attempt=%d reason=%s backoff=%.3fs",
                job_hash[:12], attempts[job_hash], reason, delay,
            )
            if tel is not None:
                tel.event(
                    "job.retry", job=job_hash,
                    attempt=attempts[job_hash], reason=reason,
                    delay=round(delay, 6),
                )
                if delay > 0.0:
                    # The backoff window as a span: visible dead-time
                    # between the failed attempt and the re-lease.
                    tel.synthetic_span(
                        "retry.backoff", time.time(), delay,
                        job=job_hash, attempt=attempts[job_hash],
                        reason=reason,
                    )
            eligible = time.monotonic() + delay
            queued_at[job_hash] = eligible
            seq_counter += 1
            heapq.heappush(ready, (eligible, seq_counter, job_hash))

        try:
            while remaining:
                now = time.monotonic()
                # -- hand eligible jobs to idle workers ----------------
                for worker in workers:
                    if worker.current is not None:
                        continue
                    while ready and ready[0][0] <= now:
                        _, _, job_hash = heapq.heappop(ready)
                        if (
                            job_hash in remaining
                            and job_hash not in outcome.results
                            and not any(
                                w.current == job_hash for w in workers
                            )
                        ):
                            attempts[job_hash] += 1
                            outcome.queue_wait_s += max(
                                0.0, now - queued_at.get(job_hash, now)
                            )
                            worker.assign(
                                job_hash, jobs[job_hash], self.job_timeout
                            )
                            if tel is not None:
                                tel.event(
                                    "lease.assign", job=job_hash,
                                    tid=worker.proc.pid,
                                    attempt=attempts[job_hash],
                                )
                            break
                    if worker.current is None and not ready:
                        break
                # -- wait for a result (bounded poll) ------------------
                wait = _POLL_S
                deadlines = [
                    w.deadline for w in workers if w.deadline is not None
                ]
                if deadlines:
                    wait = min(wait, max(0.01, min(deadlines) - now))
                if ready:
                    wait = min(wait, max(0.01, ready[0][0] - now))
                try:
                    tag, job_hash, payload, trace = result_queue.get(
                        timeout=wait
                    )
                except queue_mod.Empty:
                    tag = None
                if tag is not None:
                    for worker in workers:
                        if worker.current == job_hash:
                            lease_closed(worker, tag)
                            worker.release()
                            break
                    if tag == "ok":
                        if job_hash in remaining:
                            outcome.results[job_hash] = payload
                            remaining.discard(job_hash)
                            outcome.failures.pop(job_hash, None)
                    else:
                        attempt_failed(
                            job_hash, "exception", payload, trace
                        )
                # -- heartbeat (telemetry only) ------------------------
                now = time.monotonic()
                if tel is not None and now - last_heartbeat >= _HEARTBEAT_S:
                    last_heartbeat = now
                    tel.event(
                        "heartbeat",
                        remaining=len(remaining),
                        inflight=sum(
                            1 for w in workers if w.current is not None
                        ),
                        queued=len(ready),
                    )
                # -- reap dead and expired workers ---------------------
                for index, worker in enumerate(workers):
                    if worker.current is None:
                        continue
                    if not worker.proc.is_alive():
                        job_hash = worker.current
                        log.warning(
                            "worker %s died mid-job (exit %s), job %s",
                            worker.proc.pid, worker.proc.exitcode,
                            job_hash[:12],
                        )
                        lease_closed(worker, "crash")
                        worker.release()
                        worker.close(kill=True)
                        workers[index] = _Worker(self.ctx, result_queue)
                        if tel is not None:
                            tel.event(
                                "worker.crash", tid=worker.proc.pid,
                                job=job_hash,
                                exit_code=worker.proc.exitcode,
                            )
                            tel.event(
                                "worker.spawn",
                                worker=workers[index].proc.pid,
                                replaces=worker.proc.pid,
                            )
                        attempt_failed(
                            job_hash, "worker-crash",
                            "worker process died mid-job "
                            f"(exit code {worker.proc.exitcode})",
                        )
                    elif (
                        worker.deadline is not None
                        and now >= worker.deadline
                    ):
                        job_hash = worker.current
                        log.warning(
                            "lease expired after %ss: killing worker %s "
                            "(job %s)", self.job_timeout,
                            worker.proc.pid, job_hash[:12],
                        )
                        lease_closed(worker, "timeout")
                        worker.release()
                        worker.close(kill=True)
                        workers[index] = _Worker(self.ctx, result_queue)
                        if tel is not None:
                            tel.event(
                                "timeout.kill", tid=worker.proc.pid,
                                job=job_hash, timeout=self.job_timeout,
                            )
                            tel.event(
                                "worker.spawn",
                                worker=workers[index].proc.pid,
                                replaces=worker.proc.pid,
                            )
                        attempt_failed(
                            job_hash, "timeout",
                            f"lease exceeded {self.job_timeout}s; "
                            "worker killed",
                        )
        finally:
            for worker in workers:
                worker.close()
            try:
                result_queue.close()
                result_queue.join_thread()
            except (OSError, AttributeError):
                pass
        return outcome
