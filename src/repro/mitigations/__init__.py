"""Baseline RowHammer protection schemes the paper compares against."""

from repro.mitigations.para import ParaScheme
from repro.mitigations.parfm import ParfmScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.mitigations.rfm_graphene import RfmGrapheneScheme
from repro.mitigations.twice import TwiceScheme
from repro.mitigations.cbt import CbtScheme
from repro.mitigations.blockhammer import BlockHammerScheme

__all__ = [
    "ParaScheme",
    "ParfmScheme",
    "GrapheneScheme",
    "RfmGrapheneScheme",
    "TwiceScheme",
    "CbtScheme",
    "BlockHammerScheme",
]
