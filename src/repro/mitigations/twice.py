"""TWiCe (Lee et al., ISCA 2019): time-window counters on a buffer chip.

TWiCe keeps a (row, act_count, life) table interpreted through the
Lossy-Counting lens (Table I of the Mithril paper): every tREFI
checkpoint increments each entry's ``life`` and prunes entries whose
activation rate can no longer reach the RowHammer threshold within the
remaining window — the frequency guarantee of Lossy Counting with
epsilon = threshold / window.

When an entry's count reaches ``flip_th / 4`` the victims get an
(feedback-augmented) ARR.  The /4 covers double-sided attacks plus the
count already possible while the entry was below the pruning line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.params import DramTimings
from repro.protection import ProtectionScheme, register_scheme
from repro.types import SchemeLocation


@dataclass
class _TwiceEntry:
    act_count: int = 0
    life: int = 0


@register_scheme("twice")
class TwiceScheme(ProtectionScheme):
    """Buffer-chip deterministic ARR scheme with per-tREFI pruning."""

    location = SchemeLocation.BUFFER_CHIP
    uses_rfm = False

    def __init__(
        self,
        flip_th: int = 10_000,
        rows_per_bank: int = 65536,
        timings: Optional[DramTimings] = None,
    ):
        super().__init__()
        timings = timings or DramTimings()
        self.flip_th = flip_th
        self.arr_threshold = max(1, flip_th // 4)
        self.rows_per_bank = rows_per_bank
        self._trefi_cycles = timings.trefi_cycles
        self._intervals_per_window = max(
            1, int(timings.trefw / timings.trefi)
        )
        #: minimum ACTs per interval of life for an entry to stay tracked
        self.prune_rate = self.arr_threshold / self._intervals_per_window
        self._entries: Dict[int, _TwiceEntry] = {}
        self._next_checkpoint = self._trefi_cycles
        self.max_entries_seen = 0
        self.pruned = 0

    def _checkpoint(self, cycle: int) -> None:
        while cycle >= self._next_checkpoint:
            self._next_checkpoint += self._trefi_cycles
            doomed = []
            for row, entry in self._entries.items():
                entry.life += 1
                if entry.act_count < self.prune_rate * entry.life:
                    doomed.append(row)
            for row in doomed:
                del self._entries[row]
            self.pruned += len(doomed)

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        self._checkpoint(cycle)
        entry = self._entries.get(row)
        if entry is None:
            entry = _TwiceEntry()
            self._entries[row] = entry
            if len(self._entries) > self.max_entries_seen:
                self.max_entries_seen = len(self._entries)
        entry.act_count += 1
        if entry.act_count < self.arr_threshold:
            return []
        # ARR: refresh victims and retire the entry (count restarts).
        del self._entries[row]
        victims = [
            v for v in (row - 1, row + 1) if 0 <= v < self.rows_per_bank
        ]
        self.stats.preventive_refresh_rows += len(victims)
        return victims

    def table_entries(self) -> int:
        return self.max_entries_seen
