"""RFM-Graphene: the naive threshold-buffered RFM adaptation (Fig. 2).

Section III-A's strawman: keep Graphene's CbS tracker, but instead of
issuing an ARR at the threshold (impossible on the RFM interface),
*buffer* the row and execute its preventive refresh at the next RFM
command — one buffered row per RFM.

This is vulnerable to victim concentration: up to
``acts_per_tREFW / threshold`` rows can cross the threshold almost
simultaneously, and the last one waits through ``queue_len * RFM_TH``
further ACTs before its victims get refreshed.  The safe FlipTH
therefore floors out regardless of how low the threshold is set:

    safe_FlipTH(T) = 2 * (T + floor(A / T) * RFM_TH),   A = ACTs/tREFW

minimized at ``T = sqrt(A * RFM_TH)`` — the saturation the paper's
Figure 2 shows, versus ARR-Graphene's ``safe_FlipTH = 4 * T`` line.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.params import DramTimings
from repro.protection import ProtectionScheme, register_scheme
from repro.streaming.cbs import CounterSummary
from repro.types import SchemeLocation


def arr_graphene_safe_flip_th(threshold: int) -> int:
    """Safe FlipTH of the original ARR-Graphene (linear in threshold).

    The ARR fires immediately at the threshold; with the table-reset
    straddling factor of 2 and double-sided attacks, FlipTH = 4 * T is
    protected.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    return 4 * threshold


def rfm_graphene_safe_flip_th(
    threshold: int,
    rfm_th: int,
    timings: Optional[DramTimings] = None,
) -> int:
    """Safe FlipTH of the buffered RFM adaptation (floors out)."""
    if threshold <= 0 or rfm_th <= 0:
        raise ValueError("threshold and rfm_th must be positive")
    timings = timings or DramTimings()
    acts = timings.acts_per_trefw()
    queue_len = acts // threshold
    return 2 * (threshold + queue_len * rfm_th)


def rfm_graphene_best_safe_flip_th(
    rfm_th: int, timings: Optional[DramTimings] = None
) -> int:
    """The floor: the best safe FlipTH over every possible threshold."""
    timings = timings or DramTimings()
    acts = timings.acts_per_trefw()
    best = None
    # The minimum sits near sqrt(acts * rfm_th); scan a window around it.
    center = max(1, int(math.sqrt(acts * rfm_th)))
    for threshold in range(max(1, center // 4), center * 4):
        value = rfm_graphene_safe_flip_th(threshold, rfm_th, timings)
        if best is None or value < best:
            best = value
    return best


@register_scheme("rfm-graphene")
class RfmGrapheneScheme(ProtectionScheme):
    """The strawman itself, for empirical demonstration of the weakness."""

    location = SchemeLocation.DRAM
    uses_rfm = True

    def __init__(
        self,
        threshold: int = 2000,
        n_entries: Optional[int] = None,
        rows_per_bank: int = 65536,
        timings: Optional[DramTimings] = None,
    ):
        super().__init__()
        timings = timings or DramTimings()
        self.threshold = threshold
        self.n_entries = n_entries or max(
            1, math.ceil(timings.acts_per_trefw() / threshold)
        )
        self.rows_per_bank = rows_per_bank
        self.table = CounterSummary(capacity=self.n_entries)
        self._pending: Deque[int] = deque()
        self._queued: Dict[int, bool] = {}
        self._next_trigger: Dict[int, int] = {}
        self.max_queue_depth = 0

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        self.table.observe(row)
        estimate = self.table.estimate(row)
        trigger = self._next_trigger.get(row, self.threshold)
        if estimate >= trigger and not self._queued.get(row):
            self._pending.append(row)
            self._queued[row] = True
            self._next_trigger[row] = trigger + self.threshold
            if len(self._pending) > self.max_queue_depth:
                self.max_queue_depth = len(self._pending)
        return []

    def on_rfm(self, cycle: int) -> List[int]:
        self.stats.rfms_received += 1
        if not self._pending:
            return []
        row = self._pending.popleft()
        self._queued.pop(row, None)
        if row in self.table:
            self.table.demote_to_min(row)
            # Re-arm relative to the demoted counter, not the monotone
            # multiple — the victims were just refreshed, so the next
            # hazard is a further `threshold` ACTs away.
            self._next_trigger[row] = (
                self.table.estimate(row) + self.threshold
            )
        victims = [
            v for v in (row - 1, row + 1) if 0 <= v < self.rows_per_bank
        ]
        self.stats.preventive_refresh_rows += len(victims)
        return victims

    def table_entries(self) -> int:
        return self.n_entries
