"""BlockHammer (Yaglikci et al., HPCA 2021): blacklist + throttle.

A pair of interleaved counting Bloom filters estimates per-row ACT
counts over a tCBF (= tREFW) lifetime.  Rows whose estimate reaches the
blacklist threshold ``N_BL`` are throttled: consecutive ACTs to a
blacklisted row must be at least ``tDelay`` apart, with

    tDelay = (tCBF - N_BL * tRC) / (FlipTH - N_BL)

so a blacklisted row can never accumulate FlipTH ACTs within tREFW.
No preventive refreshes at all — but false positives from CBF aliasing
throttle *benign* rows, which is the performance-attack surface the
paper's Figure 10(c) probes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.params import BLOCKHAMMER_CONFIGS, DramTimings
from repro.protection import ProtectionScheme, register_scheme
from repro.streaming.counting_bloom import DualCountingBloomFilter
from repro.types import SchemeLocation


def blockhammer_config(flip_th: int) -> Tuple[int, int]:
    """(CBF size, N_BL) for a FlipTH, per Section VI-A of the paper."""
    if flip_th in BLOCKHAMMER_CONFIGS:
        return BLOCKHAMMER_CONFIGS[flip_th]
    # Interpolate the paper's scaling for unlisted thresholds.
    n_bl = max(16, flip_th // 3)
    size = 1024
    while size < 8192 and n_bl < 2048:
        size *= 2
        n_bl = max(16, n_bl)
    return size, n_bl


def blockhammer_delay_cycles(
    flip_th: int, n_bl: int, timings: Optional[DramTimings] = None
) -> int:
    """tDelay in memory-clock cycles."""
    timings = timings or DramTimings()
    if n_bl >= flip_th:
        raise ValueError(
            f"N_BL ({n_bl}) must be below FlipTH ({flip_th}) for throttling"
        )
    tcbf = timings.trefw
    delay_ns = (tcbf - n_bl * timings.trc) / (flip_th - n_bl)
    return max(1, timings.cycles(delay_ns))


@register_scheme("blockhammer")
class BlockHammerScheme(ProtectionScheme):
    """MC-side throttling scheme built on dual counting Bloom filters."""

    location = SchemeLocation.MC
    uses_rfm = False

    def __init__(
        self,
        flip_th: int = 10_000,
        timings: Optional[DramTimings] = None,
        cbf_size: Optional[int] = None,
        n_bl: Optional[int] = None,
        num_hashes: int = 4,
        seed: int = 0xB10F,
    ):
        super().__init__()
        timings = timings or DramTimings()
        default_size, default_nbl = blockhammer_config(flip_th)
        self.flip_th = flip_th
        self.cbf_size = cbf_size or default_size
        self.n_bl = n_bl or default_nbl
        self.delay_cycles = blockhammer_delay_cycles(
            flip_th, self.n_bl, timings
        )
        epoch_acts = max(2, timings.acts_per_trefw())
        self.cbf = DualCountingBloomFilter(
            self.cbf_size, epoch_length=epoch_acts, num_hashes=num_hashes,
            seed=seed,
        )
        self._release: Dict[int, int] = {}
        self.blacklisted_rows_seen = 0

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        if self.cbf.observe_and_estimate(row) >= self.n_bl:
            if row not in self._release:
                self.blacklisted_rows_seen += 1
            self._release[row] = cycle + self.delay_cycles
            self.stats.throttle_events += 1
        return []

    def throttle_release(self, row: int, cycle: int) -> int:
        release = self._release.get(row)
        if release is None or release <= cycle:
            return cycle
        return release

    def is_blacklisted(self, row: int) -> bool:
        return self.cbf.estimate(row) >= self.n_bl

    def table_entries(self) -> int:
        return self.cbf_size * 2
