"""PARFM (Section III-E): the PARA-inspired probabilistic RFM scheme.

The DRAM-side logic reservoir-samples one aggressor among the ACTs of
the current RFM interval; when the RFM command arrives, the sampled
row's neighbours get a preventive refresh.  Protection is probabilistic
and depends solely on RFM_TH — Appendix C's recurrence (implemented in
:mod:`repro.analysis.parfm_failure`) picks the largest RFM_TH meeting a
failure-probability target.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.protection import ProtectionScheme, register_scheme
from repro.types import SchemeLocation


@register_scheme("parfm")
class ParfmScheme(ProtectionScheme):
    """Reservoir-sampling probabilistic RFM responder."""

    location = SchemeLocation.DRAM
    uses_rfm = True

    def __init__(
        self,
        rows_per_bank: int = 65536,
        blast_radius: int = 1,
        seed: int = 0xF00D,
    ):
        super().__init__()
        self.rows_per_bank = rows_per_bank
        self.blast_radius = blast_radius
        self._rng = random.Random(seed)
        self._sample: Optional[int] = None
        self._interval_acts = 0

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        self._interval_acts += 1
        # Reservoir sampling: the i-th ACT replaces the sample w.p. 1/i.
        if self._rng.random() < 1.0 / self._interval_acts:
            self._sample = row
        return []

    def on_rfm(self, cycle: int) -> List[int]:
        self.stats.rfms_received += 1
        aggressor = self._sample
        self._sample = None
        self._interval_acts = 0
        if aggressor is None:
            return []
        victims = []
        for offset in range(1, self.blast_radius + 1):
            for sign in (-1, 1):
                victim = aggressor + sign * offset
                if 0 <= victim < self.rows_per_bank:
                    victims.append(victim)
        self.stats.preventive_refresh_rows += len(victims)
        return victims
