"""PARA (Kim et al., ISCA 2014): probabilistic adjacent-row refresh.

On every ACT the MC refreshes one neighbour of the activated row with
probability ``p`` (p/2 per side).  No counters at all — but only a
probabilistic guarantee, and the refresh rate (energy) scales with
``p``, which must grow as FlipTH shrinks.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.protection import ProtectionScheme, register_scheme
from repro.types import SchemeLocation


def para_probability(flip_th: int, target_failure: float = 1e-15) -> float:
    """Per-ACT refresh probability meeting the failure target.

    A victim whose aggressor receives ``flip_th / 2`` ACTs survives
    unprotected with probability ``(1 - p/2) ** (flip_th / 2)``; solve
    for the ``p`` that pushes this below ``target_failure``.
    """
    if flip_th <= 0:
        raise ValueError(f"flip_th must be positive, got {flip_th}")
    if not 0 < target_failure < 1:
        raise ValueError(f"target_failure must be in (0,1), got {target_failure}")
    acts = flip_th / 2.0
    p = 2.0 * (1.0 - target_failure ** (1.0 / acts))
    return min(1.0, p)


@register_scheme("para")
class ParaScheme(ProtectionScheme):
    """Stateless probabilistic ARR."""

    location = SchemeLocation.MC
    uses_rfm = False

    def __init__(
        self,
        flip_th: int = 10_000,
        target_failure: float = 1e-15,
        rows_per_bank: int = 65536,
        seed: int = 0xAAA,
        probability: float = None,
    ):
        super().__init__()
        self.flip_th = flip_th
        self.probability = (
            probability
            if probability is not None
            else para_probability(flip_th, target_failure)
        )
        self.rows_per_bank = rows_per_bank
        self._rng = random.Random(seed)

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        if self._rng.random() >= self.probability:
            return []
        side = -1 if self._rng.random() < 0.5 else 1
        victim = row + side
        if not 0 <= victim < self.rows_per_bank:
            victim = row - side
        self.stats.preventive_refresh_rows += 1
        return [victim]
