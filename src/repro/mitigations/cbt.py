"""CBT (Seyedzadeh et al.): counter-based tree of grouped counters.

A binary tree over the row-address space starts as a single counter
covering the whole bank.  Hot subtrees split — both children inherit
the parent's count, keeping every count a safe overestimate — until the
counter budget is exhausted.  When a leaf's count crosses the refresh
threshold, every row the leaf covers (plus the two boundary neighbours)
receives a preventive refresh and the leaf's count resets.

Section III-D explains why this family does not carry over to RFM:
during tree construction a refresh covers enormous row ranges, and a
mature leaf spanning more than ~8 rows still cannot be refreshed within
a single tRFM window.  The class supports both ARR mode (faithful CBT)
and the measurement of those over-refresh row counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.protection import ProtectionScheme, register_scheme
from repro.types import SchemeLocation


@dataclass
class _Node:
    lo: int                      #: first row covered (inclusive)
    hi: int                      #: last row covered (inclusive)
    count: int = 0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def span(self) -> int:
        return self.hi - self.lo + 1


@register_scheme("cbt")
class CbtScheme(ProtectionScheme):
    """Counter-based tree with conservative split inheritance."""

    location = SchemeLocation.MC
    uses_rfm = False

    def __init__(
        self,
        flip_th: int = 10_000,
        rows_per_bank: int = 65536,
        num_counters: Optional[int] = None,
        split_divisor: int = 8,
    ):
        super().__init__()
        self.flip_th = flip_th
        self.rows_per_bank = rows_per_bank
        self.refresh_threshold = max(1, flip_th // 4)
        self.split_threshold = max(1, flip_th // split_divisor)
        if num_counters is None:
            from repro.params import DramTimings

            acts = DramTimings().acts_per_trefw()
            num_counters = 2 * max(1, math.ceil(acts / self.refresh_threshold))
        self.num_counters = num_counters
        self._root = _Node(lo=0, hi=rows_per_bank - 1)
        self._counters_used = 1
        self.refreshed_rows_histogram: List[int] = []

    # ------------------------------------------------------------------

    def _find_leaf(self, row: int) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if row <= node.left.hi else node.right
        return node

    def _maybe_split(self, leaf: _Node) -> None:
        if leaf.span <= 1:
            return
        if leaf.count < self.split_threshold:
            return
        if self._counters_used + 1 > self.num_counters:
            return
        mid = (leaf.lo + leaf.hi) // 2
        # Children inherit the parent's count: a conservative upper
        # bound that preserves the deterministic guarantee.
        leaf.left = _Node(lo=leaf.lo, hi=mid, count=leaf.count)
        leaf.right = _Node(lo=mid + 1, hi=leaf.hi, count=leaf.count)
        self._counters_used += 1

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range")
        leaf = self._find_leaf(row)
        leaf.count += 1
        self._maybe_split(leaf)
        leaf = self._find_leaf(row)
        if leaf.count < self.refresh_threshold:
            return []
        leaf.count = 0
        victims = [
            r
            for r in range(leaf.lo - 1, leaf.hi + 2)
            if 0 <= r < self.rows_per_bank
        ]
        self.refreshed_rows_histogram.append(len(victims))
        self.stats.preventive_refresh_rows += len(victims)
        return victims

    def table_entries(self) -> int:
        return self.num_counters

    @property
    def tree_depth(self) -> int:
        def depth(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root)

    @property
    def leaf_count(self) -> int:
        def leaves(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return leaves(node.left) + leaves(node.right)

        return leaves(self._root)
