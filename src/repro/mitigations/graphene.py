"""Graphene (Park et al., MICRO 2020): CbS tracker + threshold ARR.

The MC-side Counter-based-Summary table triggers an adjacent-row
refresh whenever a row's estimated count crosses a multiple of the
predefined threshold.  The table resets periodically, which is why the
threshold must be FlipTH/4 rather than FlipTH/2 (an aggressor's ACTs
may straddle the reset) — the two-fold degradation Mithril's wrapping
counters avoid (Section IV-E).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.params import DramTimings
from repro.protection import ProtectionScheme, register_scheme
from repro.streaming.cbs import CounterSummary
from repro.types import SchemeLocation


def graphene_entries(
    flip_th: int, timings: Optional[DramTimings] = None
) -> int:
    """Table size: enough entries that no row can reach the threshold
    untracked within one reset window (tREFW/2)."""
    timings = timings or DramTimings()
    threshold = max(1, flip_th // 4)
    acts_per_window = timings.acts_per_trefw() // 2
    return max(1, math.ceil(acts_per_window / threshold))


@register_scheme("graphene")
class GrapheneScheme(ProtectionScheme):
    """MC-side deterministic ARR scheme with periodic table reset."""

    location = SchemeLocation.MC
    uses_rfm = False

    def __init__(
        self,
        flip_th: int = 10_000,
        rows_per_bank: int = 65536,
        timings: Optional[DramTimings] = None,
        n_entries: Optional[int] = None,
        reset_interval_cycles: Optional[int] = None,
    ):
        super().__init__()
        timings = timings or DramTimings()
        self.flip_th = flip_th
        self.threshold = max(1, flip_th // 4)
        self.n_entries = n_entries or graphene_entries(flip_th, timings)
        self.rows_per_bank = rows_per_bank
        self.reset_interval_cycles = (
            reset_interval_cycles
            if reset_interval_cycles is not None
            else timings.trefw_cycles // 2
        )
        self.table = CounterSummary(capacity=self.n_entries)
        self._next_trigger: Dict[int, int] = {}
        self._next_reset = self.reset_interval_cycles
        self.resets = 0

    def _maybe_reset(self, cycle: int) -> None:
        if cycle < self._next_reset:
            return
        self.table.reset()
        self._next_trigger.clear()
        self.resets += 1
        while self._next_reset <= cycle:
            self._next_reset += self.reset_interval_cycles

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        self._maybe_reset(cycle)
        self.table.observe(row)
        estimate = self.table.estimate(row)
        trigger = self._next_trigger.get(row, self.threshold)
        if estimate < trigger:
            return []
        self._next_trigger[row] = trigger + self.threshold
        victims = [
            v for v in (row - 1, row + 1) if 0 <= v < self.rows_per_bank
        ]
        self.stats.preventive_refresh_rows += len(victims)
        return victims

    def table_entries(self) -> int:
        return self.n_entries
