"""Figure 7: the adaptive refresh policy's energy savings vs AdTH.

For the paper's two configurations — (FlipTH 3.125K, RFM_TH 16) and
(FlipTH 6.25K, RFM_TH 64) — sweep AdTH over {0, 50, 100, 150, 200} and
report, on benign workloads (multiprogrammed and multithreaded
geomeans):

* the relative dynamic-energy overhead against the unprotected run;
* the extra table entries Theorem 2 demands for the same FlipTH.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.energy import energy_overhead_percent
from repro.core.config import min_entries_for
from repro.engine import JobPlan, SimJob, normal_workload_specs
from repro.experiments.runner import geo_mean

DEFAULT_CONFIGS = ((3_125, 16), (6_250, 64))
DEFAULT_ADTH_SWEEP = (0, 50, 100, 150, 200)


def build_plan(
    configs: Sequence = DEFAULT_CONFIGS,
    adth_values: Sequence[int] = DEFAULT_ADTH_SWEEP,
    scale: float = 1.0,
) -> Tuple[JobPlan, Dict]:
    """(plan, context) for one sweep — jobs keyed for row assembly."""
    specs = normal_workload_specs(scale)

    plan = JobPlan()
    for name, spec in specs.items():
        plan.add(("base", name), SimJob(workload=spec))
    points = []
    for flip_th, rfm_th in configs:
        base_entries = min_entries_for(flip_th, rfm_th, 0)
        for adth in adth_values:
            entries = min_entries_for(flip_th, rfm_th, adth)
            if entries is None or base_entries is None:
                continue
            points.append((flip_th, rfm_th, adth, entries, base_entries))
            for name, spec in specs.items():
                plan.add(
                    (flip_th, rfm_th, adth, name),
                    SimJob.make(
                        workload=spec,
                        scheme="mithril",
                        scheme_params={
                            "n_entries": entries,
                            "rfm_th": rfm_th,
                            "adaptive_th": adth,
                        },
                        flip_th=flip_th,
                        rfm_th=rfm_th,
                        scale=scale,
                    ),
                )
    return plan, {"points": points, "specs": specs}


def plan_jobs(**kwargs) -> List[SimJob]:
    """The sweep's job list (campaign planner export)."""
    return build_plan(**kwargs)[0].jobs


def run(
    configs: Sequence = DEFAULT_CONFIGS,
    adth_values: Sequence[int] = DEFAULT_ADTH_SWEEP,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    multiprogrammed = ("mix-high", "mix-blend")
    multithreaded = ("fft", "radix", "pagerank")

    plan, context = build_plan(configs, adth_values, scale)
    res = plan.run(n_jobs=n_jobs, use_cache=use_cache)

    specs = context["specs"]
    rows = []
    for flip_th, rfm_th, adth, entries, base_entries in context["points"]:
        overheads = {}
        skipped = {}
        for name in specs:
            result = res[(flip_th, rfm_th, adth, name)]
            overheads[name] = energy_overhead_percent(
                result, res[("base", name)]
            )
            total_rfms = result.rfm_commands or 1
            skipped[name] = 100.0 * result.rfms_skipped / total_rfms
        rows.append(
            {
                "flip_th": flip_th,
                "rfm_th": rfm_th,
                "adth": adth,
                "energy_overhead_multiprogrammed_pct": round(
                    geo_mean(
                        [max(overheads[w], 1e-6) for w in multiprogrammed]
                    ),
                    4,
                ),
                "energy_overhead_multithreaded_pct": round(
                    geo_mean(
                        [max(overheads[w], 1e-6) for w in multithreaded]
                    ),
                    4,
                ),
                "rfms_skipped_pct": round(
                    geo_mean([max(v, 1e-6) for v in skipped.values()]), 2
                ),
                "additional_entries_pct": round(
                    100.0 * (entries - base_entries) / base_entries, 2
                ),
            }
        )
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'RFM_TH':>7} {'AdTH':>5} "
        f"{'E-ovh MP%':>10} {'E-ovh MT%':>10} {'skip%':>7} {'+Nentry%':>9}"
    )
    for row in rows:
        print(
            f"{row['flip_th']:>7} {row['rfm_th']:>7} {row['adth']:>5} "
            f"{row['energy_overhead_multiprogrammed_pct']:>10} "
            f"{row['energy_overhead_multithreaded_pct']:>10} "
            f"{row['rfms_skipped_pct']:>7} "
            f"{row['additional_entries_pct']:>9}"
        )
