"""Figure 8: the lbm-style large-object-sweep pattern.

Reproduces the three panels as data series:

(a) accessed logical row over a large request window;
(b) the same over a small window (showing row-burst concentration);
(c) the *activated* rows in that small window after the row buffer
    filters hits (activations are what the RH tracker sees).

The summary statistics quantify the phenomenon Section V-A leans on:
accesses concentrate ~row-burst-sized runs on each row, so the
Mithril-table spread of benign workloads stays below ~100-200.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.synthetic import streaming_sweep_trace


def run(
    num_requests: int = 4_096,
    accesses_per_row: int = 128,
    small_window: int = 512,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> Dict:
    # n_jobs/use_cache accepted for CLI uniformity; this driver only
    # characterizes a generated trace and runs no sim jobs.
    del n_jobs, use_cache
    trace = streaming_sweep_trace(
        name="lbm-like",
        num_requests=int(num_requests * scale),
        accesses_per_row=accesses_per_row,
        footprint_rows=2_048,
        mean_gap=8.0,
        seed=8,
    )
    accessed = [
        (entry.bank_index, entry.row) for entry in trace.entries
    ]
    # Reconstruct the logical (pre-interleaving) row id for plotting,
    # matching the paper's y-axis of Figure 8(a).
    large_window = [row * 64 + bank for bank, row in accessed]
    small = accessed[:small_window]
    # Row-buffer filtering: an ACT happens when (bank, row) changes.
    activations = [
        pair for prev, pair in zip([None] + small[:-1], small) if pair != prev
    ]
    run_lengths = _run_lengths(small)
    return {
        "accessed_rows_large_window": large_window,
        "accessed_rows_small_window": [row for _b, row in small],
        "activated_rows_small_window": [row for _b, row in activations],
        "accesses_per_activation": (
            len(small) / max(1, len(activations))
        ),
        "mean_burst_length": (
            sum(run_lengths) / max(1, len(run_lengths))
        ),
        "max_burst_length": max(run_lengths) if run_lengths else 0,
        "distinct_rows_small_window": len(set(small)),
    }


def _run_lengths(pairs: List) -> List[int]:
    """Lengths of consecutive same-(bank, row) access runs."""
    lengths = []
    current = 1
    for previous, pair in zip(pairs, pairs[1:]):
        if pair == previous:
            current += 1
        else:
            lengths.append(current)
            current = 1
    lengths.append(current)
    return lengths


def print_rows(result: Dict) -> None:
    print(f"accesses per activation: {result['accesses_per_activation']:.1f}")
    print(f"mean access burst per row: {result['mean_burst_length']:.1f}")
    print(f"max access burst per row: {result['max_burst_length']}")
    print(
        "distinct rows in small window: "
        f"{result['distinct_rows_small_window']}"
    )
