"""Table IV: per-bank tracker table sizes in KB for every scheme."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.area import table_size_comparison
from repro.params import PAPER_FLIP_THRESHOLDS


def run(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> Dict[str, Dict[int, float]]:
    # n_jobs/use_cache accepted for CLI uniformity (analytic driver).
    del n_jobs, use_cache
    return table_size_comparison(flip_thresholds)


def print_rows(table: Dict[str, Dict[int, float]]) -> None:
    thresholds = sorted(next(iter(table.values())), reverse=True)
    header = f"{'Scheme':<24}" + "".join(f"{t:>9}" for t in thresholds)
    print(header)
    for scheme, row in table.items():
        cells = "".join(
            f"{(row[t] if row[t] is not None else '-'):>9}"
            for t in thresholds
        )
        print(f"{scheme:<24}{cells}")
