"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run(...)`` returning plain dict/list rows that
the benchmark harness prints and EXPERIMENTS.md records.  All drivers
accept a ``scale`` knob: 1.0 reproduces the default (CI-sized) runs;
larger values lengthen traces for tighter statistics.
"""

from repro.experiments import (
    appendix_parfm,
    fig2,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    nonadjacent,
    table4,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    geo_mean,
    normal_workloads,
    run_experiment,
    scheme_under_test,
)

__all__ = [
    "fig2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table4",
    "appendix_parfm",
    "nonadjacent",
    "EXPERIMENTS",
    "run_experiment",
    "normal_workloads",
    "geo_mean",
    "scheme_under_test",
]
