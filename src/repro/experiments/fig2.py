"""Figure 2: ineffectiveness of RFM-Graphene vs the original ARR-Graphene.

For predefined thresholds from 8K down to 0.25K (the paper's x-axis is
the inverse threshold), compute the safe FlipTH of:

* ARR-Graphene — linear in the threshold;
* RFM-Graphene (RFM_TH = 64) — floors out due to victim concentration.

An optional empirical column replays the feinting adversary against the
actual RfmGrapheneScheme to confirm that victims accumulate far more
disturbance than under ARR semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mitigations.rfm_graphene import (
    RfmGrapheneScheme,
    arr_graphene_safe_flip_th,
    rfm_graphene_safe_flip_th,
)
from repro.verify.adversary import feinting_stream
from repro.verify.safety import run_safety_trace

DEFAULT_THRESHOLDS = (8_000, 4_000, 2_000, 1_000, 500, 250)


def run(
    thresholds=DEFAULT_THRESHOLDS,
    rfm_th: int = 64,
    empirical: bool = False,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    """One row per predefined threshold.

    ``n_jobs``/``use_cache`` are accepted for CLI uniformity; this
    driver is analytic (plus safety replays) and runs no sim jobs.
    """
    del n_jobs, use_cache
    rows = []
    for threshold in thresholds:
        row = {
            "predefined_threshold": threshold,
            "arr_graphene_safe_flip_th": arr_graphene_safe_flip_th(threshold),
            "rfm_graphene_safe_flip_th": rfm_graphene_safe_flip_th(
                threshold, rfm_th
            ),
        }
        if empirical:
            row["empirical_max_disturbance"] = _empirical_disturbance(
                threshold, rfm_th, scale
            )
        rows.append(row)
    return rows


def _empirical_disturbance(
    threshold: int, rfm_th: int, scale: float
) -> float:
    """Replay the concentration adversary against the real scheme."""
    scheme = RfmGrapheneScheme(threshold=threshold, n_entries=4096)
    num_rows = min(200, max(16, 120_000 // threshold))
    stream = feinting_stream(
        num_rows, max(1, threshold // 4), rounds=int(20 * scale) + 4
    )
    report = run_safety_trace(
        scheme,
        stream,
        flip_th=1 << 30,  # just measure; don't clip at flips
        rfm_th=rfm_th,
        max_acts=int(400_000 * scale),
    )
    return report.max_disturbance


def print_rows(rows: List[Dict]) -> None:
    header = f"{'threshold':>10} {'ARR-Graphene':>14} {'RFM-Graphene':>14}"
    print(header)
    for row in rows:
        print(
            f"{row['predefined_threshold']:>10} "
            f"{row['arr_graphene_safe_flip_th']:>14} "
            f"{row['rfm_graphene_safe_flip_th']:>14}"
        )
