"""Figure 11: comparison with RFM-non-compatible schemes.

PARA, CBT, TWiCe, Graphene vs Mithril and Mithril+: relative
performance on normal workloads and under the multi-sided attack, plus
dynamic-energy overhead on normal workloads.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.energy import energy_overhead_percent
from repro.experiments.runner import (
    attack_workload,
    geo_mean,
    normal_workloads,
    scheme_under_test,
)
from repro.params import PAPER_FLIP_THRESHOLDS
from repro.sim.system import simulate

DEFAULT_SCHEMES = ("para", "cbt", "twice", "graphene", "mithril", "mithril+")


def run(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: float = 1.0,
) -> List[Dict]:
    benign = normal_workloads(scale)
    benign_baselines = {
        name: simulate(traces) for name, traces in benign.items()
    }
    rows = []
    attack_seeds = (31, 41, 51)
    for flip_th in flip_thresholds:
        attack_runs = [
            attack_workload("multi-sided", scale, flip_th=flip_th, seed=seed)
            for seed in attack_seeds
        ]
        attack_baselines = [
            simulate(traces, flip_th=flip_th) for traces in attack_runs
        ]
        for scheme_name in schemes:
            factory, rfm_th = scheme_under_test(scheme_name, flip_th, scale)
            rels = []
            energies = []
            for name, traces in benign.items():
                result = simulate(
                    traces, scheme_factory=factory, rfm_th=rfm_th,
                    flip_th=flip_th,
                )
                rels.append(
                    result.relative_performance(benign_baselines[name])
                )
                energies.append(
                    max(
                        energy_overhead_percent(
                            result, benign_baselines[name]
                        ),
                        1e-6,
                    )
                )
            attack_rels = []
            for traces, baseline in zip(attack_runs, attack_baselines):
                attack_result = simulate(
                    traces, scheme_factory=factory, rfm_th=rfm_th,
                    flip_th=flip_th,
                )
                attack_rels.append(
                    attack_result.relative_performance(baseline)
                )
            rows.append(
                {
                    "flip_th": flip_th,
                    "scheme": scheme_name,
                    "normal_rel_perf_pct": round(geo_mean(rels), 3),
                    "multi_sided_rel_perf_pct": round(
                        sum(attack_rels) / len(attack_rels), 3
                    ),
                    "normal_energy_overhead_pct": round(geo_mean(energies), 4),
                }
            )
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'scheme':>10} {'normal%':>9} {'multiRH%':>9} "
        f"{'E-ovh%':>8}"
    )
    for row in rows:
        print(
            f"{row['flip_th']:>7} {row['scheme']:>10} "
            f"{row['normal_rel_perf_pct']:>9} "
            f"{row['multi_sided_rel_perf_pct']:>9} "
            f"{row['normal_energy_overhead_pct']:>8}"
        )
