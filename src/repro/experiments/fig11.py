"""Figure 11: comparison with RFM-non-compatible schemes.

PARA, CBT, TWiCe, Graphene vs Mithril and Mithril+: relative
performance on normal workloads and under the multi-sided attack, plus
dynamic-energy overhead on normal workloads.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.energy import energy_overhead_percent
from repro.engine import (
    JobPlan,
    SimJob,
    attack_workload_spec,
    normal_workload_specs,
)
from repro.engine.catalog import DEFAULT_ATTACK_SEEDS as ATTACK_SEEDS
from repro.experiments.runner import geo_mean
from repro.params import PAPER_FLIP_THRESHOLDS

DEFAULT_SCHEMES = ("para", "cbt", "twice", "graphene", "mithril", "mithril+")


def run(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: float = 1.0,
    attack_seeds: Sequence[int] = ATTACK_SEEDS,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    benign_specs = normal_workload_specs(scale)

    plan = JobPlan()
    for name, spec in benign_specs.items():
        plan.add(("benign-base", name), SimJob(workload=spec))
    for flip_th in flip_thresholds:
        attack_specs = {
            seed: attack_workload_spec(
                "multi-sided", scale, flip_th=flip_th, seed=seed
            )
            for seed in attack_seeds
        }
        for seed, spec in attack_specs.items():
            plan.add(
                ("attack-base", flip_th, seed),
                SimJob(workload=spec, flip_th=flip_th),
            )
        for scheme in schemes:
            for name, spec in benign_specs.items():
                plan.add(
                    ("benign", flip_th, scheme, name),
                    SimJob(
                        workload=spec, scheme=scheme, flip_th=flip_th,
                        scale=scale,
                    ),
                )
            for seed, spec in attack_specs.items():
                plan.add(
                    ("attack", flip_th, scheme, seed),
                    SimJob(
                        workload=spec, scheme=scheme, flip_th=flip_th,
                        scale=scale,
                    ),
                )

    res = plan.run(n_jobs=n_jobs, use_cache=use_cache)

    rows = []
    for flip_th in flip_thresholds:
        for scheme in schemes:
            rels = []
            energies = []
            for name in benign_specs:
                result = res[("benign", flip_th, scheme, name)]
                baseline = res[("benign-base", name)]
                rels.append(result.relative_performance(baseline))
                energies.append(
                    max(energy_overhead_percent(result, baseline), 1e-6)
                )
            attack_rels = [
                res[("attack", flip_th, scheme, seed)].relative_performance(
                    res[("attack-base", flip_th, seed)]
                )
                for seed in attack_seeds
            ]
            rows.append(
                {
                    "flip_th": flip_th,
                    "scheme": scheme,
                    "normal_rel_perf_pct": round(geo_mean(rels), 3),
                    "multi_sided_rel_perf_pct": round(
                        sum(attack_rels) / len(attack_rels), 3
                    ),
                    "normal_energy_overhead_pct": round(geo_mean(energies), 4),
                }
            )
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'scheme':>10} {'normal%':>9} {'multiRH%':>9} "
        f"{'E-ovh%':>8}"
    )
    for row in rows:
        print(
            f"{row['flip_th']:>7} {row['scheme']:>10} "
            f"{row['normal_rel_perf_pct']:>9} "
            f"{row['multi_sided_rel_perf_pct']:>9} "
            f"{row['normal_energy_overhead_pct']:>8}"
        )
