"""Figure 11: comparison with RFM-non-compatible schemes.

PARA, CBT, TWiCe, Graphene vs Mithril and Mithril+: relative
performance on normal workloads and under the multi-sided attack, plus
dynamic-energy overhead on normal workloads.

``extra_workloads`` names additional catalog kinds — typically the
trace-foundry stress families — evaluated as extra per-workload
panels: each kind gets its own unprotected baseline and, per
(FlipTH, scheme), a relative-performance/energy row tagged
``"panel": <kind>``.

The job list is exported through :func:`build_plan` /
:func:`plan_jobs` for campaign planners (docs/CAMPAIGNS.md).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.energy import energy_overhead_percent
from repro.engine import (
    JobPlan,
    SimJob,
    WorkloadSpec,
    attack_workload_spec,
    normal_workload_specs,
)
from repro.engine.catalog import DEFAULT_ATTACK_SEEDS as ATTACK_SEEDS
from repro.experiments.runner import geo_mean
from repro.params import PAPER_FLIP_THRESHOLDS

DEFAULT_SCHEMES = ("para", "cbt", "twice", "graphene", "mithril", "mithril+")


def build_plan(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: float = 1.0,
    attack_seeds: Sequence[int] = ATTACK_SEEDS,
    extra_workloads: Sequence[str] = (),
) -> Tuple[JobPlan, Dict]:
    """(plan, context) for one sweep — jobs keyed for row assembly."""
    benign_specs = normal_workload_specs(scale)
    extra_specs = {
        kind: WorkloadSpec.make(kind, scale=scale)
        for kind in extra_workloads
    }

    plan = JobPlan()
    for name, spec in benign_specs.items():
        plan.add(("benign-base", name), SimJob(workload=spec))
    for kind, spec in extra_specs.items():
        plan.add(("panel-base", kind), SimJob(workload=spec))
    for flip_th in flip_thresholds:
        attack_specs = {
            seed: attack_workload_spec(
                "multi-sided", scale, flip_th=flip_th, seed=seed
            )
            for seed in attack_seeds
        }
        for seed, spec in attack_specs.items():
            plan.add(
                ("attack-base", flip_th, seed),
                SimJob(workload=spec, flip_th=flip_th),
            )
        for scheme in schemes:
            for name, spec in benign_specs.items():
                plan.add(
                    ("benign", flip_th, scheme, name),
                    SimJob(
                        workload=spec, scheme=scheme, flip_th=flip_th,
                        scale=scale,
                    ),
                )
            for seed, spec in attack_specs.items():
                plan.add(
                    ("attack", flip_th, scheme, seed),
                    SimJob(
                        workload=spec, scheme=scheme, flip_th=flip_th,
                        scale=scale,
                    ),
                )
            for kind, spec in extra_specs.items():
                plan.add(
                    ("panel", flip_th, scheme, kind),
                    SimJob(
                        workload=spec, scheme=scheme, flip_th=flip_th,
                        scale=scale,
                    ),
                )
    context = {"benign_specs": benign_specs, "extra_specs": extra_specs}
    return plan, context


def plan_jobs(**kwargs) -> List[SimJob]:
    """The sweep's job list (campaign planner export)."""
    return build_plan(**kwargs)[0].jobs


def run(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: float = 1.0,
    attack_seeds: Sequence[int] = ATTACK_SEEDS,
    n_jobs: int = 1,
    use_cache: bool = True,
    extra_workloads: Sequence[str] = (),
) -> List[Dict]:
    plan, context = build_plan(
        flip_thresholds, schemes, scale, attack_seeds, extra_workloads
    )
    res = plan.run(n_jobs=n_jobs, use_cache=use_cache)

    benign_specs = context["benign_specs"]
    extra_specs = context["extra_specs"]
    rows = []
    for flip_th in flip_thresholds:
        for scheme in schemes:
            rels = []
            energies = []
            for name in benign_specs:
                result = res[("benign", flip_th, scheme, name)]
                baseline = res[("benign-base", name)]
                rels.append(result.relative_performance(baseline))
                energies.append(
                    max(energy_overhead_percent(result, baseline), 1e-6)
                )
            attack_rels = [
                res[("attack", flip_th, scheme, seed)].relative_performance(
                    res[("attack-base", flip_th, seed)]
                )
                for seed in attack_seeds
            ]
            rows.append(
                {
                    "flip_th": flip_th,
                    "scheme": scheme,
                    "normal_rel_perf_pct": round(geo_mean(rels), 3),
                    "multi_sided_rel_perf_pct": round(
                        sum(attack_rels) / len(attack_rels), 3
                    ),
                    "normal_energy_overhead_pct": round(geo_mean(energies), 4),
                }
            )
    for kind in extra_specs:
        baseline = res[("panel-base", kind)]
        for flip_th in flip_thresholds:
            for scheme in schemes:
                result = res[("panel", flip_th, scheme, kind)]
                rows.append(
                    {
                        "flip_th": flip_th,
                        "scheme": scheme,
                        "panel": kind,
                        "rel_perf_pct": round(
                            result.relative_performance(baseline), 3
                        ),
                        "energy_overhead_pct": round(
                            max(
                                energy_overhead_percent(result, baseline),
                                1e-6,
                            ),
                            4,
                        ),
                    }
                )
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'scheme':>10} {'normal%':>9} {'multiRH%':>9} "
        f"{'E-ovh%':>8}"
    )
    for row in rows:
        if "panel" in row:
            continue
        print(
            f"{row['flip_th']:>7} {row['scheme']:>10} "
            f"{row['normal_rel_perf_pct']:>9} "
            f"{row['multi_sided_rel_perf_pct']:>9} "
            f"{row['normal_energy_overhead_pct']:>8}"
        )
    panels = [row for row in rows if "panel" in row]
    if panels:
        print()
        print(
            f"{'panel':<26} {'FlipTH':>7} {'scheme':>10} {'perf%':>8} "
            f"{'E-ovh%':>8}"
        )
        for row in panels:
            print(
                f"{row['panel']:<26} {row['flip_th']:>7} "
                f"{row['scheme']:>10} {row['rel_perf_pct']:>8} "
                f"{row['energy_overhead_pct']:>8}"
            )
