"""Figure 6: (Nentry, RFM_TH) configuration space per FlipTH.

For each FlipTH (1.5K..50K), sweep RFM_TH and report the minimum table
size (in KB, as the paper plots) satisfying Theorem 1, plus the
Lossy-Counting equivalents for 25K and 50K (the dotted lines).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.config import (
    MithrilConfig,
    lossy_counting_entries,
    min_entries_for,
)
from repro.params import PAPER_FLIP_THRESHOLDS

DEFAULT_RFM_THS = (16, 32, 64, 128, 256, 512)


def run(
    flip_thresholds=PAPER_FLIP_THRESHOLDS,
    rfm_th_values=DEFAULT_RFM_THS,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    # n_jobs/use_cache accepted for CLI uniformity; the configuration
    # space is analytic (Theorem 1), so there are no sim jobs to run.
    del n_jobs, use_cache
    rows = []
    for flip_th in flip_thresholds:
        for rfm_th in rfm_th_values:
            n = min_entries_for(flip_th, rfm_th)
            entry = {
                "flip_th": flip_th,
                "rfm_th": rfm_th,
                "algorithm": "cbs",
                "n_entries": n,
                "table_kb": None,
            }
            if n is not None:
                config = MithrilConfig(
                    flip_th=flip_th, rfm_th=rfm_th, n_entries=n
                )
                entry["table_kb"] = round(config.table_kilobytes(), 4)
            rows.append(entry)
    # Lossy-Counting comparison at the two highest FlipTH values.
    for flip_th in (50_000, 25_000):
        for rfm_th in rfm_th_values:
            n = lossy_counting_entries(flip_th, rfm_th)
            entry = {
                "flip_th": flip_th,
                "rfm_th": rfm_th,
                "algorithm": "lossy-counting",
                "n_entries": n,
                "table_kb": None,
            }
            if n is not None:
                # same per-entry cost model as the CbS table
                config = MithrilConfig(
                    flip_th=flip_th, rfm_th=rfm_th, n_entries=n
                )
                entry["table_kb"] = round(config.table_kilobytes(), 4)
            rows.append(entry)
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(f"{'FlipTH':>8} {'RFM_TH':>7} {'algo':>15} {'Nentry':>8} {'KB':>9}")
    for row in rows:
        n = row["n_entries"] if row["n_entries"] is not None else "-"
        kb = row["table_kb"] if row["table_kb"] is not None else "-"
        print(
            f"{row['flip_th']:>8} {row['rfm_th']:>7} {row['algorithm']:>15} "
            f"{n:>8} {kb:>9}"
        )
