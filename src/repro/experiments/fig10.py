"""Figure 10: RFM-interface-compatible scheme comparison.

Panels (a)-(c): relative performance of PARFM, BlockHammer, Mithril,
and Mithril+ under normal workloads, a multi-sided RowHammer attack,
and the BlockHammer-adversarial pattern, across FlipTH values.

Panel (d): dynamic-energy overhead on normal workloads.
Panel (e): table-size comparison (from the analytic area model).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.area import blockhammer_table_kb, mithril_table_kb
from repro.analysis.energy import energy_overhead_percent
from repro.experiments.runner import (
    attack_workload,
    geo_mean,
    normal_workloads,
    scheme_under_test,
)
from repro.params import MITHRIL_DEFAULT_RFM_TH, PAPER_FLIP_THRESHOLDS
from repro.sim.system import simulate

DEFAULT_SCHEMES = ("parfm", "blockhammer", "mithril", "mithril+")


#: Benign-mix seeds the attack panels are averaged over.
ATTACK_SEEDS = (31, 41, 51)


def run(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: float = 1.0,
    attack_seeds: Sequence[int] = ATTACK_SEEDS,
) -> List[Dict]:
    benign = normal_workloads(scale)
    benign_baselines = {
        name: simulate(traces) for name, traces in benign.items()
    }
    rows = []
    for flip_th in flip_thresholds:
        attacks = {
            kind: [
                attack_workload(kind, scale, flip_th=flip_th, seed=seed)
                for seed in attack_seeds
            ]
            for kind in ("multi-sided", "bh-adversarial")
        }
        attack_baselines = {
            kind: [simulate(traces, flip_th=flip_th) for traces in runs]
            for kind, runs in attacks.items()
        }
        for scheme_name in schemes:
            factory, rfm_th = scheme_under_test(scheme_name, flip_th, scale)
            rels = []
            energies = []
            for name, traces in benign.items():
                result = simulate(
                    traces, scheme_factory=factory, rfm_th=rfm_th,
                    flip_th=flip_th,
                )
                rels.append(
                    result.relative_performance(benign_baselines[name])
                )
                energies.append(
                    max(
                        energy_overhead_percent(
                            result, benign_baselines[name]
                        ),
                        1e-6,
                    )
                )
            attack_rel = {}
            for name, runs in attacks.items():
                values = []
                for traces, baseline in zip(runs, attack_baselines[name]):
                    result = simulate(
                        traces, scheme_factory=factory, rfm_th=rfm_th,
                        flip_th=flip_th,
                    )
                    values.append(result.relative_performance(baseline))
                attack_rel[name] = round(sum(values) / len(values), 3)
            rows.append(
                {
                    "flip_th": flip_th,
                    "scheme": scheme_name,
                    "normal_rel_perf_pct": round(geo_mean(rels), 3),
                    "multi_sided_rel_perf_pct": attack_rel["multi-sided"],
                    "bh_adversarial_rel_perf_pct": attack_rel[
                        "bh-adversarial"
                    ],
                    "normal_energy_overhead_pct": round(geo_mean(energies), 4),
                    "table_kb": _table_kb(scheme_name, flip_th),
                }
            )
    return rows


def _table_kb(scheme_name: str, flip_th: int):
    if scheme_name == "blockhammer":
        return round(blockhammer_table_kb(flip_th), 3)
    if scheme_name in ("mithril", "mithril+"):
        kb = mithril_table_kb(
            flip_th, MITHRIL_DEFAULT_RFM_TH.get(flip_th), adaptive_th=200
        )
        return round(kb, 3) if kb is not None else None
    return 0.0  # PARFM holds no table


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'scheme':>12} {'normal%':>8} {'multiRH%':>9} "
        f"{'BHadv%':>8} {'E-ovh%':>8} {'KB':>7}"
    )
    for row in rows:
        kb = row["table_kb"] if row["table_kb"] is not None else "-"
        print(
            f"{row['flip_th']:>7} {row['scheme']:>12} "
            f"{row['normal_rel_perf_pct']:>8} "
            f"{row['multi_sided_rel_perf_pct']:>9} "
            f"{row['bh_adversarial_rel_perf_pct']:>8} "
            f"{row['normal_energy_overhead_pct']:>8} {kb:>7}"
        )
