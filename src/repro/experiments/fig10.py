"""Figure 10: RFM-interface-compatible scheme comparison.

Panels (a)-(c): relative performance of PARFM, BlockHammer, Mithril,
and Mithril+ under normal workloads, a multi-sided RowHammer attack,
and the BlockHammer-adversarial pattern, across FlipTH values.

Panel (d): dynamic-energy overhead on normal workloads.
Panel (e): table-size comparison (from the analytic area model).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.area import blockhammer_table_kb, mithril_table_kb
from repro.analysis.energy import energy_overhead_percent
from repro.engine import (
    JobPlan,
    SimJob,
    attack_workload_spec,
    normal_workload_specs,
)
from repro.engine.catalog import DEFAULT_ATTACK_SEEDS as ATTACK_SEEDS
from repro.experiments.runner import geo_mean
from repro.params import MITHRIL_DEFAULT_RFM_TH, PAPER_FLIP_THRESHOLDS

DEFAULT_SCHEMES = ("parfm", "blockhammer", "mithril", "mithril+")

ATTACK_KINDS = ("multi-sided", "bh-adversarial")


def build_plan(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: float = 1.0,
    attack_seeds: Sequence[int] = ATTACK_SEEDS,
) -> Tuple[JobPlan, Dict]:
    """(plan, context) for one sweep — jobs keyed for row assembly."""
    benign_specs = normal_workload_specs(scale)

    plan = JobPlan()
    for name, spec in benign_specs.items():
        plan.add(("benign-base", name), SimJob(workload=spec))
    for flip_th in flip_thresholds:
        attack_specs = {
            (kind, seed): attack_workload_spec(
                kind, scale, flip_th=flip_th, seed=seed
            )
            for kind in ATTACK_KINDS
            for seed in attack_seeds
        }
        for (kind, seed), spec in attack_specs.items():
            plan.add(
                ("attack-base", flip_th, kind, seed),
                SimJob(workload=spec, flip_th=flip_th),
            )
        for scheme in schemes:
            for name, spec in benign_specs.items():
                plan.add(
                    ("benign", flip_th, scheme, name),
                    SimJob(
                        workload=spec, scheme=scheme, flip_th=flip_th,
                        scale=scale,
                    ),
                )
            for (kind, seed), spec in attack_specs.items():
                plan.add(
                    ("attack", flip_th, scheme, kind, seed),
                    SimJob(
                        workload=spec, scheme=scheme, flip_th=flip_th,
                        scale=scale,
                    ),
                )
    return plan, {"benign_specs": benign_specs}


def plan_jobs(**kwargs) -> List[SimJob]:
    """The sweep's job list (campaign planner export)."""
    return build_plan(**kwargs)[0].jobs


def run(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: float = 1.0,
    attack_seeds: Sequence[int] = ATTACK_SEEDS,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    plan, context = build_plan(flip_thresholds, schemes, scale, attack_seeds)
    res = plan.run(n_jobs=n_jobs, use_cache=use_cache)

    benign_specs = context["benign_specs"]
    rows = []
    for flip_th in flip_thresholds:
        for scheme in schemes:
            rels = []
            energies = []
            for name in benign_specs:
                result = res[("benign", flip_th, scheme, name)]
                baseline = res[("benign-base", name)]
                rels.append(result.relative_performance(baseline))
                energies.append(
                    max(energy_overhead_percent(result, baseline), 1e-6)
                )
            attack_rel = {}
            for kind in ATTACK_KINDS:
                values = [
                    res[("attack", flip_th, scheme, kind, seed)]
                    .relative_performance(
                        res[("attack-base", flip_th, kind, seed)]
                    )
                    for seed in attack_seeds
                ]
                attack_rel[kind] = round(sum(values) / len(values), 3)
            rows.append(
                {
                    "flip_th": flip_th,
                    "scheme": scheme,
                    "normal_rel_perf_pct": round(geo_mean(rels), 3),
                    "multi_sided_rel_perf_pct": attack_rel["multi-sided"],
                    "bh_adversarial_rel_perf_pct": attack_rel[
                        "bh-adversarial"
                    ],
                    "normal_energy_overhead_pct": round(geo_mean(energies), 4),
                    "table_kb": _table_kb(scheme, flip_th),
                }
            )
    return rows


def _table_kb(scheme_name: str, flip_th: int):
    if scheme_name == "blockhammer":
        return round(blockhammer_table_kb(flip_th), 3)
    if scheme_name in ("mithril", "mithril+"):
        kb = mithril_table_kb(
            flip_th, MITHRIL_DEFAULT_RFM_TH.get(flip_th), adaptive_th=200
        )
        return round(kb, 3) if kb is not None else None
    return 0.0  # PARFM holds no table


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'scheme':>12} {'normal%':>8} {'multiRH%':>9} "
        f"{'BHadv%':>8} {'E-ovh%':>8} {'KB':>7}"
    )
    for row in rows:
        kb = row["table_kb"] if row["table_kb"] is not None else "-"
        print(
            f"{row['flip_th']:>7} {row['scheme']:>12} "
            f"{row['normal_rel_perf_pct']:>8} "
            f"{row['multi_sided_rel_perf_pct']:>9} "
            f"{row['bh_adversarial_rel_perf_pct']:>8} "
            f"{row['normal_energy_overhead_pct']:>8} {kb:>7}"
        )
