"""Shared machinery for the experiment drivers.

Workload construction, scheme factories per (scheme, FlipTH), and the
relative-performance / energy-overhead computations every figure needs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.energy import energy_overhead_percent
from repro.analysis.parfm_failure import parfm_rfm_th_for
from repro.core.config import min_entries_for, paper_default_config
from repro.core.mithril import MithrilScheme
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.cbt import CbtScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.mitigations.para import ParaScheme
from repro.mitigations.parfm import ParfmScheme
from repro.mitigations.twice import TwiceScheme
from repro.params import DEFAULT_ADAPTIVE_THRESHOLD, MITHRIL_DEFAULT_RFM_TH
from repro.sim.metrics import SimulationResult
from repro.sim.system import simulate
from repro.workloads.attacks import (
    blockhammer_adversarial_trace,
    multi_sided_trace,
)
from repro.workloads.multithreaded import fft_like, pagerank_like, radix_like
from repro.workloads.spec_like import mix_blend, mix_high
from repro.workloads.trace import CoreTrace

#: Default experiment sizing (CI-friendly; scale them up for precision).
DEFAULT_CORES = 4
DEFAULT_REQUESTS = 1200
DEFAULT_BANKS = 16

#: BlockHammer window compression (documented substitution, DESIGN.md).
#:
#: BlockHammer's blacklist dynamics compare per-row ACT counts
#: accumulated over tCBF (= tREFW, 32 ms) against N_BL.  The default
#: traces cover roughly 1/100 of a tREFW, so at paper-scale N_BL no row
#: could ever be blacklisted and the scheme would look free.  The
#: experiments therefore scale N_BL, FlipTH and tCBF down by this
#: factor, preserving the count-to-threshold ratios that drive both
#: correct throttling and the misidentification the paper reports.
BH_WINDOW_COMPRESSION = 16


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregation over workloads."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def _sized(scale: float, base: int) -> int:
    return max(64, int(base * scale))


def normal_workloads(
    scale: float = 1.0,
    num_cores: int = DEFAULT_CORES,
    num_banks: int = DEFAULT_BANKS,
) -> Dict[str, List[CoreTrace]]:
    """The paper's benign suite: 2 multiprogrammed + 3 multithreaded."""
    n = _sized(scale, DEFAULT_REQUESTS)
    return {
        "mix-high": mix_high(num_cores, n, num_banks, seed=11),
        "mix-blend": mix_blend(num_cores, n, num_banks, seed=12),
        "fft": fft_like(num_cores, n, num_banks, seed=21),
        "radix": radix_like(num_cores, n, num_banks, seed=22),
        "pagerank": pagerank_like(num_cores, n, num_banks, seed=23),
    }


def attack_workload(
    kind: str,
    scale: float = 1.0,
    num_cores: int = 8,
    num_banks: int = DEFAULT_BANKS,
    flip_th: int = 6_250,
    seed: int = 31,
) -> List[CoreTrace]:
    """One attacker core plus ``num_cores - 1`` benign cores.

    Eight cores by default: the attacker's weight in the aggregate IPC
    (1/8) approximates the paper's 1/16, and the extra benign cores
    dilute single-bank interleaving noise.  Experiments average the
    attack panels over several ``seed`` values — short closed-loop
    traces make individual runs sensitive to interleaving phase.
    """
    n = _sized(scale, DEFAULT_REQUESTS)
    benign = mix_high(num_cores - 1, n, num_banks, seed=seed)
    if kind == "multi-sided":
        attacker = multi_sided_trace(
            num_victims=32, bank_index=0, total_requests=8 * n
        )
    elif kind == "bh-adversarial":
        from collections import Counter

        cbf_size, n_bl_sim, _flip_sim = scaled_blockhammer_params(
            flip_th, scale
        )
        # The attacker profiles the benign threads' hottest rows on the
        # target bank and hammers their CBF-covering aliases.
        hot = Counter(
            e.row
            for trace in benign
            for e in trace.entries
            if e.bank_index % num_banks == 0
        )
        benign_rows = [row for row, _ in hot.most_common(4)] or [1000]
        attacker = blockhammer_adversarial_trace(
            benign_rows=benign_rows,
            cbf_size=cbf_size,
            blacklist_threshold=n_bl_sim,
            bank_index=0,
            total_requests=8 * n,
        )
    else:
        raise ValueError(f"unknown attack kind {kind!r}")
    return benign + [attacker]


def scheme_under_test(
    name: str, flip_th: int, scale: float = 1.0
) -> Tuple[Optional[Callable[[], object]], int]:
    """(scheme factory, rfm_th) for a named scheme at a FlipTH.

    Follows the paper's per-FlipTH configurations (Section VI-A).
    ``scale`` is the trace-length multiplier; BlockHammer's
    window-compressed thresholds track it so the blacklist dynamics
    stay calibrated to the trace coverage.
    """
    if name == "none":
        return None, 0
    if name in ("mithril", "mithril+"):
        config = paper_default_config(
            flip_th, adaptive_th=DEFAULT_ADAPTIVE_THRESHOLD
        )
        plus = name == "mithril+"
        return (
            lambda: MithrilScheme(
                n_entries=config.n_entries,
                rfm_th=config.rfm_th,
                adaptive_th=config.adaptive_th,
                plus=plus,
            ),
            config.rfm_th,
        )
    if name == "parfm":
        rfm_th = parfm_rfm_th_for(flip_th) or 2
        return (lambda: ParfmScheme()), rfm_th
    if name == "blockhammer":
        factory = _blockhammer_factory(flip_th, scale)
        return factory, 0
    if name == "para":
        return (lambda: ParaScheme(flip_th=flip_th)), 0
    if name == "graphene":
        return (lambda: GrapheneScheme(flip_th=flip_th)), 0
    if name == "twice":
        return (lambda: TwiceScheme(flip_th=flip_th)), 0
    if name == "cbt":
        return (lambda: CbtScheme(flip_th=flip_th)), 0
    raise ValueError(f"unknown scheme {name!r}")


def scaled_blockhammer_params(
    flip_th: int, scale: float = 1.0
) -> Tuple[int, int, int]:
    """(cbf_size, scaled N_BL, scaled FlipTH) for simulation runs."""
    from repro.mitigations.blockhammer import blockhammer_config

    cbf_size, n_bl = blockhammer_config(flip_th)
    compression = BH_WINDOW_COMPRESSION / max(scale, 1e-6)
    n_bl_sim = max(4, int(n_bl / compression))
    flip_sim = max(n_bl_sim + 4, int(flip_th / compression))
    return cbf_size, n_bl_sim, flip_sim


def _blockhammer_factory(
    flip_th: int, scale: float = 1.0
) -> Callable[[], BlockHammerScheme]:
    import dataclasses

    from repro.params import DramTimings

    cbf_size, n_bl_sim, flip_sim = scaled_blockhammer_params(flip_th, scale)
    compression = BH_WINDOW_COMPRESSION / max(scale, 1e-6)
    timings = dataclasses.replace(
        DramTimings(), trefw=DramTimings().trefw / compression
    )
    return lambda: BlockHammerScheme(
        flip_th=flip_sim,
        cbf_size=cbf_size,
        n_bl=n_bl_sim,
        timings=timings,
    )


def run_pair(
    traces: Sequence[CoreTrace],
    scheme_name: str,
    flip_th: int,
    baseline: Optional[SimulationResult] = None,
) -> Tuple[SimulationResult, SimulationResult]:
    """Simulate (baseline, scheme) on the same traces."""
    if baseline is None:
        baseline = simulate(traces, flip_th=flip_th)
    factory, rfm_th = scheme_under_test(scheme_name, flip_th)
    result = simulate(
        traces, scheme_factory=factory, rfm_th=rfm_th, flip_th=flip_th
    )
    return baseline, result


def relative_perf_and_energy(
    traces: Sequence[CoreTrace],
    scheme_name: str,
    flip_th: int,
    baseline: Optional[SimulationResult] = None,
) -> Tuple[float, float, SimulationResult]:
    base, result = run_pair(traces, scheme_name, flip_th, baseline)
    return (
        result.relative_performance(base),
        energy_overhead_percent(result, base),
        result,
    )


#: Experiment registry used by the CLI: id -> (module path, description).
EXPERIMENTS = {
    "fig2": ("repro.experiments.fig2", "RFM-Graphene vs ARR-Graphene safe FlipTH"),
    "fig6": ("repro.experiments.fig6", "Mithril configuration space"),
    "fig7": ("repro.experiments.fig7", "Adaptive refresh energy/AdTH sweep"),
    "fig8": ("repro.experiments.fig8", "lbm-style sweep access pattern"),
    "fig9": ("repro.experiments.fig9", "Mithril vs Mithril+ trade-off"),
    "fig10": ("repro.experiments.fig10", "RFM-compatible scheme comparison"),
    "fig11": ("repro.experiments.fig11", "Non-RFM scheme comparison"),
    "table4": ("repro.experiments.table4", "Per-bank table sizes"),
    "appendix_parfm": (
        "repro.experiments.appendix_parfm",
        "PARFM failure probability",
    ),
    "nonadjacent": (
        "repro.experiments.nonadjacent",
        "Section V-C non-adjacent RowHammer",
    ),
}


def run_experiment(name: str, **kwargs):
    """Run an experiment by id (the CLI entry point)."""
    import importlib

    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[name][0])
    return module.run(**kwargs)
