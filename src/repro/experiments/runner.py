"""Shared machinery for the experiment drivers.

Workload construction and the per-(scheme, FlipTH) factories live in
the engine catalog (:mod:`repro.engine.catalog`); this module re-exports
them for the drivers and older call sites, keeps the aggregation
helpers, and holds the experiment registry the CLI dispatches through.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.analysis.energy import energy_overhead_percent
from repro.engine.catalog import (  # noqa: F401  (re-exported API)
    BH_WINDOW_COMPRESSION,
    DEFAULT_BANKS,
    DEFAULT_CORES,
    DEFAULT_REQUESTS,
    attack_workload,
    attack_workload_spec,
    normal_workload_specs,
    normal_workloads,
    scaled_blockhammer_params,
    scheme_under_test,
)
from repro.engine.executor import run_jobs
from repro.engine.job import SimJob, WorkloadSpec
from repro.sim.metrics import SimulationResult


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregation over workloads."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def run_pair(
    workload: WorkloadSpec,
    scheme_name: str,
    flip_th: int,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> Tuple[SimulationResult, SimulationResult]:
    """Simulate (unprotected baseline, scheme) on the same workload."""
    baseline_job = SimJob(workload=workload, flip_th=flip_th)
    scheme_job = SimJob(
        workload=workload, scheme=scheme_name, flip_th=flip_th, scale=scale
    )
    baseline, result = run_jobs(
        [baseline_job, scheme_job], n_jobs=n_jobs, use_cache=use_cache
    )
    return baseline, result


def relative_perf_and_energy(
    workload: WorkloadSpec,
    scheme_name: str,
    flip_th: int,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> Tuple[float, float, SimulationResult]:
    base, result = run_pair(
        workload, scheme_name, flip_th, scale, n_jobs, use_cache
    )
    return (
        result.relative_performance(base),
        energy_overhead_percent(result, base),
        result,
    )


#: Experiment registry used by the CLI: id -> (module path, description).
EXPERIMENTS = {
    "fig2": ("repro.experiments.fig2", "RFM-Graphene vs ARR-Graphene safe FlipTH"),
    "fig6": ("repro.experiments.fig6", "Mithril configuration space"),
    "fig7": ("repro.experiments.fig7", "Adaptive refresh energy/AdTH sweep"),
    "fig8": ("repro.experiments.fig8", "lbm-style sweep access pattern"),
    "fig9": ("repro.experiments.fig9", "Mithril vs Mithril+ trade-off"),
    "fig10": ("repro.experiments.fig10", "RFM-compatible scheme comparison"),
    "fig11": ("repro.experiments.fig11", "Non-RFM scheme comparison"),
    "table4": ("repro.experiments.table4", "Per-bank table sizes"),
    "appendix_parfm": (
        "repro.experiments.appendix_parfm",
        "PARFM failure probability",
    ),
    "nonadjacent": (
        "repro.experiments.nonadjacent",
        "Section V-C non-adjacent RowHammer",
    ),
}


def run_experiment(name: str, **kwargs):
    """Run an experiment by id (the CLI entry point)."""
    import importlib

    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[name][0])
    return module.run(**kwargs)
