"""Figure 9: Mithril vs Mithril+ performance/area trade-off.

For each (FlipTH, RFM_TH) pair of the paper's sweep, report the
relative performance (geomean over the benign suite) of Mithril and
Mithril+ and the table size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.config import MithrilConfig, min_entries_for
from repro.engine import JobPlan, SimJob, normal_workload_specs
from repro.experiments.runner import geo_mean
from repro.params import DEFAULT_ADAPTIVE_THRESHOLD

#: The paper's x-axis: (FlipTH, RFM_TH) pairs from Figure 9.
DEFAULT_SWEEP = (
    (12_500, 512),
    (12_500, 256),
    (12_500, 128),
    (6_250, 256),
    (6_250, 128),
    (6_250, 64),
    (3_125, 128),
    (3_125, 64),
    (3_125, 32),
    (1_500, 32),
)


def run(
    sweep: Sequence[Tuple[int, int]] = DEFAULT_SWEEP,
    adaptive_th: int = DEFAULT_ADAPTIVE_THRESHOLD,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    specs = normal_workload_specs(scale)

    plan = JobPlan()
    for name, spec in specs.items():
        plan.add(("base", name), SimJob(workload=spec))
    points = []
    for flip_th, rfm_th in sweep:
        n = min_entries_for(flip_th, rfm_th, adaptive_th)
        points.append((flip_th, rfm_th, n))
        if n is None:
            continue
        for plus in (False, True):
            scheme = "mithril+" if plus else "mithril"
            for name, spec in specs.items():
                plan.add(
                    (flip_th, rfm_th, scheme, name),
                    SimJob.make(
                        workload=spec,
                        scheme=scheme,
                        scheme_params={
                            "n_entries": n,
                            "rfm_th": rfm_th,
                            "adaptive_th": adaptive_th,
                        },
                        flip_th=flip_th,
                        rfm_th=rfm_th,
                        scale=scale,
                    ),
                )

    res = plan.run(n_jobs=n_jobs, use_cache=use_cache)

    rows = []
    for flip_th, rfm_th, n in points:
        if n is None:
            rows.append(
                {
                    "flip_th": flip_th,
                    "rfm_th": rfm_th,
                    "feasible": False,
                }
            )
            continue
        config = MithrilConfig(
            flip_th=flip_th, rfm_th=rfm_th, n_entries=n,
            adaptive_th=adaptive_th,
        )
        perf = {}
        for scheme in ("mithril", "mithril+"):
            rels = [
                res[(flip_th, rfm_th, scheme, name)].relative_performance(
                    res[("base", name)]
                )
                for name in specs
            ]
            perf[scheme] = round(geo_mean(rels), 3)
        rows.append(
            {
                "flip_th": flip_th,
                "rfm_th": rfm_th,
                "feasible": True,
                "n_entries": n,
                "table_kb": round(config.table_kilobytes(), 3),
                "mithril_rel_perf_pct": perf["mithril"],
                "mithril_plus_rel_perf_pct": perf["mithril+"],
            }
        )
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'RFM_TH':>7} {'KB':>8} "
        f"{'Mithril%':>9} {'Mithril+%':>10}"
    )
    for row in rows:
        if not row.get("feasible"):
            print(f"{row['flip_th']:>7} {row['rfm_th']:>7} {'infeasible':>8}")
            continue
        print(
            f"{row['flip_th']:>7} {row['rfm_th']:>7} {row['table_kb']:>8} "
            f"{row['mithril_rel_perf_pct']:>9} "
            f"{row['mithril_plus_rel_perf_pct']:>10}"
        )
