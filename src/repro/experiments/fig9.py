"""Figure 9: Mithril vs Mithril+ performance/area trade-off.

For each (FlipTH, RFM_TH) pair of the paper's sweep, report the
relative performance (geomean over the benign suite) of Mithril and
Mithril+ and the table size.

``extra_workloads`` names additional catalog kinds — typically the
trace-foundry stress families — evaluated as extra per-workload panels
alongside the benign geomean: each family gets its own unprotected
baseline and a per-(FlipTH, RFM_TH) relative-performance row tagged
``"panel": <kind>``.

Like every simulation-bound driver, the job list is exported through
:func:`build_plan` / :func:`plan_jobs` so campaign planners can expand
and deduplicate the sweep without running it (docs/CAMPAIGNS.md).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.config import MithrilConfig, min_entries_for
from repro.engine import JobPlan, SimJob, WorkloadSpec, normal_workload_specs
from repro.experiments.runner import geo_mean
from repro.params import DEFAULT_ADAPTIVE_THRESHOLD

#: The paper's x-axis: (FlipTH, RFM_TH) pairs from Figure 9.
DEFAULT_SWEEP = (
    (12_500, 512),
    (12_500, 256),
    (12_500, 128),
    (6_250, 256),
    (6_250, 128),
    (6_250, 64),
    (3_125, 128),
    (3_125, 64),
    (3_125, 32),
    (1_500, 32),
)


def build_plan(
    sweep: Sequence[Tuple[int, int]] = DEFAULT_SWEEP,
    adaptive_th: int = DEFAULT_ADAPTIVE_THRESHOLD,
    scale: float = 1.0,
    extra_workloads: Sequence[str] = (),
) -> Tuple[JobPlan, Dict]:
    """(plan, context) for one sweep — jobs keyed for row assembly."""
    specs = normal_workload_specs(scale)
    extra_specs = {
        kind: WorkloadSpec.make(kind, scale=scale)
        for kind in extra_workloads
    }

    plan = JobPlan()
    for name, spec in specs.items():
        plan.add(("base", name), SimJob(workload=spec))
    for kind, spec in extra_specs.items():
        plan.add(("panel-base", kind), SimJob(workload=spec))
    points = []
    for flip_th, rfm_th in sweep:
        n = min_entries_for(flip_th, rfm_th, adaptive_th)
        points.append((flip_th, rfm_th, n))
        if n is None:
            continue
        for plus in (False, True):
            scheme = "mithril+" if plus else "mithril"
            scheme_params = {
                "n_entries": n,
                "rfm_th": rfm_th,
                "adaptive_th": adaptive_th,
            }
            for name, spec in specs.items():
                plan.add(
                    (flip_th, rfm_th, scheme, name),
                    SimJob.make(
                        workload=spec,
                        scheme=scheme,
                        scheme_params=scheme_params,
                        flip_th=flip_th,
                        rfm_th=rfm_th,
                        scale=scale,
                    ),
                )
            for kind, spec in extra_specs.items():
                plan.add(
                    (flip_th, rfm_th, scheme, "panel", kind),
                    SimJob.make(
                        workload=spec,
                        scheme=scheme,
                        scheme_params=scheme_params,
                        flip_th=flip_th,
                        rfm_th=rfm_th,
                        scale=scale,
                    ),
                )
    context = {
        "points": points,
        "specs": specs,
        "extra_specs": extra_specs,
        "adaptive_th": adaptive_th,
    }
    return plan, context


def plan_jobs(**kwargs) -> List[SimJob]:
    """The sweep's job list (campaign planner export)."""
    return build_plan(**kwargs)[0].jobs


def run(
    sweep: Sequence[Tuple[int, int]] = DEFAULT_SWEEP,
    adaptive_th: int = DEFAULT_ADAPTIVE_THRESHOLD,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
    extra_workloads: Sequence[str] = (),
) -> List[Dict]:
    plan, context = build_plan(sweep, adaptive_th, scale, extra_workloads)
    res = plan.run(n_jobs=n_jobs, use_cache=use_cache)

    specs = context["specs"]
    extra_specs = context["extra_specs"]
    rows = []
    for flip_th, rfm_th, n in context["points"]:
        if n is None:
            rows.append(
                {
                    "flip_th": flip_th,
                    "rfm_th": rfm_th,
                    "feasible": False,
                }
            )
            continue
        config = MithrilConfig(
            flip_th=flip_th, rfm_th=rfm_th, n_entries=n,
            adaptive_th=adaptive_th,
        )
        perf = {}
        for scheme in ("mithril", "mithril+"):
            rels = [
                res[(flip_th, rfm_th, scheme, name)].relative_performance(
                    res[("base", name)]
                )
                for name in specs
            ]
            perf[scheme] = round(geo_mean(rels), 3)
        rows.append(
            {
                "flip_th": flip_th,
                "rfm_th": rfm_th,
                "feasible": True,
                "n_entries": n,
                "table_kb": round(config.table_kilobytes(), 3),
                "mithril_rel_perf_pct": perf["mithril"],
                "mithril_plus_rel_perf_pct": perf["mithril+"],
            }
        )
    for kind in extra_specs:
        for flip_th, rfm_th, n in context["points"]:
            if n is None:
                continue
            rows.append(
                {
                    "flip_th": flip_th,
                    "rfm_th": rfm_th,
                    "panel": kind,
                    "mithril_rel_perf_pct": round(
                        res[(flip_th, rfm_th, "mithril", "panel", kind)]
                        .relative_performance(res[("panel-base", kind)]),
                        3,
                    ),
                    "mithril_plus_rel_perf_pct": round(
                        res[(flip_th, rfm_th, "mithril+", "panel", kind)]
                        .relative_performance(res[("panel-base", kind)]),
                        3,
                    ),
                }
            )
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'RFM_TH':>7} {'KB':>8} "
        f"{'Mithril%':>9} {'Mithril+%':>10}"
    )
    for row in rows:
        if "panel" in row:
            continue
        if not row.get("feasible"):
            print(f"{row['flip_th']:>7} {row['rfm_th']:>7} {'infeasible':>8}")
            continue
        print(
            f"{row['flip_th']:>7} {row['rfm_th']:>7} {row['table_kb']:>8} "
            f"{row['mithril_rel_perf_pct']:>9} "
            f"{row['mithril_plus_rel_perf_pct']:>10}"
        )
    panels = [row for row in rows if "panel" in row]
    if panels:
        print()
        print(
            f"{'panel':<26} {'FlipTH':>7} {'RFM_TH':>7} "
            f"{'Mithril%':>9} {'Mithril+%':>10}"
        )
        for row in panels:
            print(
                f"{row['panel']:<26} {row['flip_th']:>7} "
                f"{row['rfm_th']:>7} {row['mithril_rel_perf_pct']:>9} "
                f"{row['mithril_plus_rel_perf_pct']:>10}"
            )
