"""Appendix C: PARFM failure probability and RFM_TH selection.

For each FlipTH, report the largest RFM_TH meeting the 1e-15 system
failure target (22 simultaneously attackable banks), the resulting
failure probability, and Mithril's RFM_TH at the same FlipTH for
comparison — the gap is the source of PARFM's extra energy (Fig 10(d)).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.parfm_failure import (
    parfm_rfm_th_for,
    parfm_system_failure_probability,
)
from repro.params import MITHRIL_DEFAULT_RFM_TH, PAPER_FLIP_THRESHOLDS


def run(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    target: float = 1e-15,
    n_banks: int = 22,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    # n_jobs/use_cache accepted for CLI uniformity (analytic driver).
    del n_jobs, use_cache
    rows = []
    for flip_th in flip_thresholds:
        rfm_th = parfm_rfm_th_for(flip_th, target=target, n_banks=n_banks)
        failure = (
            parfm_system_failure_probability(rfm_th, flip_th, n_banks)
            if rfm_th is not None
            else None
        )
        rows.append(
            {
                "flip_th": flip_th,
                "parfm_rfm_th": rfm_th,
                "system_failure_probability": failure,
                "mithril_rfm_th": MITHRIL_DEFAULT_RFM_TH.get(flip_th),
            }
        )
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(f"{'FlipTH':>8} {'PARFM RFM_TH':>13} {'failure':>12} "
          f"{'Mithril RFM_TH':>15}")
    for row in rows:
        failure = row["system_failure_probability"]
        print(
            f"{row['flip_th']:>8} {row['parfm_rfm_th']:>13} "
            f"{failure:>12.2e} {row['mithril_rfm_th']:>15}"
        )
