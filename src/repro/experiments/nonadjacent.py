"""Section V-C: non-adjacent RowHammer (blast range > 1).

Within a blast range of 3 the aggregated RH effect is 3.5 (per
BlockHammer's characterization), so Mithril must keep
``M < FlipTH / 3.5`` and refresh six victim rows per preventive
refresh.  This experiment reports, per FlipTH:

* the table growth the tighter bound demands;
* a safety replay of double-sided and Half-Double-style attacks against
  the wider fault model (distance-2 disturbance with weight 0.25),
  with and without the range-aware configuration.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import MithrilConfig, min_entries_for
from repro.core.mithril import MithrilScheme
from repro.verify.adversary import double_sided_stream, many_sided_stream
from repro.verify.safety import run_safety_trace

#: distance weights: the aggregated effect over range 2 here is
#: 2 * (1.0 + 0.25) * ... — victims two rows out take quarter strength.
BLAST_WEIGHTS = (1.0, 0.25)
BLAST_MULTIPLIER = 3.5


def run(
    flip_thresholds: Sequence[int] = (12_500, 6_250, 3_125),
    rfm_th: int = 64,
    acts: int = 120_000,
    scale: float = 1.0,
    n_jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict]:
    # n_jobs/use_cache accepted for CLI uniformity; the safety replays
    # drive schemes directly rather than running full-system sim jobs.
    del n_jobs, use_cache
    rows = []
    for flip_th in flip_thresholds:
        adjacent_entries = min_entries_for(flip_th, rfm_th)
        wide_entries = min_entries_for(
            flip_th, rfm_th, blast_multiplier=BLAST_MULTIPLIER
        )
        row = {
            "flip_th": flip_th,
            "rfm_th": rfm_th,
            "adjacent_entries": adjacent_entries,
            "nonadjacent_entries": wide_entries,
            "entry_growth_pct": None,
            "narrow_scheme_max_disturbance": None,
            "wide_scheme_max_disturbance": None,
            "wide_scheme_flips": None,
        }
        if adjacent_entries and wide_entries:
            row["entry_growth_pct"] = round(
                100.0 * (wide_entries - adjacent_entries) / adjacent_entries,
                1,
            )
            replayed = int(acts * scale)
            # Narrow config + wide fault model: the blast range eats
            # the margin (may approach FlipTH under sustained attack).
            narrow = MithrilScheme(
                n_entries=adjacent_entries, rfm_th=rfm_th, blast_radius=1
            )
            narrow_report = run_safety_trace(
                narrow,
                many_sided_stream(17, replayed, spacing=4),
                flip_th,
                rfm_th=rfm_th,
                blast_weights=BLAST_WEIGHTS,
            )
            # Range-aware config: more entries AND 2-deep victim refresh.
            wide = MithrilScheme(
                n_entries=wide_entries, rfm_th=rfm_th, blast_radius=2
            )
            wide_report = run_safety_trace(
                wide,
                many_sided_stream(17, replayed, spacing=4),
                flip_th,
                rfm_th=rfm_th,
                blast_weights=BLAST_WEIGHTS,
            )
            row["narrow_scheme_max_disturbance"] = (
                narrow_report.max_disturbance
            )
            row["wide_scheme_max_disturbance"] = wide_report.max_disturbance
            row["wide_scheme_flips"] = len(wide_report.flips)
        rows.append(row)
    return rows


def print_rows(rows: List[Dict]) -> None:
    print(
        f"{'FlipTH':>7} {'Nentry(adj)':>12} {'Nentry(r3)':>11} "
        f"{'growth%':>8} {'narrow maxD':>12} {'wide maxD':>10}"
    )
    for row in rows:
        print(
            f"{row['flip_th']:>7} {row['adjacent_entries']:>12} "
            f"{row['nonadjacent_entries']:>11} "
            f"{row['entry_growth_pct']:>8} "
            f"{row['narrow_scheme_max_disturbance']:>12} "
            f"{row['wide_scheme_max_disturbance']:>10}"
        )
