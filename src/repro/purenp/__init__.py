"""Pure-python, bit-exact fallback for the numpy RNG subset.

``repro`` runs without numpy (the no-numpy CI lane proves it): the
workload generators draw from :func:`repro.workloads.nprng.default_rng`,
which hands out numpy's ``Generator`` when numpy is installed and this
package's :class:`~repro.purenp.rng.Generator` otherwise — and the two
produce identical draws bit for bit, so traces (and therefore golden
simulation results) do not depend on numpy's presence.

Vendored constants live in ``_tables.py`` and are regenerated against
installed numpy with ``python -m repro.purenp.regenerate``.
"""

from repro.purenp.rng import (  # noqa: F401
    PCG64,
    Generator,
    SeedSequence,
    default_rng,
    pairwise_sum,
)
