"""Regenerate ``_tables.py`` (vendored constants) against installed numpy.

The pure-python fallback RNG (:mod:`repro.purenp.rng`) must reproduce
numpy's ``Generator`` draws *bit for bit* so that a numpy-less
environment builds byte-identical workload traces (the no-numpy CI
lane runs the golden-equivalence suite).  Two constant sets cannot be
derived portably at runtime and are therefore vendored:

* the 256-entry ziggurat tables (``ke``/``we``/``fe``) behind
  ``Generator.standard_exponential`` — numpy compiled them in as C
  literals, and a libm-based reconstruction differs in the last ulp
  for most entries, so ``we`` is *recovered* here empirically: draws
  that consume exactly one raw uint64 are first-try accepts, hence
  ``x == fl(ri * we[idx])``, which pins each ``we[idx]`` to the unique
  double satisfying every observed (ri, x) pair.  ``ke``/``fe`` are
  rebuilt from the recovered layer edges with the published
  Marsaglia-Tsang recurrences (their residual last-ulp uncertainty
  only matters when a 53-bit draw lands exactly on a layer boundary,
  probability ~2^-53 per draw, and is covered by the behavioural
  equality tests in tests/unit/test_purenp.py);

* the ulp-correction table for numpy's SIMD ``np.power`` (pagerank's
  Zipf weights): numpy's vectorized pow differs from C libm ``pow``
  by one ulp on ~6% of the ``rank ** 0.75`` inputs, in both
  directions, so the exact offsets for the default pagerank
  parameterization (footprint 65536, skew 0.75) are recorded.

Run (requires numpy)::

    PYTHONPATH=src python -m repro.purenp.regenerate

and commit the rewritten ``_tables.py`` if it changed.  The
equivalence tests fail loudly whenever installed-numpy behaviour
drifts from the vendored constants.
"""

from __future__ import annotations

import math
from pathlib import Path

#: The pagerank parameterization whose pow corrections are vendored.
POW_COUNT = 65536
POW_EXPONENT = 0.75

_SEEDS = (101, 202, 303)
_DRAWS_PER_SEED = 80_000


def _collect_pairs():
    """(idx -> [(ri, x)]) for draws whose raw-stream use is known."""
    import numpy as np

    from repro.purenp.rng import PCG64

    direct = {i: [] for i in range(256)}
    follow = {i: [] for i in range(256)}
    for seed in _SEEDS:
        gen = np.random.default_rng(seed)
        mirror = PCG64(seed)
        state = gen.bit_generator.state["state"]["state"]
        for _ in range(_DRAWS_PER_SEED):
            x = float(gen.standard_exponential())
            new_state = gen.bit_generator.state["state"]["state"]
            mirror.state = state
            raws = []
            while mirror.state != new_state:
                raws.append(mirror.next64())
                if len(raws) > 6:
                    raise RuntimeError("raw-stream desync during recovery")
            state = new_state
            idx = (raws[0] >> 3) & 0xFF
            ri = raws[0] >> 11
            if len(raws) == 1:
                direct[idx].append((ri, x))
            elif len(raws) == 2 and idx != 0:
                # Possibly accepted after the wedge test; the value is
                # still fl(ri * we[idx]) when it is close to the
                # first-try product (retries return unrelated values).
                follow[idx].append((ri, x))
    return direct, follow


def _solve_we(pairs):
    """The unique double w with fl(ri * w) == x for all pairs."""
    import struct

    def ulp_neighbourhood(value, radius=64):
        bits = struct.unpack("<q", struct.pack("<d", value))[0]
        return [
            struct.unpack("<d", struct.pack("<q", bits + off))[0]
            for off in range(-radius, radius + 1)
        ]

    candidates = None
    for ri, x in pairs:
        if ri == 0:
            continue
        ok = {w for w in ulp_neighbourhood(x / ri) if ri * w == x}
        candidates = ok if candidates is None else candidates & ok
        if candidates is not None and len(candidates) == 1:
            break
    if not candidates:
        raise RuntimeError("no we candidate survived")
    good = [
        w for w in sorted(candidates)
        if all(r * w == x for r, x in pairs)
    ]
    if len(good) != 1:
        raise RuntimeError(f"ambiguous we candidates: {good}")
    return good[0]


def recover_ziggurat():
    """(ke, we, fe) matching numpy's compiled exponential tables."""
    direct, follow = _collect_pairs()
    we = []
    for idx in range(256):
        pairs = direct[idx]
        if not pairs:
            # ke[1] == 0: layer 1 never accepts first-try; use the
            # two-raw draws filtered to first-try products.
            rough = _solve_we(follow[idx][:8])
            pairs = [
                (ri, x) for ri, x in follow[idx]
                if abs(x - ri * rough) <= 4 * abs(x) * 2.0 ** -52
            ]
        we.append(_solve_we(pairs))
    m = 9007199254740992.0  # 2^53
    x = [w * m for w in we]  # exact: power-of-two scaling
    r = x[255]
    ke = [0] * 256
    ke[0] = int((r / x[0]) * m)
    ke[1] = 0
    for i in range(254, 0, -1):
        ke[i + 1] = int((x[i] / x[i + 1]) * m)
    fe = [math.exp(-edge) for edge in x]
    fe[0] = 1.0
    return ke, we, fe, r


def pow_corrections():
    """Ulp offsets of numpy's vectorized pow vs C libm, rank ** 0.75."""
    import struct

    import numpy as np

    vector = np.power(
        np.arange(1, POW_COUNT + 1, dtype=np.float64), POW_EXPONENT
    )
    offsets = {}
    for rank in range(1, POW_COUNT + 1):
        libm = float(rank) ** POW_EXPONENT
        simd = float(vector[rank - 1])
        if libm != simd:
            a = struct.unpack("<q", struct.pack("<d", libm))[0]
            b = struct.unpack("<q", struct.pack("<d", simd))[0]
            offsets[rank] = b - a
    return offsets


def render_tables(ke, we, fe, r, offsets) -> str:
    lines = [
        '"""Vendored constants for the pure-python numpy-compatible RNG.',
        "",
        "Generated by ``python -m repro.purenp.regenerate`` (see its",
        "docstring for the recovery method); do not edit by hand.",
        '"""',
        "",
        "# fmt: off",
        f"ZIGGURAT_EXP_R = float.fromhex({r.hex()!r})",
        "",
        "KE = (",
    ]
    for i in range(0, 256, 4):
        lines.append("    " + " ".join(f"{v}," for v in ke[i:i + 4]))
    lines.append(")")
    for name, table in (("WE", we), ("FE", fe)):
        lines.append("")
        lines.append(f"{name} = tuple(float.fromhex(v) for v in (")
        for i in range(0, 256, 3):
            lines.append(
                "    " + " ".join(f"{v.hex()!r}," for v in table[i:i + 3])
            )
        lines.append("))")
    lines += [
        "",
        "#: numpy's SIMD pow vs libm pow, for the vendored pagerank Zipf",
        "#: weights: rank -> signed ulp offset "
        f"(count={POW_COUNT}, exponent={POW_EXPONENT}).",
        f"POW_CORRECTION_KEY = ({POW_COUNT}, {POW_EXPONENT})",
        "POW_CORRECTIONS = {",
    ]
    items = sorted(offsets.items())
    for i in range(0, len(items), 6):
        chunk = items[i:i + 6]
        lines.append(
            "    " + " ".join(f"{k}: {v}," for k, v in chunk)
        )
    lines += ["}", "# fmt: on", ""]
    return "\n".join(lines)


def main() -> int:
    ke, we, fe, r = recover_ziggurat()
    offsets = pow_corrections()
    target = Path(__file__).resolve().parent / "_tables.py"
    target.write_text(render_tables(ke, we, fe, r, offsets))
    print(f"wrote {target} ({len(offsets)} pow corrections)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
