"""Bit-exact pure-python reimplementation of the numpy RNG subset.

The workload generators draw from ``numpy.random.default_rng(seed)``;
this module reproduces that generator — ``SeedSequence`` entropy
mixing, the PCG64 (XSL-RR 128/64) bit generator including its 32-bit
half-word buffering, and the exact ``Generator`` algorithms for the
five methods the generators use:

* ``random`` / ``uniform`` — 53-bit doubles from the raw stream;
* ``integers`` — Lemire bounded rejection (32-bit path below 2^32,
  matching numpy's buffered half-word consumption);
* ``exponential`` / ``standard_exponential`` — the 256-layer ziggurat
  with numpy's compiled-in tables (vendored in ``_tables.py``);
* ``choice`` — index draws via ``integers``, or the cumsum /
  searchsorted inverse-CDF path when ``p`` is given.

Bit-exactness is asserted against installed numpy by
tests/unit/test_purenp.py; a numpy-less environment (the no-numpy CI
lane) therefore generates byte-identical traces.  Throughput is a few
hundred thousand draws per second — fine for trace generation, not a
general numpy substitute.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Optional, Sequence, Union

from repro.purenp._tables import FE, KE, WE, ZIGGURAT_EXP_R

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF
_M128 = (1 << 128) - 1

# ---------------------------------------------------------------------------
# SeedSequence (O'Neill's seed_seq hashing, as implemented by numpy)
# ---------------------------------------------------------------------------

_XSHIFT = 16
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_POOL_SIZE = 4


def _uint32_words(value: int) -> List[int]:
    if value < 0:
        raise ValueError(f"entropy must be non-negative, got {value}")
    if value == 0:
        return [0]
    words = []
    while value:
        words.append(value & _M32)
        value >>= 32
    return words


class SeedSequence:
    """numpy-compatible entropy pool; explicit entropy only."""

    def __init__(self, entropy: Union[int, Sequence[int]],
                 spawn_key: Sequence[int] = ()):
        if entropy is None:
            raise ValueError(
                "the pure fallback needs explicit entropy (OS entropy "
                "would not be reproducible anyway)"
            )
        self.entropy = entropy
        self.spawn_key = tuple(spawn_key)
        self.pool = [0] * _POOL_SIZE
        self._mix(self._assembled_entropy())

    def _assembled_entropy(self) -> List[int]:
        if isinstance(self.entropy, int):
            words = _uint32_words(self.entropy)
        else:
            words = []
            for item in self.entropy:
                words.extend(_uint32_words(int(item)))
        for item in self.spawn_key:
            words.extend(_uint32_words(int(item)))
        return words

    def _mix(self, entropy: List[int]) -> None:
        pool = self.pool
        hash_const = _INIT_A

        def hashmix(value: int) -> int:
            nonlocal hash_const
            value = (value ^ hash_const) & _M32
            hash_const = (hash_const * _MULT_A) & _M32
            value = (value * hash_const) & _M32
            return value ^ (value >> _XSHIFT)

        def mix(x: int, y: int) -> int:
            result = (x * _MIX_MULT_L - y * _MIX_MULT_R) & _M32
            return result ^ (result >> _XSHIFT)

        for i in range(_POOL_SIZE):
            pool[i] = hashmix(entropy[i] if i < len(entropy) else 0)
        for i_src in range(_POOL_SIZE):
            for i_dst in range(_POOL_SIZE):
                if i_src != i_dst:
                    pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
        for i_src in range(_POOL_SIZE, len(entropy)):
            for i_dst in range(_POOL_SIZE):
                pool[i_dst] = mix(pool[i_dst], hashmix(entropy[i_src]))

    def generate_state(self, n_words64: int) -> List[int]:
        """``n_words64`` uint64 words (numpy's dtype=uint64 layout)."""
        out32 = []
        hash_const = _INIT_B
        pool = self.pool
        for i in range(n_words64 * 2):
            value = (pool[i % _POOL_SIZE] ^ hash_const) & _M32
            hash_const = (hash_const * _MULT_B) & _M32
            value = (value * hash_const) & _M32
            out32.append(value ^ (value >> _XSHIFT))
        return [
            out32[2 * i] | (out32[2 * i + 1] << 32)
            for i in range(n_words64)
        ]


# ---------------------------------------------------------------------------
# PCG64 (setseq 128/64 XSL-RR)
# ---------------------------------------------------------------------------

_PCG_MULT = (2549297995355413924 << 64) | 4865540595714422341


class PCG64:
    """The default numpy bit generator, with half-word buffering."""

    def __init__(self, seed: Union[int, SeedSequence]):
        seq = seed if isinstance(seed, SeedSequence) else SeedSequence(seed)
        words = seq.generate_state(4)
        initstate = (words[0] << 64) | words[1]
        initseq = (words[2] << 64) | words[3]
        self.inc = ((initseq << 1) | 1) & _M128
        state = (0 * _PCG_MULT + self.inc) & _M128
        state = (state + initstate) & _M128
        self.state = (state * _PCG_MULT + self.inc) & _M128
        self._has_uint32 = False
        self._uinteger = 0

    def next64(self) -> int:
        state = (self.state * _PCG_MULT + self.inc) & _M128
        self.state = state
        value = (state >> 64) ^ (state & _M64)
        rot = state >> 122
        return ((value >> rot) | (value << ((-rot) & 63))) & _M64

    def next32(self) -> int:
        if self._has_uint32:
            self._has_uint32 = False
            return self._uinteger
        value = self.next64()
        self._has_uint32 = True
        self._uinteger = value >> 32
        return value & _M32

    def next_double(self) -> float:
        return (self.next64() >> 11) * (1.0 / 9007199254740992.0)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class Generator:
    """The numpy ``Generator`` methods the workload generators use.

    Sized draws return plain python lists; callers iterate / index, so
    list-vs-ndarray is transparent (the generators were refactored to
    exactly that idiom).
    """

    def __init__(self, bit_generator: PCG64):
        self.bit_generator = bit_generator

    # -- uniform doubles ----------------------------------------------------

    def random(self, size: Optional[int] = None):
        bg = self.bit_generator
        if size is None:
            return bg.next_double()
        return [bg.next_double() for _ in range(size)]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * self.bit_generator.next_double()

    # -- bounded integers (Lemire rejection, numpy's paths) -----------------

    def _lemire32(self, rng_incl: int) -> int:
        bg = self.bit_generator
        rng_excl = rng_incl + 1
        m = bg.next32() * rng_excl
        leftover = m & _M32
        if leftover < rng_excl:
            threshold = (0x1_0000_0000 - rng_excl) % rng_excl
            while leftover < threshold:
                m = bg.next32() * rng_excl
                leftover = m & _M32
        return m >> 32

    def _lemire64(self, rng_incl: int) -> int:
        bg = self.bit_generator
        rng_excl = rng_incl + 1
        m = bg.next64() * rng_excl
        leftover = m & _M64
        if leftover < rng_excl:
            threshold = ((1 << 64) - rng_excl) % rng_excl
            while leftover < threshold:
                m = bg.next64() * rng_excl
                leftover = m & _M64
        return m >> 64

    def integers(self, low: int, high: Optional[int] = None,
                 size: Optional[int] = None):
        if high is None:
            low, high = 0, low
        rng_incl = high - low - 1  # inclusive range width (endpoint=False)
        if rng_incl < 0:
            raise ValueError(f"low >= high ({low} >= {high})")
        bg = self.bit_generator
        if rng_incl == 0:
            draw = lambda: 0  # noqa: E731 — no stream consumption
        elif rng_incl == _M32:
            draw = bg.next32
        elif rng_incl == _M64:
            draw = bg.next64
        elif rng_incl < _M32:
            draw = lambda: self._lemire32(rng_incl)  # noqa: E731
        else:
            draw = lambda: self._lemire64(rng_incl)  # noqa: E731
        if size is None:
            return low + draw()
        return [low + draw() for _ in range(size)]

    # -- exponential (256-layer ziggurat, vendored tables) ------------------

    def _standard_exponential_one(self) -> float:
        bg = self.bit_generator
        while True:
            ri = bg.next64() >> 3
            idx = ri & 0xFF
            ri >>= 8
            x = ri * WE[idx]
            if ri < KE[idx]:
                return x  # ~98.9% of draws
            if idx == 0:
                return ZIGGURAT_EXP_R - math.log1p(-bg.next_double())
            if ((FE[idx - 1] - FE[idx]) * bg.next_double() + FE[idx]
                    < math.exp(-x)):
                return x

    def standard_exponential(self, size: Optional[int] = None):
        if size is None:
            return self._standard_exponential_one()
        return [self._standard_exponential_one() for _ in range(size)]

    def exponential(self, scale: float = 1.0,
                    size: Optional[int] = None):
        if size is None:
            return self._standard_exponential_one() * scale
        return [
            self._standard_exponential_one() * scale for _ in range(size)
        ]

    # -- choice -------------------------------------------------------------

    def choice(self, a, size: Optional[int] = None, p=None):
        """numpy's replace=True paths: index draws or inverse CDF."""
        pop_size = a if isinstance(a, int) else len(a)
        if pop_size <= 0:
            raise ValueError("a must be non-empty / positive")
        if p is None:
            index = self.integers(0, pop_size, size=size)
            if isinstance(a, int):
                return index
            if size is None:
                return a[index]
            return [a[i] for i in index]
        if len(p) != pop_size:
            raise ValueError("a and p must have the same size")
        # numpy: cdf = p.cumsum(); cdf /= cdf[-1];
        #        idx = cdf.searchsorted(random(shape), side='right')
        cdf = []
        running = 0.0
        for weight in p:
            running += weight
            cdf.append(running)
        last = cdf[-1]
        cdf = [value / last for value in cdf]
        if size is None:
            index = bisect_right(cdf, self.bit_generator.next_double())
            return index if isinstance(a, int) else a[index]
        draws = [self.bit_generator.next_double() for _ in range(size)]
        indices = [bisect_right(cdf, u) for u in draws]
        if isinstance(a, int):
            return indices
        return [a[i] for i in indices]


def default_rng(seed: int) -> Generator:
    """Drop-in for ``numpy.random.default_rng`` (explicit seed only)."""
    return Generator(PCG64(seed))


# ---------------------------------------------------------------------------
# numpy-compatible reductions (the generators' non-draw numpy math)
# ---------------------------------------------------------------------------


def pairwise_sum(values: Sequence[float], lo: int = 0,
                 n: Optional[int] = None) -> float:
    """``np.sum`` for float64 1-D input: numpy's pairwise algorithm.

    Plain sequential summation differs in the last ulp; numpy splits
    blocks of eight across eight partial accumulators and recurses
    above 128 elements, and the pagerank Zipf normalization needs the
    identical rounding.
    """
    if n is None:
        n = len(values)
    if n < 8:
        total = 0.0
        for i in range(lo, lo + n):
            total += values[i]
        return total
    if n <= 128:
        acc = [values[lo + i] for i in range(8)]
        i = 8
        while i + 8 <= n:
            for j in range(8):
                acc[j] += values[lo + i + j]
            i += 8
        result = (
            ((acc[0] + acc[1]) + (acc[2] + acc[3]))
            + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
        )
        while i < n:  # non-multiple-of-8 tail folds into the result
            result += values[lo + i]
            i += 1
        return result
    half = (n // 2) - ((n // 2) % 8)
    return (
        pairwise_sum(values, lo, half)
        + pairwise_sum(values, lo + half, n - half)
    )
