"""The paper's primary contribution: Mithril and its analytical bounds."""

from repro.core.bounds import (
    adaptive_bound,
    estimated_growth_bound,
    rfm_intervals_per_window,
)
from repro.core.config import (
    MithrilConfig,
    configuration_curve,
    lossy_counting_entries,
    min_entries_for,
)
from repro.core.mithril import MithrilScheme, MithrilTable

__all__ = [
    "MithrilScheme",
    "MithrilTable",
    "MithrilConfig",
    "estimated_growth_bound",
    "adaptive_bound",
    "rfm_intervals_per_window",
    "configuration_curve",
    "min_entries_for",
    "lossy_counting_entries",
]
