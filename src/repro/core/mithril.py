"""Mithril: the per-bank tracker table and protection scheme (Section IV).

The hardware holds, per DRAM bank, a table of ``Nentry`` (row address,
counter) pairs in two CAMs, plus MaxPtr / MinPtr index registers:

* **ACT**: on-table rows increment their counter; off-table rows
  replace a minimum-counter entry (Counter-based Summary update).
* **RFM**: the MaxPtr entry is greedily selected, its adjacent victim
  rows receive a preventive refresh inside the tRFM window, and its
  counter is demoted to the table minimum (safe by inequality (2)).
* **Adaptive refresh** (Section V-A): when ``max - min <= AdTH`` the
  preventive refresh is skipped — benign access patterns never build a
  large spread, so the common case costs no refresh energy.
* **Mithril+** (Section V-B): the same condition is exposed through a
  mode register; the MC reads it (MRR) when the RAA counter saturates
  and skips issuing the RFM command entirely, removing the tRFM
  performance penalty too.

Counters wrap (Section IV-E): because only counter *differences* within
a bounded spread matter, a short modular counter replaces the unbounded
one, removing the periodic table reset that costs prior schemes a
two-fold threshold degradation.  The Python model keeps exact integers
for efficiency but continuously checks the wrapping-representability
invariant and provides :class:`WrappingCounter` to demonstrate the
modular comparison rule itself.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.protection import ProtectionScheme, register_scheme
from repro.streaming.cbs import CounterSummary
from repro.types import SchemeLocation


class WrappingCounter:
    """A b-bit modular counter with order defined relative to a window.

    Two wrapped values can be ordered correctly as long as their true
    difference is less than 2**(bits-1): the signed interpretation of
    ``(a - b) mod 2**bits`` recovers the sign of ``a - b``.
    """

    def __init__(self, bits: int, value: int = 0):
        if bits < 2:
            raise ValueError(f"bits must be >= 2, got {bits}")
        self.bits = bits
        self.modulus = 1 << bits
        self.value = value % self.modulus

    def increment(self, amount: int = 1) -> None:
        self.value = (self.value + amount) % self.modulus

    def set_to(self, other: "WrappingCounter") -> None:
        self.value = other.value

    def difference(self, other: "WrappingCounter") -> int:
        """Signed difference self - other, valid within the half-window."""
        raw = (self.value - other.value) % self.modulus
        if raw >= self.modulus // 2:
            return raw - self.modulus
        return raw

    def __ge__(self, other: "WrappingCounter") -> bool:
        return self.difference(other) >= 0

    def __gt__(self, other: "WrappingCounter") -> bool:
        return self.difference(other) > 0

    def __repr__(self) -> str:
        return f"WrappingCounter(bits={self.bits}, value={self.value})"


class MithrilTable:
    """The per-bank Mithril counter table with greedy RFM selection."""

    def __init__(self, n_entries: int, counter_bits: Optional[int] = None):
        if n_entries <= 0:
            raise ValueError(f"n_entries must be positive, got {n_entries}")
        self.n_entries = n_entries
        self.counter_bits = counter_bits
        #: hardware wrapping-counter window (None = unchecked); hoisted
        #: out of the per-ACT path.
        self._wrap_window = (
            None if counter_bits is None else 1 << (counter_bits - 1)
        )
        self._summary = CounterSummary(capacity=n_entries)
        self._max_spread_seen = 0

    # -- ACT path -------------------------------------------------------

    def record_activation(self, row: int) -> None:
        """CbS update for one ACT command."""
        self._summary.observe(row)
        spread = self.spread()
        if spread > self._max_spread_seen:
            self._max_spread_seen = spread
        window = self._wrap_window
        if window is not None and spread >= window:
            # Hardware-implementability invariant for the wrapping counter.
            raise OverflowError(
                f"counter spread {spread} exceeds wrapping window "
                f"{window}; counter_bits={self.counter_bits} too small"
            )

    # -- RFM path -------------------------------------------------------

    def greedy_select(self) -> Optional[Tuple[int, int]]:
        """The MaxPtr entry: (row, counter), or None for an empty table."""
        return self._summary.max_entry()

    def demote_max(self) -> Optional[int]:
        """Demote the MaxPtr entry's counter to the minimum; return row."""
        top = self._summary.max_entry()
        if top is None:
            return None
        row, _count = top
        self._summary.demote_to_min(row)
        return row

    # -- queries --------------------------------------------------------

    def estimate(self, row: int) -> int:
        return self._summary.estimate(row)

    def min_count(self) -> int:
        return self._summary.min_count

    def max_count(self) -> int:
        top = self._summary.max_entry()
        return 0 if top is None else top[1]

    def spread(self) -> int:
        """MaxPtr count minus MinPtr count (the adaptive-refresh signal)."""
        return self.max_count() - self.min_count()

    @property
    def max_spread_seen(self) -> int:
        return self._max_spread_seen

    def __len__(self) -> int:
        return len(self._summary)

    def items(self):
        return self._summary.items()


@register_scheme("mithril")
class MithrilScheme(ProtectionScheme):
    """Mithril (and Mithril+ when ``plus=True``) per-bank scheme.

    Parameters
    ----------
    n_entries:
        Mithril table size (chosen via :mod:`repro.core.config`).
    rfm_th:
        The RAA threshold the MC uses for this DRAM; kept here for the
        wrapping-counter sizing and reporting only.
    adaptive_th:
        AdTH of Section V-A.  0 disables the adaptive refresh policy and
        every RFM triggers a preventive refresh.
    plus:
        Enable Mithril+ — the MC consults :meth:`rfm_needed_flag` (an
        MRR read) and skips the whole RFM command when the spread is
        small.
    blast_radius:
        How many rows on each side of the aggressor get refreshed
        (1 = double-sided handling; 3 covers the non-adjacent RH of
        Section V-C).
    rows_per_bank:
        Used to clip victim rows at the edge of the array.
    """

    location = SchemeLocation.DRAM
    uses_rfm = True

    def __init__(
        self,
        n_entries: int = 512,
        rfm_th: int = 64,
        adaptive_th: int = 0,
        plus: bool = False,
        blast_radius: int = 1,
        rows_per_bank: int = 65536,
        counter_bits: Optional[int] = None,
    ):
        super().__init__()
        if blast_radius < 1:
            raise ValueError(f"blast_radius must be >= 1, got {blast_radius}")
        if counter_bits is None:
            spread_cap = adaptive_th + 2 * rfm_th
            counter_bits = max(2, math.ceil(math.log2(spread_cap + 1)) + 2)
        self.table = MithrilTable(n_entries, counter_bits=counter_bits)
        self.rfm_th = rfm_th
        self.adaptive_th = adaptive_th
        self.plus = plus
        self.blast_radius = blast_radius
        self.rows_per_bank = rows_per_bank
        self.uses_mrr_gating = plus

    # -- ProtectionScheme interface --------------------------------------

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        self.table.record_activation(row)
        return []

    def on_rfm(self, cycle: int) -> List[int]:
        self.stats.rfms_received += 1
        if self.adaptive_th and self.table.spread() <= self.adaptive_th:
            self.stats.rfms_skipped += 1
            return []
        selected = self.table.greedy_select()
        if selected is None:
            return []
        row, _count = selected
        self.table.demote_max()
        victims = self._victims(row)
        self.stats.preventive_refresh_rows += len(victims)
        return victims

    def rfm_needed_flag(self) -> bool:
        """Mithril+ MRR flag: issue the RFM only when spread is large."""
        self.stats.mrr_reads += 1
        if not self.plus:
            return True
        return self.table.spread() > self.adaptive_th

    def table_entries(self) -> int:
        return self.table.n_entries

    # -- helpers ----------------------------------------------------------

    def _victims(self, aggressor: int) -> List[int]:
        victims = []
        for offset in range(1, self.blast_radius + 1):
            for sign in (-1, 1):
                victim = aggressor + sign * offset
                if 0 <= victim < self.rows_per_bank:
                    victims.append(victim)
        return victims


def make_mithril_plus(**kwargs) -> MithrilScheme:
    """Convenience constructor for Mithril+."""
    kwargs.setdefault("plus", True)
    return MithrilScheme(**kwargs)


register_scheme("mithril+")(
    lambda **kwargs: make_mithril_plus(**kwargs)  # type: ignore[arg-type]
)
