"""Theorems 1 and 2 of the paper: the bound M on estimated-count growth.

Theorem 1.  Within any tREFW, the increase of the estimated count of
any single row under Mithril's greedy-selection policy is bounded by

    M = sum_{k=1}^{N} RFM_TH / k  +  (RFM_TH / N) * (W - 2)

where ``N`` is the number of Mithril table entries and ``W`` is the
number of RFM intervals fitting in one tREFW:

    W = ceil( (tREFW - (tREFW / tREFI) * tRFC) / (tRC * RFM_TH + tRFM) )

Setting ``M < FlipTH / 2`` guarantees deterministic protection against
double-sided RowHammer (``M < FlipTH / blast_multiplier`` in general,
Section V-C; the paper uses 3.5 for a blast range of 3).

Theorem 2 (adaptive refresh).  With the adaptive threshold AdTH the
bound loosens to

    M' = sum_{k=1}^{n*} RFM_TH / k
         + ((W - n* + N - 2) * RFM_TH + (N - n*) * AdTH) / N
    n* = ceil(N * RFM_TH / (RFM_TH + AdTH))

which reduces to M when AdTH = 0 (then n* = N).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.params import DramTimings


def harmonic(n: int) -> float:
    """H(n) = sum_{k=1}^{n} 1/k, exact for small n, asymptotic for large."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n < 10_000:
        return sum(1.0 / k for k in range(1, n + 1))
    # Euler-Maclaurin expansion; error < 1e-12 for n >= 10_000.
    gamma = 0.5772156649015328606
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)


def rfm_intervals_per_window(
    rfm_th: int, timings: Optional[DramTimings] = None
) -> int:
    """``W``: the number of RFM intervals inside one tREFW window."""
    timings = timings or DramTimings()
    return timings.rfm_intervals_per_trefw(rfm_th)


def estimated_growth_bound(
    n_entries: int,
    rfm_th: int,
    timings: Optional[DramTimings] = None,
) -> float:
    """Theorem 1: the bound ``M`` on per-row estimated-count growth.

    For the (impractical) corner where the table is larger than the
    number of RFM intervals (N > W) the harmonic sum is truncated at W,
    which keeps the bound conservative.
    """
    if n_entries <= 0:
        raise ValueError(f"n_entries must be positive, got {n_entries}")
    if rfm_th <= 0:
        raise ValueError(f"rfm_th must be positive, got {rfm_th}")
    w = rfm_intervals_per_window(rfm_th, timings)
    depth = min(n_entries, w)
    bound = rfm_th * harmonic(depth)
    bound += rfm_th * max(w - n_entries, 0) / n_entries
    bound += rfm_th * max(n_entries - 2, 0) / n_entries
    return bound


def adaptive_bound(
    n_entries: int,
    rfm_th: int,
    adaptive_th: int,
    timings: Optional[DramTimings] = None,
) -> float:
    """Theorem 2: the bound ``M'`` under the adaptive refresh policy."""
    if adaptive_th < 0:
        raise ValueError(f"adaptive_th must be non-negative, got {adaptive_th}")
    if adaptive_th == 0:
        return estimated_growth_bound(n_entries, rfm_th, timings)
    if n_entries <= 0 or rfm_th <= 0:
        raise ValueError("n_entries and rfm_th must be positive")
    w = rfm_intervals_per_window(rfm_th, timings)
    n = n_entries
    n_star = math.ceil(n * rfm_th / (rfm_th + adaptive_th))
    n_star = max(1, min(n_star, n))
    bound = rfm_th * harmonic(min(n_star, w))
    bound += ((w - n_star + n - 2) * rfm_th + (n - n_star) * adaptive_th) / n
    # M' is never smaller than M (skipping refreshes cannot help safety).
    return max(bound, estimated_growth_bound(n_entries, rfm_th, timings))


def is_safe(
    n_entries: int,
    rfm_th: int,
    flip_th: int,
    adaptive_th: int = 0,
    blast_multiplier: float = 2.0,
    timings: Optional[DramTimings] = None,
) -> bool:
    """True when the configuration deterministically protects ``flip_th``.

    ``blast_multiplier`` is 2 for double-sided attacks; 3.5 within a
    blast range of 3 (Section V-C).
    """
    bound = adaptive_bound(n_entries, rfm_th, adaptive_th, timings)
    return bound < flip_th / blast_multiplier


def max_counter_spread(rfm_th: int, n_entries: int) -> int:
    """Upper bound on (max - min) counter difference in the Mithril table.

    The proof of Theorem 1 shows that at the spread-maximizing interval
    the top-to-bottom difference is at most RFM_TH; within one interval
    it can grow by at most RFM_TH more, so 2 * RFM_TH bounds the spread
    at any instant.  The wrapping counter must distinguish values in a
    window of this size (Section IV-E).
    """
    if rfm_th <= 0 or n_entries <= 0:
        raise ValueError("rfm_th and n_entries must be positive")
    return 2 * rfm_th


def wrapping_counter_bits(rfm_th: int, n_entries: int, margin: int = 1) -> int:
    """Bits for the wrapping counter: spread window plus a safety margin."""
    spread = max_counter_spread(rfm_th, n_entries)
    return max(1, math.ceil(math.log2(spread + 1))) + margin
