"""Configuration search for Mithril: (Nentry, RFM_TH) pairs (Figure 6).

For a target FlipTH, each RFM_TH admits a minimum table size Nentry
such that ``M(Nentry, RFM_TH) < FlipTH / 2``.  Because M decreases in
Nentry while Nentry < W - 2 and increases afterwards, the search first
checks feasibility at the minimizing table size and then binary-searches
the decreasing region for the smallest safe table.

The module also derives the equivalent curve for a Lossy-Counting-based
tracker (the dotted lines of Figure 6): replacing CbS with Lossy
Counting adds the pruning slack ``epsilon * n`` to every estimate, and
the matching bound needs proportionally more entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bounds import (
    adaptive_bound,
    estimated_growth_bound,
    rfm_intervals_per_window,
    wrapping_counter_bits,
)
from repro.params import DramTimings, DramOrganization


@dataclass(frozen=True)
class MithrilConfig:
    """A concrete, provably safe Mithril configuration."""

    flip_th: int
    rfm_th: int
    n_entries: int
    adaptive_th: int = 0
    bound: float = 0.0

    def table_bits(self, organization: Optional[DramOrganization] = None) -> int:
        """Total tracker bits per bank (address CAM + wrapping counter CAM)."""
        organization = organization or DramOrganization()
        addr_bits = max(1, math.ceil(math.log2(organization.rows_per_bank)))
        counter_bits = wrapping_counter_bits(self.rfm_th, self.n_entries)
        if self.adaptive_th:
            counter_bits = max(
                counter_bits,
                math.ceil(math.log2(self.adaptive_th + 2 * self.rfm_th + 1)) + 1,
            )
        return self.n_entries * (addr_bits + counter_bits)

    def table_kilobytes(
        self, organization: Optional[DramOrganization] = None
    ) -> float:
        return self.table_bits(organization) / 8.0 / 1024.0


def min_entries_for(
    flip_th: int,
    rfm_th: int,
    adaptive_th: int = 0,
    blast_multiplier: float = 2.0,
    timings: Optional[DramTimings] = None,
    max_entries: int = 1 << 20,
) -> Optional[int]:
    """Smallest Nentry with M < flip_th / blast_multiplier, or None.

    Returns ``None`` when no table size can protect the target FlipTH at
    this RFM_TH (the concentration effect of Figure 2: more entries only
    help until N approaches W).
    """
    if flip_th <= 0:
        raise ValueError(f"flip_th must be positive, got {flip_th}")
    target = flip_th / blast_multiplier

    def bound(n: int) -> float:
        return adaptive_bound(n, rfm_th, adaptive_th, timings)

    w = rfm_intervals_per_window(rfm_th, timings)
    # M is decreasing in n until roughly n = W; check the best achievable.
    n_best = min(max(w - 2, 1), max_entries)
    if bound(n_best) >= target:
        return None
    lo, hi = 1, n_best
    while lo < hi:
        mid = (lo + hi) // 2
        if bound(mid) < target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def configuration_curve(
    flip_th: int,
    rfm_th_values: Sequence[int] = (16, 32, 64, 128, 256, 512),
    adaptive_th: int = 0,
    timings: Optional[DramTimings] = None,
) -> List[MithrilConfig]:
    """The Figure-6 curve: one safe configuration per feasible RFM_TH."""
    configs = []
    for rfm_th in rfm_th_values:
        n = min_entries_for(flip_th, rfm_th, adaptive_th, timings=timings)
        if n is None:
            continue
        configs.append(
            MithrilConfig(
                flip_th=flip_th,
                rfm_th=rfm_th,
                n_entries=n,
                adaptive_th=adaptive_th,
                bound=adaptive_bound(n, rfm_th, adaptive_th, timings),
            )
        )
    return configs


# ----------------------------------------------------------------------
# Lossy-Counting comparison (dotted lines of Figure 6)
# ----------------------------------------------------------------------


def lossy_counting_bound(
    n_entries: int, rfm_th: int, timings: Optional[DramTimings] = None
) -> float:
    """Growth bound for an RFM scheme tracking with Lossy Counting.

    Lossy Counting with ``N`` entries over a stream of ``A`` items keeps
    every element whose count exceeds ``A / N`` (epsilon = 1/N), but its
    estimates carry up to ``A / N`` slack (the frozen delta).  Relative
    to CbS — whose slack is the table minimum, at most ``A / N`` too but
    *shared* across entries and reduced by every preventive refresh —
    the lossy tracker cannot discount refreshed rows below their delta,
    so the effective bound gains an extra additive ``A / N`` term where
    ``A = W * RFM_TH`` is the per-window ACT budget.
    """
    timings = timings or DramTimings()
    w = rfm_intervals_per_window(rfm_th, timings)
    base = estimated_growth_bound(n_entries, rfm_th, timings)
    return base + (w * rfm_th) / n_entries


def lossy_counting_entries(
    flip_th: int,
    rfm_th: int,
    timings: Optional[DramTimings] = None,
    blast_multiplier: float = 2.0,
    max_entries: int = 1 << 22,
) -> Optional[int]:
    """Smallest Lossy-Counting table protecting ``flip_th`` at ``rfm_th``."""
    target = flip_th / blast_multiplier

    def bound(n: int) -> float:
        return lossy_counting_bound(n, rfm_th, timings)

    lo, hi = 1, max_entries
    if bound(hi) >= target:
        return None
    while lo < hi:
        mid = (lo + hi) // 2
        if bound(mid) < target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def paper_default_config(
    flip_th: int,
    adaptive_th: int = 0,
    timings: Optional[DramTimings] = None,
) -> MithrilConfig:
    """The paper's headline configuration for a FlipTH (Section VI-A)."""
    from repro.params import MITHRIL_DEFAULT_RFM_TH

    rfm_th = MITHRIL_DEFAULT_RFM_TH.get(flip_th)
    if rfm_th is None:
        # Fall back: pick the largest feasible RFM_TH <= 256.
        for candidate in (256, 128, 64, 32, 16, 8):
            if min_entries_for(flip_th, candidate, adaptive_th, timings=timings):
                rfm_th = candidate
                break
        else:
            raise ValueError(f"no feasible configuration for FlipTH={flip_th}")
    n = min_entries_for(flip_th, rfm_th, adaptive_th, timings=timings)
    if n is None:
        raise ValueError(
            f"FlipTH={flip_th} infeasible at RFM_TH={rfm_th}; lower rfm_th"
        )
    return MithrilConfig(
        flip_th=flip_th,
        rfm_th=rfm_th,
        n_entries=n,
        adaptive_th=adaptive_th,
        bound=adaptive_bound(n, rfm_th, adaptive_th, timings),
    )
