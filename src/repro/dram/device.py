"""DRAM device aggregation: the chip of the paper's Figure 4.

A :class:`DramChip` holds one Mithril-style protection module per bank,
a mode-register file (for the Mithril+ flag), and a command decoder
that routes ACT / REF / RFM / MRR commands to the right bank module —
the hardware organization the paper synthesizes.

The performance simulator drives banks directly for speed; this layer
exists for interface fidelity (command-level tests, the Mithril+ MRR
path, and per-chip area/energy accounting) and for downstream users who
want a device-level mental model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dram.hammer import HammerModel
from repro.dram.refresh import AutoRefreshEngine
from repro.params import DramOrganization, DramTimings
from repro.protection import NoProtection, ProtectionScheme
from repro.types import CommandKind


#: Mode-register address holding the Mithril+ "RFM worth issuing" flag.
MR_RFM_FLAG = 58


@dataclass
class DramCommand:
    """One decoded command on the device interface."""

    kind: CommandKind
    bank: int = 0
    row: Optional[int] = None
    cycle: int = 0


class CommandError(Exception):
    """An illegal command sequence reached the device."""


class DramChip:
    """One DRAM chip: per-bank protection modules + mode registers."""

    def __init__(
        self,
        scheme_factory: Optional[Callable[[], ProtectionScheme]] = None,
        timings: Optional[DramTimings] = None,
        organization: Optional[DramOrganization] = None,
        flip_th: int = 10_000,
        track_hammer: bool = True,
    ):
        self.timings = timings or DramTimings()
        self.organization = organization or DramOrganization()
        self.num_banks = self.organization.banks_per_rank
        factory = scheme_factory or NoProtection
        self.schemes: List[ProtectionScheme] = [
            factory() for _ in range(self.num_banks)
        ]
        self.refresh_engines = [
            AutoRefreshEngine(self.timings, self.organization)
            for _ in range(self.num_banks)
        ]
        self.hammer: List[Optional[HammerModel]] = [
            HammerModel(flip_th, self.organization.rows_per_bank)
            if track_hammer
            else None
            for _ in range(self.num_banks)
        ]
        self.mode_registers: Dict[int, int] = {MR_RFM_FLAG: 1}
        self.commands_processed = 0
        self.preventive_refreshes = 0

    # ------------------------------------------------------------------

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.num_banks:
            raise CommandError(
                f"bank {bank} out of range (chip has {self.num_banks})"
            )

    def execute(self, command: DramCommand) -> List[int]:
        """Execute one command; returns rows preventively refreshed."""
        self.commands_processed += 1
        if command.kind is CommandKind.ACT:
            return self._on_act(command)
        if command.kind is CommandKind.RFM:
            return self._on_rfm(command)
        if command.kind is CommandKind.REF:
            return self._on_ref(command)
        if command.kind in (CommandKind.PRE, CommandKind.RD, CommandKind.WR):
            self._check_bank(command.bank)
            return []
        raise CommandError(f"unsupported command {command.kind}")

    def _on_act(self, command: DramCommand) -> List[int]:
        self._check_bank(command.bank)
        if command.row is None:
            raise CommandError("ACT requires a row address")
        scheme = self.schemes[command.bank]
        hammer = self.hammer[command.bank]
        if hammer is not None:
            hammer.on_activate(command.row, command.cycle)
        victims = scheme.on_activate(command.row, command.cycle)
        self._refresh_victims(command.bank, victims)
        self._update_flag(command.bank)
        return victims

    def _on_rfm(self, command: DramCommand) -> List[int]:
        self._check_bank(command.bank)
        victims = self.schemes[command.bank].on_rfm(command.cycle)
        self._refresh_victims(command.bank, victims)
        self._update_flag(command.bank)
        return victims

    def _on_ref(self, command: DramCommand) -> List[int]:
        self._check_bank(command.bank)
        engine = self.refresh_engines[command.bank]
        tick = engine.pop_tick(max(command.cycle, engine.next_tick_cycle))
        if tick is None:
            return []
        _cycle, first_row, last_row = tick
        hammer = self.hammer[command.bank]
        if hammer is not None:
            hammer.on_refresh_range(first_row, last_row)
        self.schemes[command.bank].on_autorefresh(
            first_row, last_row, command.cycle
        )
        return []

    def _refresh_victims(self, bank: int, victims: List[int]) -> None:
        if not victims:
            return
        self.preventive_refreshes += len(victims)
        hammer = self.hammer[bank]
        if hammer is not None:
            for victim in victims:
                hammer.on_refresh_row(victim)

    # ------------------------------------------------------------------
    # mode registers (the Mithril+ MRR path)
    # ------------------------------------------------------------------

    def _update_flag(self, bank: int) -> None:
        """Expose whether *any* bank wants the next RFM via MR58.

        Hardware exposes per-bank flags; a single OR-reduced register
        is sufficient for the per-bank MC logic modelled here because
        the MC reads it right before a bank-targeted RFM.
        """
        self.mode_registers[MR_RFM_FLAG] = int(
            self.schemes[bank].rfm_needed_flag()
        )

    def mode_register_read(self, address: int) -> int:
        """The JEDEC MRR command."""
        try:
            return self.mode_registers[address]
        except KeyError:
            raise CommandError(f"mode register {address} not implemented")

    def mode_register_write(self, address: int, value: int) -> None:
        self.mode_registers[address] = value

    # ------------------------------------------------------------------

    @property
    def flip_count(self) -> int:
        return sum(h.flip_count for h in self.hammer if h is not None)

    @property
    def max_disturbance(self) -> float:
        return max(
            (h.max_disturbance for h in self.hammer if h is not None),
            default=0.0,
        )
