"""Auto-refresh engine.

Every tREFI, one refresh group (rows_per_bank / refresh_groups rows) of
each bank is restored and the bank is blocked for tRFC.  Over one
tREFW, every row is refreshed exactly once — the property the RowHammer
guarantee leans on (a victim's disturbance counter restarts at most
tREFW apart even with no protection scheme at all).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.params import DramOrganization, DramTimings


class AutoRefreshEngine:
    """Schedules per-bank auto-refresh ticks on a cycle timeline."""

    def __init__(
        self,
        timings: Optional[DramTimings] = None,
        organization: Optional[DramOrganization] = None,
        start_cycle: int = 0,
    ):
        self.timings = timings or DramTimings()
        self.organization = organization or DramOrganization()
        self.trefi_cycles = self.timings.trefi_cycles
        self.trfc_cycles = self.timings.trfc_cycles
        self.rows_per_group = self.organization.rows_per_refresh_group
        self.num_groups = self.organization.refresh_groups
        self._next_tick = start_cycle + self.trefi_cycles
        self._group_cursor = 0
        self.ticks_processed = 0

    def due(self, cycle: int) -> bool:
        return cycle >= self._next_tick

    def pending_ticks(self, cycle: int) -> int:
        """How many refresh ticks are due at or before ``cycle``."""
        if cycle < self._next_tick:
            return 0
        return 1 + (cycle - self._next_tick) // self.trefi_cycles

    def pop_tick(self, cycle: int) -> Optional[Tuple[int, int, int]]:
        """Consume one due tick; returns (tick_cycle, first_row, last_row).

        Returns None when no tick is due yet.  The caller blocks the
        bank for tRFC at ``tick_cycle`` and clears the rows' hammer
        disturbance.
        """
        if cycle < self._next_tick:
            return None
        tick_cycle = self._next_tick
        first_row = self._group_cursor * self.rows_per_group
        last_row = first_row + self.rows_per_group - 1
        self._group_cursor = (self._group_cursor + 1) % self.num_groups
        self._next_tick += self.trefi_cycles
        self.ticks_processed += 1
        return tick_cycle, first_row, last_row

    def drain_due(self, cycle: int) -> List[Tuple[int, int, int]]:
        """Consume every tick due at or before ``cycle``."""
        ticks = []
        while True:
            tick = self.pop_tick(cycle)
            if tick is None:
                return ticks
            ticks.append(tick)

    @property
    def next_tick_cycle(self) -> int:
        return self._next_tick
