"""Physical-address to DRAM-coordinate mapping.

Uses the common row:rank:bank:channel:column:offset interleaving so that
consecutive cache lines first stripe across channels, then banks —
maximizing bank-level parallelism for streaming workloads, exactly the
behaviour that creates the bursty per-row ACT patterns of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.params import DramOrganization
from repro.types import BankAddress, RowAddress


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class DecodedAddress:
    row: RowAddress
    column: int

    @property
    def bank(self) -> BankAddress:
        return self.row.bank


class AddressMapper:
    """Bidirectional physical-address <-> (channel, rank, bank, row, col)."""

    def __init__(self, organization: Optional[DramOrganization] = None):
        org = organization or DramOrganization()
        for name, value in (
            ("channels", org.channels),
            ("ranks_per_channel", org.ranks_per_channel),
            ("banks_per_rank", org.banks_per_rank),
            ("rows_per_bank", org.rows_per_bank),
            ("columns_per_row", org.columns_per_row),
            ("cacheline_bytes", org.cacheline_bytes),
        ):
            if not _is_power_of_two(value):
                raise ValueError(f"{name} must be a power of two, got {value}")
        self.organization = org
        self._offset_bits = org.cacheline_bytes.bit_length() - 1
        self._channel_bits = org.channels.bit_length() - 1
        self._bank_bits = org.banks_per_rank.bit_length() - 1
        self._rank_bits = org.ranks_per_channel.bit_length() - 1
        self._column_bits = org.columns_per_row.bit_length() - 1
        self._row_bits = org.rows_per_bank.bit_length() - 1

    @property
    def capacity_bytes(self) -> int:
        org = self.organization
        return (
            org.channels
            * org.ranks_per_channel
            * org.banks_per_rank
            * org.rows_per_bank
            * org.row_size_bytes
        )

    def decode(self, physical_address: int) -> DecodedAddress:
        """Split a physical byte address into DRAM coordinates."""
        if physical_address < 0:
            raise ValueError(f"address must be non-negative, got {physical_address}")
        if physical_address >= self.capacity_bytes:
            raise ValueError(
                f"address {physical_address:#x} beyond capacity "
                f"{self.capacity_bytes:#x}"
            )
        value = physical_address >> self._offset_bits
        channel = value & (self.organization.channels - 1)
        value >>= self._channel_bits
        bank = value & (self.organization.banks_per_rank - 1)
        value >>= self._bank_bits
        rank = value & (self.organization.ranks_per_channel - 1)
        value >>= self._rank_bits
        column = value & (self.organization.columns_per_row - 1)
        value >>= self._column_bits
        row = value & (self.organization.rows_per_bank - 1)
        return DecodedAddress(
            row=RowAddress(BankAddress(channel, rank, bank), row),
            column=column,
        )

    def encode(self, row: RowAddress, column: int = 0) -> int:
        """Inverse of :meth:`decode`."""
        org = self.organization
        if not 0 <= column < org.columns_per_row:
            raise ValueError(f"column {column} out of range")
        if not 0 <= row.row < org.rows_per_bank:
            raise ValueError(f"row {row.row} out of range")
        bank = row.bank
        value = row.row
        value = (value << self._column_bits) | column
        value = (value << self._rank_bits) | bank.rank
        value = (value << self._bank_bits) | bank.bank
        value = (value << self._channel_bits) | bank.channel
        return value << self._offset_bits

    def flat_bank_index(self, bank: BankAddress) -> int:
        org = self.organization
        return bank.flat_index(org.ranks_per_channel, org.banks_per_rank)

    def all_banks(self) -> Tuple[BankAddress, ...]:
        org = self.organization
        return tuple(
            BankAddress(channel, rank, bank)
            for channel in range(org.channels)
            for rank in range(org.ranks_per_channel)
            for bank in range(org.banks_per_rank)
        )
