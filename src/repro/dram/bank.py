"""Per-bank DRAM timing state machine.

Models the command-level timing that determines how much an RFM/ARR/REF
stall actually costs: row hits pay only the column access, row misses
pay PRE + ACT + column, refreshes block the bank for tRFC / tRFM, and
tFAW limits the activation rate across a rank.

All times are integer memory-clock cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.params import DramTimings


@dataclass(slots=True)
class BankServiceResult:
    """Outcome of serving one column access on a bank."""

    start_cycle: int        #: when the bank began working on the request
    data_cycle: int         #: when the data burst finished on the channel
    ready_cycle: int        #: when the bank can take the next command
    row_hit: bool
    activated: bool         #: an ACT was performed (row miss or closed row)
    precharged: bool        #: a PRE was performed before the ACT


class FawTracker:
    """Rolling four-activation-window limiter (per rank)."""

    def __init__(self, tfaw_cycles: int, window: int = 4):
        self.tfaw_cycles = tfaw_cycles
        self.window = window
        self._recent: Deque[int] = deque(maxlen=window)

    def earliest_act(self, cycle: int) -> int:
        if len(self._recent) < self.window:
            return cycle
        return max(cycle, self._recent[0] + self.tfaw_cycles)

    def record_act(self, cycle: int) -> None:
        self._recent.append(cycle)


class BankTimingModel:
    """Tracks one bank's open row and earliest-next-command time."""

    def __init__(self, timings: Optional[DramTimings] = None,
                 faw: Optional[FawTracker] = None):
        self.timings = timings or DramTimings()
        t = self.timings
        self._trp = t.cycles(t.trp)
        self._trcd = t.cycles(t.trcd)
        self._tcl = t.cycles(t.tcl)
        self._tbl = t.cycles(t.tbl)
        self._trc = t.cycles(t.trc)
        self._tras = t.cycles(t.tras)
        self.open_row: Optional[int] = None
        self.ready_cycle = 0          #: bank-free time
        self._last_act_cycle = -1 << 30
        self.faw = faw
        # statistics
        self.act_count = 0
        self.pre_count = 0
        self.access_count = 0
        self.refresh_blocks = 0

    # ------------------------------------------------------------------

    def serve_access(
        self,
        row: int,
        cycle: int,
        bus_free_cycle: int = 0,
        close_after: bool = False,
        act_not_before: int = 0,
    ) -> BankServiceResult:
        """Serve one RD/WR to ``row`` arriving at ``cycle``.

        ``bus_free_cycle`` is the earliest the channel data bus is free;
        ``act_not_before`` lets a throttling scheme delay the ACT.
        Returns the timing outcome; the caller updates bus bookkeeping
        with ``data_cycle``.
        """
        # if/else instead of max(): this runs once per served request
        # and the branches beat builtin calls by a measurable margin.
        ready = self.ready_cycle
        start = cycle if cycle > ready else ready
        activated = False
        precharged = False
        if self.open_row == row:
            row_hit = True
            column_issue = start
        else:
            row_hit = False
            if self.open_row is not None:
                # close the open row first
                earliest_pre = self._last_act_cycle + self._tras
                if earliest_pre > start:
                    start = earliest_pre
                start += self._trp
                precharged = True
                self.pre_count += 1
            act_cycle = start if start > act_not_before else act_not_before
            earliest_act = self._last_act_cycle + self._trc
            if earliest_act > act_cycle:
                act_cycle = earliest_act
            if self.faw is not None:
                act_cycle = self.faw.earliest_act(act_cycle)
                self.faw.record_act(act_cycle)
            self._last_act_cycle = act_cycle
            self.act_count += 1
            activated = True
            self.open_row = row
            column_issue = act_cycle + self._trcd
        data_start = column_issue + self._tcl
        if bus_free_cycle > data_start:
            data_start = bus_free_cycle
        data_cycle = data_start + self._tbl
        self.access_count += 1
        if close_after:
            pre_at = self._last_act_cycle + self._tras
            if column_issue > pre_at:
                pre_at = column_issue
            self.ready_cycle = pre_at + self._trp
            self.open_row = None
            self.pre_count += 1
            precharged = True
        else:
            self.ready_cycle = column_issue + self._tbl
        return BankServiceResult(
            start_cycle=start,
            data_cycle=data_cycle,
            ready_cycle=self.ready_cycle,
            row_hit=row_hit,
            activated=activated,
            precharged=precharged,
        )

    def block_for(self, cycle: int, duration_cycles: int) -> int:
        """Block the bank (REF/RFM/ARR); returns when it frees up.

        Any open row is precharged first (refresh requires a precharged
        bank), which is why frequent RFMs also cost row-buffer locality.
        """
        start = max(cycle, self.ready_cycle)
        if self.open_row is not None:
            start = max(start, self._last_act_cycle + self._tras) + self._trp
            self.open_row = None
            self.pre_count += 1
        self.ready_cycle = start + duration_cycles
        self.refresh_blocks += 1
        return self.ready_cycle

    def activate_only(self, row: int, cycle: int) -> int:
        """Perform a bare ACT (used by refresh-like internal operations)."""
        start = max(cycle, self.ready_cycle)
        if self.open_row is not None:
            start = max(start, self._last_act_cycle + self._tras) + self._trp
            self.pre_count += 1
        act_cycle = max(start, self._last_act_cycle + self._trc)
        self._last_act_cycle = act_cycle
        self.open_row = row
        self.act_count += 1
        self.ready_cycle = act_cycle + self._trcd
        return act_cycle
