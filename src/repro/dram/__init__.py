"""DRAM device substrate: addressing, bank timing, refresh, RH faults."""

from repro.dram.address import AddressMapper
from repro.dram.device import DramChip, DramCommand
from repro.dram.bank import BankTimingModel
from repro.dram.hammer import HammerModel, FlipEvent
from repro.dram.refresh import AutoRefreshEngine

__all__ = [
    "AddressMapper",
    "DramChip",
    "DramCommand",
    "BankTimingModel",
    "HammerModel",
    "FlipEvent",
    "AutoRefreshEngine",
]
