"""RowHammer fault model.

Tracks, for every row of a bank, the disturbance accumulated from ACTs
on physically adjacent rows since the row's charge was last restored
(by auto-refresh or a preventive refresh).  A row whose disturbance
reaches FlipTH experiences a bit flip — the event the protection
schemes must make impossible.

The model supports a blast range > 1 with per-distance weights to
represent the non-adjacent RowHammer of Section V-C: the default
weights (1.0, 0.25) give the paper's aggregated effect of 3.5 within a
range of 2 (2 * 1.0 + 2 * 0.25 * 3 = ... the paper quotes 3.5 for
range 3; the weights are configurable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FlipEvent:
    """A victim row crossed FlipTH without an intervening refresh."""

    cycle: int
    row: int
    disturbance: float
    aggressor: int


class HammerModel:
    """Disturbance bookkeeping for one DRAM bank."""

    def __init__(
        self,
        flip_th: int,
        rows_per_bank: int = 65536,
        blast_weights: Sequence[float] = (1.0,),
    ):
        if flip_th <= 0:
            raise ValueError(f"flip_th must be positive, got {flip_th}")
        if not blast_weights or blast_weights[0] <= 0:
            raise ValueError("blast_weights must start with a positive weight")
        self.flip_th = flip_th
        self.rows_per_bank = rows_per_bank
        self.blast_weights = tuple(blast_weights)
        self._disturbance: Dict[int, float] = {}
        self.flips: List[FlipEvent] = []
        self.max_disturbance = 0.0
        self.max_disturbance_row: Optional[int] = None

    # ------------------------------------------------------------------

    def on_activate(self, row: int, cycle: int = 0) -> None:
        """Register the disturbance one ACT causes on neighbouring rows."""
        disturbance = self._disturbance
        rows_per_bank = self.rows_per_bank
        flip_th = self.flip_th
        for distance, weight in enumerate(self.blast_weights, start=1):
            for victim in (row - distance, row + distance):
                if not 0 <= victim < rows_per_bank:
                    continue
                level = disturbance.get(victim, 0.0) + weight
                disturbance[victim] = level
                if level > self.max_disturbance:
                    self.max_disturbance = level
                    self.max_disturbance_row = victim
                if level >= flip_th:
                    self.flips.append(
                        FlipEvent(
                            cycle=cycle,
                            row=victim,
                            disturbance=level,
                            aggressor=row,
                        )
                    )
                    # The flip happened; restart counting so one broken
                    # victim does not flood the log.
                    self._disturbance[victim] = 0.0

    def on_refresh_row(self, row: int) -> None:
        """Charge restored on ``row``: its disturbance count restarts."""
        self._disturbance.pop(row, None)

    def on_refresh_range(self, first_row: int, last_row: int) -> None:
        """Auto-refresh restored rows ``first_row..last_row`` inclusive."""
        if last_row - first_row > len(self._disturbance):
            # cheaper to filter the dict than to probe every row
            self._disturbance = {
                r: v
                for r, v in self._disturbance.items()
                if not first_row <= r <= last_row
            }
            return
        for row in range(first_row, last_row + 1):
            self._disturbance.pop(row, None)

    # ------------------------------------------------------------------

    def disturbance(self, row: int) -> float:
        return self._disturbance.get(row, 0.0)

    @property
    def flip_count(self) -> int:
        return len(self.flips)

    @property
    def tracked_rows(self) -> int:
        return len(self._disturbance)

    def snapshot_top(self, k: int = 5) -> List[Tuple[int, float]]:
        """The ``k`` most-disturbed rows right now (row, level)."""
        return sorted(self._disturbance.items(), key=lambda kv: -kv[1])[:k]
