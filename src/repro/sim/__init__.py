"""System simulator: cores + memory controller + DRAM + protection."""

from repro.sim.core import TraceCore
from repro.sim.tracing import CommandTracer, attach_tracer
from repro.sim.metrics import SimulationResult
from repro.sim.system import SimulatedSystem, simulate

__all__ = [
    "TraceCore",
    "SimulationResult",
    "SimulatedSystem",
    "simulate",
    "CommandTracer",
    "attach_tracer",
]
