"""Structure-of-arrays trace decode for the turbo backend.

The scalar issue path touches a :class:`~repro.workloads.trace.TraceEntry`
object per request — four attribute loads plus the ``TraceCore.issue``
call.  The turbo backend instead decodes each trace into flat per-field
sequences:

* ``flats`` — normalized flat bank index (``bank_index % num_banks``);
* ``rows`` / ``columns`` / ``writes`` — the request fields;
* ``steps`` — the issue-cycle increment *after* issuing entry ``i``
  (``max(gap_cycles[i+1], 1)``, the ``TraceCore.issue`` recurrence),
  so the hot loop replaces the branch-and-peek with one list read.

The decode arithmetic (modulo fold, gap clamp/shift) runs vectorized
in numpy and the results are materialized as plain python lists — in
CPython, ``list[i]`` on the resulting small ints beats ndarray scalar
indexing by an order of magnitude, which is exactly the trade the
event loop wants.

Decodes come in two shapes behind one *window protocol*
(``chunk_start`` / ``chunk_end`` / ``ensure``):

* :class:`TraceSoA` — the whole trace as a single window.  Shared
  across systems through a **bounded LRU cache** keyed on the trace
  object (weak: a garbage-collected trace drops its decodes), so
  re-simulating the same materialized workload decodes once while a
  campaign over hundreds of workloads cannot grow the cache without
  eviction.
* :class:`StreamedTraceSoA` — only one chunk of columns is live at a
  time; ``ensure(index)`` decodes the window containing ``index`` on
  demand.  Hours-long traces larger than RAM feed the drain with
  bounded decode memory.  Streamed windows are stateful, so they are
  never shared through the cache — each consumer gets its own.

Streaming engages automatically past :data:`STREAM_THRESHOLD` entries,
or for every trace when :data:`CHUNK_ENV` forces a window size (CI
forces a tiny one to drive the chunk-crossing paths under the golden
equivalence gates).
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.workloads.trace import CoreTrace

#: Force streamed decode with this window size (entries) for every
#: trace.  Unset / non-positive: stream only past STREAM_THRESHOLD.
CHUNK_ENV = "REPRO_SOA_CHUNK"

#: Bound (in decodes, not bytes) of the full-decode LRU cache.
CACHE_ENV = "REPRO_SOA_CACHE"

#: Traces at least this long stream by default: a full decode of five
#: python lists costs ~200 B/entry, so the threshold caps the decode
#: at a couple hundred MB before switching to windows.
STREAM_THRESHOLD = 1 << 20

#: Default streaming window (entries per chunk).
DEFAULT_CHUNK = 1 << 18

#: Default decode-cache capacity (sweeps reuse a handful of workloads
#: at a time; a campaign over hundreds must not pin them all).
DEFAULT_CACHE_SIZE = 32


def _decode_span(
    entries: Sequence, start: int, end: int, num_banks: int, length: int
) -> Tuple[List[int], List[int], List[int], List[bool], List[int]]:
    """Decode ``entries[start:end]`` into (flats, rows, columns, writes,
    steps) lists.

    ``steps[i]`` needs the *next* entry's gap, so the last step of a
    window that does not end the trace peeks one entry past ``end``
    (the cross-chunk lookahead); the final entry of the trace steps 1.
    """
    span = entries[start:end]
    n = end - start
    if not n:
        return [], [], [], [], []
    banks = np.fromiter(
        (entry.bank_index for entry in span), dtype=np.int64, count=n
    )
    flats = (banks % num_banks).tolist()
    rows = [entry.row for entry in span]
    columns = [entry.column for entry in span]
    writes = [entry.is_write for entry in span]
    stop = end + 1 if end < length else length
    gaps = np.fromiter(
        (entries[i].gap_cycles for i in range(start + 1, stop)),
        dtype=np.int64,
        count=stop - start - 1,
    )
    steps = np.maximum(gaps, 1).tolist()
    if end == length:
        steps.append(1)
    return flats, rows, columns, writes, steps


class TraceSoA:
    """One trace fully decoded: a single window covering everything."""

    __slots__ = (
        "flats", "rows", "columns", "writes", "steps", "length",
        "chunk_start", "chunk_end",
    )

    def __init__(self, trace: CoreTrace, num_banks: int):
        entries = trace.entries
        n = self.length = len(entries)
        self.chunk_start = 0
        self.chunk_end = n
        (self.flats, self.rows, self.columns, self.writes,
         self.steps) = _decode_span(entries, 0, n, num_banks, n)

    def ensure(self, index: int) -> None:
        """The window already covers the whole trace: nothing to do."""


class StreamedTraceSoA:
    """Chunked decode: one bounded window of columns live at a time."""

    __slots__ = (
        "_entries", "_num_banks", "chunk", "length",
        "flats", "rows", "columns", "writes", "steps",
        "chunk_start", "chunk_end", "loads",
    )

    def __init__(self, trace: CoreTrace, num_banks: int, chunk: int):
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self._entries = trace.entries
        self._num_banks = num_banks
        self.chunk = chunk
        self.length = len(self._entries)
        self.loads = 0
        self._load(0)

    def _load(self, start: int) -> None:
        end = start + self.chunk
        if end > self.length:
            end = self.length
        # One branch per *chunk* (not per event) when telemetry is off.
        tel = telemetry.get()
        span = (
            tel.span("soa.chunk_fetch", start=start, end=end)
            if tel is not None else telemetry.NOOP_SPAN
        )
        with span:
            (self.flats, self.rows, self.columns, self.writes,
             self.steps) = _decode_span(
                self._entries, start, end, self._num_banks, self.length
            )
        self.chunk_start = start
        self.chunk_end = end
        self.loads += 1
        if tel is not None:
            tel.counter("soa.chunk_fetch")

    def ensure(self, index: int) -> None:
        """Make the window cover ``index`` (chunk-aligned random access)."""
        if self.chunk_start <= index < self.chunk_end:
            return
        if not 0 <= index < self.length:
            raise IndexError(
                f"trace index {index} out of range [0, {self.length})"
            )
        self._load(index - index % self.chunk)


class TraceDecodeCache:
    """Bounded LRU of full decodes, weakly tied to the trace objects.

    Keys are ``(id(trace), num_banks)``; a ``weakref.finalize`` on the
    trace evicts its decodes at collection time, so a recycled ``id``
    can never resurrect a dead trace's decode.  The entry-count length
    guard (traces are regenerated in place by some generators) stays
    as a second staleness defense.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], TraceSoA]" = (
            OrderedDict()
        )
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, trace: CoreTrace, num_banks: int
    ) -> Optional[TraceSoA]:
        key = (id(trace), num_banks)
        soa = self._entries.get(key)
        if soa is None:
            return None
        if soa.length != len(trace.entries):
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return soa

    def store(
        self, trace: CoreTrace, num_banks: int, soa: TraceSoA
    ) -> None:
        if self.capacity <= 0:
            return
        key = (id(trace), num_banks)
        self._entries[key] = soa
        self._entries.move_to_end(key)
        try:
            weakref.finalize(trace, self._forget, id(trace))
        except TypeError:  # weakref-less stand-ins stay LRU-bounded
            pass
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def _forget(self, trace_id: int) -> None:
        stale = [k for k in self._entries if k[0] == trace_id]
        for key in stale:
            del self._entries[key]

    def clear(self) -> None:
        self._entries.clear()


_cache: Optional[TraceDecodeCache] = None


def decode_cache() -> TraceDecodeCache:
    """The process-wide decode cache (rebuilt when CACHE_ENV changes)."""
    global _cache
    capacity = int(os.environ.get(CACHE_ENV, DEFAULT_CACHE_SIZE))
    if _cache is None or _cache.capacity != capacity:
        _cache = TraceDecodeCache(capacity)
    return _cache


def _chunk_size(length: int) -> Optional[int]:
    """Streaming window for a trace of ``length``; None = full decode."""
    env = os.environ.get(CHUNK_ENV)
    if env:
        try:
            chunk = int(env)
        except ValueError:
            chunk = 0
        if chunk > 0:
            return chunk
    if length >= STREAM_THRESHOLD:
        return DEFAULT_CHUNK
    return None


AnyTraceSoA = Union[TraceSoA, StreamedTraceSoA]


def decode_trace(trace: CoreTrace, num_banks: int) -> AnyTraceSoA:
    """Decode (or fetch the cached decode of) one trace."""
    length = len(trace.entries)
    chunk = _chunk_size(length)
    tel = telemetry.get()
    if chunk is not None and chunk < length:
        # Streamed windows are stateful (one live window per consumer):
        # never shared through the cache.
        return StreamedTraceSoA(trace, num_banks, chunk)
    cache = decode_cache()
    soa = cache.lookup(trace, num_banks)
    if soa is None:
        span = (
            tel.span("soa.decode", entries=length)
            if tel is not None else telemetry.NOOP_SPAN
        )
        with span:
            soa = TraceSoA(trace, num_banks)
        cache.store(trace, num_banks, soa)
    elif tel is not None:
        tel.counter("soa.decode.cache_hit")
    return soa


def decode_traces(
    traces: Sequence[CoreTrace], num_banks: int
) -> List[AnyTraceSoA]:
    return [decode_trace(trace, num_banks) for trace in traces]
