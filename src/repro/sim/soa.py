"""Structure-of-arrays trace pre-decode for the turbo backend.

The scalar issue path touches a :class:`~repro.workloads.trace.TraceEntry`
object per request — four attribute loads plus the ``TraceCore.issue``
call.  The turbo backend instead decodes each trace **once** into flat
per-field sequences:

* ``flats`` — normalized flat bank index (``bank_index % num_banks``);
* ``rows`` / ``columns`` / ``writes`` — the request fields;
* ``steps`` — the issue-cycle increment *after* issuing entry ``i``
  (``max(gap_cycles[i+1], 1)``, the ``TraceCore.issue`` recurrence),
  so the hot loop replaces the branch-and-peek with one list read.

The decode arithmetic (modulo fold, gap clamp/shift) runs vectorized
in numpy and the results are materialized as plain python lists — in
CPython, ``list[i]`` on the resulting small ints beats ndarray scalar
indexing by an order of magnitude, which is exactly the trade the
event loop wants.  Decodes are cached on the trace object keyed by
``num_banks``, so re-simulating the same materialized workload (sweep
drivers do) decodes once.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.workloads.trace import CoreTrace

_CACHE_ATTR = "_soa_cache"


class TraceSoA:
    """One trace's request stream, decoded column-wise."""

    __slots__ = ("flats", "rows", "columns", "writes", "steps", "length")

    def __init__(self, trace: CoreTrace, num_banks: int):
        entries = trace.entries
        n = self.length = len(entries)
        banks = np.fromiter(
            (entry.bank_index for entry in entries),
            dtype=np.int64,
            count=n,
        )
        self.flats: List[int] = (banks % num_banks).tolist()
        self.rows: List[int] = [entry.row for entry in entries]
        self.columns: List[int] = [entry.column for entry in entries]
        self.writes: List[bool] = [entry.is_write for entry in entries]
        gaps = np.fromiter(
            (entry.gap_cycles for entry in entries),
            dtype=np.int64,
            count=n,
        )
        # steps[i] = cycle increment after issuing entry i: the next
        # entry's gap clamped to >= 1 (the TraceCore.issue recurrence;
        # past the end the gap reads as 0, so the clamp leaves 1).
        if n:
            steps = np.empty(n, dtype=np.int64)
            np.maximum(gaps[1:], 1, out=steps[:-1])
            steps[-1] = 1
            self.steps: List[int] = steps.tolist()
        else:
            self.steps = []


def decode_trace(trace: CoreTrace, num_banks: int) -> TraceSoA:
    """Decode (or fetch the cached decode of) one trace."""
    cache = getattr(trace, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(trace, _CACHE_ATTR, cache)
    soa = cache.get(num_banks)
    if soa is None or soa.length != len(trace.entries):
        soa = cache[num_banks] = TraceSoA(trace, num_banks)
    return soa


def decode_traces(
    traces: Sequence[CoreTrace], num_banks: int
) -> List[TraceSoA]:
    return [decode_trace(trace, num_banks) for trace in traces]
