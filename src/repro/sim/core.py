"""Trace-driven core model.

Each core replays its trace with a throughput model: the next request
issues ``gap_cycles`` after the previous one, except when the core has
``mlp`` reads outstanding — then it stalls until a read returns.
Writes are posted (they never block the core).  This reproduces the
property the evaluation relies on: extra bank-blocking commands delay
read completions, which stalls cores and lowers aggregate IPC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.trace import CoreTrace, TraceEntry


@dataclass(slots=True)
class TraceCore:
    """Replay state for one core."""

    core_id: int
    trace: CoreTrace
    mlp: int = 4

    index: int = 0
    outstanding_reads: int = 0
    next_issue_cycle: int = 0
    stalled_on_mlp: bool = False
    reads_issued: int = 0
    writes_issued: int = 0

    def done_issuing(self) -> bool:
        return self.index >= len(self.trace.entries)

    def peek(self) -> TraceEntry:
        return self.trace.entries[self.index]

    def issue(self, cycle: int) -> TraceEntry:
        """Consume the next trace entry at ``cycle``."""
        entries = self.trace.entries
        index = self.index
        entry = entries[index]
        index += 1
        self.index = index
        if entry.is_write:
            self.writes_issued += 1
        else:
            self.reads_issued += 1
            self.outstanding_reads += 1
        gap = entries[index].gap_cycles if index < len(entries) else 0
        self.next_issue_cycle = cycle + (gap if gap > 1 else 1)
        return entry

    def on_read_complete(self, cycle: int) -> None:
        self.outstanding_reads -= 1
        if self.outstanding_reads < 0:
            raise RuntimeError(
                f"core {self.core_id}: read completion without outstanding read"
            )

    @property
    def total_instructions(self) -> int:
        return self.trace.total_instructions
