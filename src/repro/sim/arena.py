"""Cross-bank tracker arenas for the turbo backend.

When every bank of a fused :class:`~repro.sim.turbo.TurboSimulatedSystem`
runs the *same* stock mitigation scheme, the per-bank tracker state is
adopted into one numpy arena per scheme type spanning all banks:

* **BlockHammer** — both counting Bloom filters of every bank in a
  single ``(banks, 2, size)`` int64 tensor with one merged probe-index
  cache: the probe family depends only on ``(seed, row)``, and every
  bank shares the factory's seeds, so one hash (vectorized up front
  over the trace's distinct rows) serves all banks and both filters.
  Per-ACT updates are *deferred* within a drain epoch and flushed as a
  batch — small batches replay the exact scalar sequence through
  memoryview scalar ops, larger ones scatter through ``np.add.at``
  (bit-identical integer adds, at most one ACT per bank per batch).
* **Mithril / Graphene** — the per-bank :class:`CounterSummary` tables
  stay the exact source of truth (Space-Saving eviction breaks minimum
  ties by bucket-set iteration order, which any rewrite must replay op
  for op anyway), so the arena owns the scalar-exact per-ACT update
  path and builds a stacked ``(banks, capacity)`` count matrix on
  demand for vectorized cross-bank min / max / spread / estimate
  scans.
* **RFM RAA counters** — one flat int64 vector indexed by the drain.

Arena state is written back to the per-bank objects when the run
finishes, so post-run inspection (``is_blacklisted``, filter counters,
``raa.value``) sees exactly what the scalar backend would leave.
Byte-identity of every drained result is pinned by the golden suite,
the cross-backend battery, and the property tests in
tests/property/test_arena_properties.py.
"""

from __future__ import annotations

import os
from array import array
from heapq import heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.streaming.count_min import _MASK64, premix_seeds
from repro.streaming.vectorized import _finalize

#: Deferred-batch size at which BlockHammerArena.flush switches from
#: the scalar replay loop to the numpy scatter path.  Epoch batches in
#: the drain are nearly always size 1 (same-cycle bank events land on
#: distinct banks and most epochs carry one ACT), so the scalar path
#: is the common case and the scatter pays off only for real batches.
VEC_MIN_ENV = "REPRO_ARENA_BATCH_MIN"
DEFAULT_VEC_MIN = 4

#: Merged probe-cache bound (row ids, shared by all banks and both
#: filters — unlike the scalar per-filter caches, one entry covers
#: every probe of every bank).
_PROBE_CACHE_LIMIT = 1 << 17


class BlockHammerArena:
    """All banks' dual-CBF state in one ``(banks, 2, size)`` tensor."""

    def __init__(self, schemes: Sequence, vec_min: Optional[int] = None):
        first_cbf = schemes[0].cbf
        f0 = first_cbf._filters[0]
        size = f0.size
        hashes = f0.num_hashes
        seeds = (f0._seed, first_cbf._filters[1]._seed)
        half_epoch = first_cbf.half_epoch
        for scheme in schemes:
            cbf = scheme.cbf
            g0, g1 = cbf._filters
            if (
                g0.size != size or g1.size != size
                or g0.num_hashes != hashes or g1.num_hashes != hashes
                or (g0._seed, g1._seed) != seeds
                or cbf.half_epoch != half_epoch
            ):
                raise ValueError(
                    "BlockHammer banks disagree on CBF geometry; "
                    "cannot share one arena"
                )
        self.schemes = list(schemes)
        self.size = size
        self.num_hashes = hashes
        self.half_epoch = half_epoch
        banks = self.banks = len(self.schemes)
        self._stride = 2 * size
        self.tensor = np.zeros((banks, 2, size), dtype=np.int64)
        self._flat = self.tensor.reshape(-1)
        #: per-bank scalar view over both filters (2*size counters);
        #: memoryview indexing beats ndarray scalar indexing ~10x.
        self._mems = [
            memoryview(self.tensor[b].reshape(-1)) for b in range(banks)
        ]
        self.totals = [[0, 0] for _ in range(banks)]
        self.active = [0] * banks
        self.since_swap = [0] * banks
        for flat, scheme in enumerate(self.schemes):
            cbf = scheme.cbf
            for side, cbf_filter in enumerate(cbf._filters):
                self.tensor[flat, side] = np.frombuffer(
                    cbf_filter._counters, dtype=np.int64
                )
                self.totals[flat][side] = cbf_filter._total
            self.active[flat] = cbf._active
            self.since_swap[flat] = cbf._since_swap
        #: premixed splitmix seed products, first filter then second.
        self._probe_seeds = np.array(
            premix_seeds(seeds[0], hashes) + premix_seeds(seeds[1], hashes),
            dtype=np.uint64,
        )
        #: row -> (first-filter probes, second-filter probes): indices
        #: into a bank's flat (2*size) block, second filter offset by
        #: ``size``.  Identical for every bank (shared seeds).
        self._probe_cache: Dict[
            int, Tuple[Tuple[int, ...], Tuple[int, ...]]
        ] = {}
        if vec_min is None:
            vec_min = int(os.environ.get(VEC_MIN_ENV, DEFAULT_VEC_MIN))
        self._vec_min = vec_min
        #: epoch-batch flushes applied (scalar and vectorized alike);
        #: a plain increment, surfaced by the turbo backend's post-run
        #: telemetry counters event.
        self.flushes = 0

    # ------------------------------------------------------------------
    # probe hashing (one family for all banks)
    # ------------------------------------------------------------------

    def prefill(self, rows: Iterable[int]) -> int:
        """Hash every distinct row in one vectorized pass.

        Called at construction with the trace decode's row column, so
        the per-ACT path nearly always finds its probes with a single
        dict lookup — the scalar backend's per-filter ``_indices``
        hashing (20% of a BlockHammer pair's drain time) disappears.
        Returns how many rows were added.
        """
        cache = self._probe_cache
        fresh = sorted({row for row in rows if row not in cache})
        room = _PROBE_CACHE_LIMIT - len(cache)
        if room <= 0 or not fresh:
            return 0
        fresh = fresh[:room]
        bases = np.fromiter(
            (hash(row) & _MASK64 for row in fresh),
            dtype=np.uint64,
            count=len(fresh),
        )
        mixed = _finalize(bases[:, None] ^ self._probe_seeds[None, :])
        local = (mixed % np.uint64(self.size)).astype(np.int64)
        local[:, self.num_hashes:] += self.size
        k = self.num_hashes
        for row, probes in zip(fresh, local.tolist()):
            cache[row] = (tuple(probes[:k]), tuple(probes[k:]))
        return len(fresh)

    def _probes_for(
        self, row: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Cached (or lazily hashed) probe indices for ``row``."""
        cache = self._probe_cache
        entry = cache.get(row)
        if entry is None:
            base = hash(row) & _MASK64
            size = self.size
            k = self.num_hashes
            first: List[int] = []
            second: List[int] = []
            for i, premixed in enumerate(self._probe_seeds.tolist()):
                x = base ^ premixed
                x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
                x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
                x ^= x >> 31
                if i < k:
                    first.append(x % size)
                else:
                    second.append(x % size + size)
            entry = (tuple(first), tuple(second))
            if len(cache) < _PROBE_CACHE_LIMIT:
                cache[row] = entry
        return entry

    # ------------------------------------------------------------------
    # observe paths (exact twins of DualCountingBloomFilter)
    # ------------------------------------------------------------------

    def observe_one(self, flat: int, row: int, start: int) -> None:
        """One ACT: ``BlockHammerScheme.on_activate`` on arena state."""
        scheme = self.schemes[flat]
        scheme.stats.acts_observed += 1
        first, second = self._probes_for(row)
        mem = self._mems[flat]
        for probe in first:
            mem[probe] += 1
        for probe in second:
            mem[probe] += 1
        totals = self.totals[flat]
        totals[0] += 1
        totals[1] += 1
        since = self.since_swap[flat] + 1
        if since >= self.half_epoch:
            older = self.active[flat]
            self.tensor[flat, older] = 0
            totals[older] = 0
            self.active[flat] = 1 - older
            self.since_swap[flat] = 0
        else:
            self.since_swap[flat] = since
        probes = first if self.active[flat] == 0 else second
        estimate = mem[probes[0]]
        for probe in probes:
            value = mem[probe]
            if value < estimate:
                estimate = value
        if estimate >= scheme.n_bl:
            release_map = scheme._release
            if row not in release_map:
                scheme.blacklisted_rows_seen += 1
            release_map[row] = start + scheme.delay_cycles
            scheme.stats.throttle_events += 1

    def flush(self, batch: Sequence[Tuple[int, int, int]]) -> None:
        """Apply one epoch's deferred ``(flat, row, start)`` ACT batch.

        Contract: at most one item per bank per batch (the drain
        flushes early when a second event lands on a pending bank), so
        the scatter-all-then-settle-per-bank order below replays the
        exact scalar per-bank sequence: increments first, then the
        bank's rotation and post-rotation estimate.
        """
        self.flushes += 1
        if len(batch) < self._vec_min:
            observe_one = self.observe_one
            for flat, row, start in batch:
                observe_one(flat, row, start)
            return
        probes_for = self._probes_for
        stride = self._stride
        per_item = [
            (flat, row, start) + probes_for(row)
            for flat, row, start in batch
        ]
        idx = np.fromiter(
            (
                flat * stride + probe
                for flat, _row, _start, first, second in per_item
                for probe in first + second
            ),
            dtype=np.int64,
            count=len(per_item) * 2 * self.num_hashes,
        )
        np.add.at(self._flat, idx, 1)
        half = self.half_epoch
        tensor = self.tensor
        mems = self._mems
        active = self.active
        since_swap = self.since_swap
        totals_list = self.totals
        for flat, row, start, first, second in per_item:
            scheme = self.schemes[flat]
            scheme.stats.acts_observed += 1
            totals = totals_list[flat]
            totals[0] += 1
            totals[1] += 1
            since = since_swap[flat] + 1
            if since >= half:
                older = active[flat]
                tensor[flat, older] = 0
                totals[older] = 0
                active[flat] = 1 - older
                since_swap[flat] = 0
            else:
                since_swap[flat] = since
            mem = mems[flat]
            probes = first if active[flat] == 0 else second
            estimate = mem[probes[0]]
            for probe in probes:
                value = mem[probe]
                if value < estimate:
                    estimate = value
            if estimate >= scheme.n_bl:
                release_map = scheme._release
                if row not in release_map:
                    scheme.blacklisted_rows_seen += 1
                release_map[row] = start + scheme.delay_cycles
                scheme.stats.throttle_events += 1

    # ------------------------------------------------------------------
    # cross-bank queries and maintenance
    # ------------------------------------------------------------------

    def estimate(self, flat: int, row: int) -> int:
        """Active-filter estimate for one (bank, row)."""
        first, second = self._probes_for(row)
        probes = first if self.active[flat] == 0 else second
        mem = self._mems[flat]
        return min(mem[probe] for probe in probes)

    def estimate_many(self, rows: Sequence[int]) -> np.ndarray:
        """(banks, len(rows)) matrix of active-filter estimates."""
        rows = list(rows)
        if not rows:
            return np.zeros((self.banks, 0), dtype=np.int64)
        probe_rows = [self._probes_for(row) for row in rows]
        first_idx = np.array(
            [p[0] for p in probe_rows], dtype=np.int64
        )
        second_idx = (
            np.array([p[1] for p in probe_rows], dtype=np.int64)
            - self.size
        )
        est_first = self.tensor[:, 0, :][:, first_idx].min(axis=2)
        est_second = self.tensor[:, 1, :][:, second_idx].min(axis=2)
        active = np.array(self.active, dtype=np.int64)[:, None]
        return np.where(active == 0, est_first, est_second)

    def decrement(self, flat: int, row: int, count: int = 1) -> None:
        """``CountingBloomFilter.decrement`` applied to both filters."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        first, second = self._probes_for(row)
        mem = self._mems[flat]
        totals = self.totals[flat]
        for side, probes in enumerate((first, second)):
            for probe in probes:
                value = mem[probe] - count
                mem[probe] = value if value > 0 else 0
            totals[side] -= count
            if totals[side] < 0:
                totals[side] = 0

    def reset(self, flat: int) -> None:
        """``DualCountingBloomFilter.reset`` for one bank."""
        self.tensor[flat] = 0
        self.totals[flat] = [0, 0]
        self.active[flat] = 0
        self.since_swap[flat] = 0

    def write_back(self) -> None:
        """Copy arena state back into the per-bank filter objects."""
        for flat, scheme in enumerate(self.schemes):
            cbf = scheme.cbf
            cbf._active = self.active[flat]
            cbf._since_swap = self.since_swap[flat]
            for side, cbf_filter in enumerate(cbf._filters):
                counters = array("q")
                counters.frombytes(self.tensor[flat, side].tobytes())
                cbf_filter._counters = counters
                cbf_filter._total = self.totals[flat][side]


class CbsArena:
    """Stacked view over all banks' Space-Saving (CbS) tables.

    The python :class:`CounterSummary` objects stay authoritative —
    off-table replacement evicts ``next(iter(bucket))``, an iteration
    order any faithful rewrite must replay op for op — so this arena
    owns the scalar-exact per-ACT update code (hoisted from the drain)
    and adds cross-bank numpy scans over an on-demand
    ``(banks, capacity)`` snapshot.
    """

    def __init__(self, schemes: Sequence, summaries: Sequence, kind: str):
        capacity = summaries[0].capacity
        for summary in summaries:
            if summary.capacity != capacity:
                raise ValueError(
                    "CbS banks disagree on table capacity; "
                    "cannot share one arena"
                )
        self.kind = kind
        self.schemes = list(schemes)
        self.summaries = list(summaries)
        self.banks = len(self.summaries)
        self.capacity = capacity
        self._rows_buf = np.full((self.banks, capacity), -1, np.int64)
        self._counts_buf = np.full((self.banks, capacity), -1, np.int64)
        #: stacked-snapshot rebuilds (see :attr:`BlockHammerArena.flushes`).
        self.syncs = 0

    @classmethod
    def for_mithril(cls, schemes: Sequence) -> "CbsArena":
        return cls(
            schemes, [s.table._summary for s in schemes], kind="mithril"
        )

    @classmethod
    def for_graphene(cls, schemes: Sequence) -> "CbsArena":
        return cls(schemes, [s.table for s in schemes], kind="graphene")

    # ------------------------------------------------------------------
    # per-ACT paths (exact scheme twins, shared with the fused drain)
    # ------------------------------------------------------------------

    def mithril_observe(self, flat: int, row: int) -> None:
        """``MithrilScheme.on_activate``: CbS update + spread check,
        with the on-table hit (+ ``_move``) and fresh-heap-top
        ``max_entry`` fast paths unrolled."""
        scheme = self.schemes[flat]
        scheme.stats.acts_observed += 1
        table = scheme.table
        summary = self.summaries[flat]
        counts = summary._counts
        current = counts.get(row)
        if current is None:
            summary._observe_one(row)
        else:
            summary._total_observed += 1
            new = current + 1
            buckets = summary._buckets
            bucket = buckets[current]
            bucket.discard(row)
            old_emptied = not bucket
            if old_emptied:
                del buckets[current]
            counts[row] = new
            bucket = buckets.get(new)
            if bucket is None:
                buckets[new] = {row}
            else:
                bucket.add(row)
            heappush(summary._max_heap, (-new, row))
            if old_emptied and current == summary._min_count:
                # new > current: advance upward (inline _advance_min;
                # buckets is non-empty, we just added to it)
                probe = summary._min_count
                while probe not in buckets:
                    probe += 1
                summary._min_count = probe
        max_heap = summary._max_heap
        if max_heap:
            neg_count, element = max_heap[0]
            if counts.get(element) == -neg_count:
                max_count = -neg_count
            else:
                top = summary.max_entry()
                max_count = 0 if top is None else top[1]
        else:
            max_count = 0
        if len(counts) < summary.capacity:
            min_count = 0
        else:
            min_count = summary._min_count
        spread = max_count - min_count
        if spread > table._max_spread_seen:
            table._max_spread_seen = spread
        window = table._wrap_window
        if window is not None and spread >= window:
            raise OverflowError(
                f"counter spread {spread} exceeds wrapping window "
                f"{window}; counter_bits={table.counter_bits} too small"
            )

    def graphene_observe(
        self, flat: int, row: int, start: int
    ) -> Optional[List[int]]:
        """``GrapheneScheme.on_activate`` (+ ``_maybe_reset``); returns
        the ARR victim rows, or None when no refresh triggers."""
        scheme = self.schemes[flat]
        scheme.stats.acts_observed += 1
        if start >= scheme._next_reset:
            scheme.table.reset()
            scheme._next_trigger.clear()
            scheme.resets += 1
            while scheme._next_reset <= start:
                scheme._next_reset += scheme.reset_interval_cycles
        table = self.summaries[flat]
        counts = table._counts
        current = counts.get(row)
        if current is None:
            table._observe_one(row)
            found = counts.get(row)
            if found is None:  # defensive; observe always tables the row
                if len(counts) < table.capacity:
                    found = 0
                else:
                    found = table._min_count
        else:
            # inline _observe_one on-table hit + _move
            table._total_observed += 1
            found = current + 1
            buckets = table._buckets
            bucket = buckets[current]
            bucket.discard(row)
            old_emptied = not bucket
            if old_emptied:
                del buckets[current]
            counts[row] = found
            bucket = buckets.get(found)
            if bucket is None:
                buckets[found] = {row}
            else:
                bucket.add(row)
            heappush(table._max_heap, (-found, row))
            if old_emptied and current == table._min_count:
                probe = table._min_count
                while probe not in buckets:
                    probe += 1
                table._min_count = probe
        trigger = scheme._next_trigger.get(row, scheme.threshold)
        if found < trigger:
            return None
        scheme._next_trigger[row] = trigger + scheme.threshold
        rows_per_bank = scheme.rows_per_bank
        victims = [
            v for v in (row - 1, row + 1) if 0 <= v < rows_per_bank
        ]
        scheme.stats.preventive_refresh_rows += len(victims)
        return victims or None

    def observe_epoch(
        self, batch: Sequence[Tuple[int, int, int]]
    ) -> List[Tuple[int, Optional[List[int]]]]:
        """Apply one ``(flat, row, start)`` batch in event order.

        CbS updates cannot defer past their own event (ARR / RFM may
        block the bank mid-event), so the drain calls the per-ACT
        methods directly; this batch form serves the property tests
        and analysis sweeps.  Returns ``(flat, victims)`` per item
        (victims always None for Mithril).
        """
        results: List[Tuple[int, Optional[List[int]]]] = []
        if self.kind == "mithril":
            for flat, row, _start in batch:
                self.mithril_observe(flat, row)
                results.append((flat, None))
        else:
            for flat, row, start in batch:
                results.append(
                    (flat, self.graphene_observe(flat, row, start))
                )
        return results

    # ------------------------------------------------------------------
    # stacked snapshot + vectorized scans
    # ------------------------------------------------------------------

    def sync(self) -> Tuple[np.ndarray, np.ndarray]:
        """Rebuild the stacked (rows, counts) snapshot matrices.

        Slots are filled in table insertion order; unused slots hold
        -1 (a live CbS count is always >= 1).  Rebuilt on every call:
        RFM demotes mutate the summaries behind the arena's back, so a
        version-stamped cache would go stale silently.
        """
        self.syncs += 1
        rows_buf = self._rows_buf
        counts_buf = self._counts_buf
        rows_buf.fill(-1)
        counts_buf.fill(-1)
        for flat, summary in enumerate(self.summaries):
            counts = summary._counts
            if counts:
                n = len(counts)
                rows_buf[flat, :n] = list(counts.keys())
                counts_buf[flat, :n] = list(counts.values())
        return rows_buf, counts_buf

    def min_counts(self) -> np.ndarray:
        """Per-bank table minimum (0 while not full), one masked scan."""
        _rows, counts = self.sync()
        filled = counts >= 0
        n_filled = filled.sum(axis=1)
        masked = np.where(filled, counts, np.iinfo(np.int64).max)
        mins = masked.min(axis=1)
        return np.where(n_filled >= self.capacity, mins, 0)

    def max_counts(self) -> np.ndarray:
        """Per-bank table maximum (0 for an empty table)."""
        _rows, counts = self.sync()
        return np.maximum(counts.max(axis=1), 0)

    def spreads(self) -> np.ndarray:
        """Per-bank max - min: the adaptive-refresh signal, every bank
        in one vectorized pass."""
        _rows, counts = self.sync()
        filled = counts >= 0
        n_filled = filled.sum(axis=1)
        masked = np.where(filled, counts, np.iinfo(np.int64).max)
        mins = np.where(
            n_filled >= self.capacity, masked.min(axis=1), 0
        )
        maxs = np.maximum(counts.max(axis=1), 0)
        return maxs - mins

    def estimate_many(self, rows: Sequence[int]) -> np.ndarray:
        """(banks, len(rows)) CbS estimates: tabled count, else the
        bank's minimum."""
        rows = list(rows)
        mins = self.min_counts()
        result = np.empty((self.banks, len(rows)), dtype=np.int64)
        for flat, summary in enumerate(self.summaries):
            counts = summary._counts
            floor = int(mins[flat])
            result[flat] = [counts.get(row, floor) for row in rows]
        return result

    def write_back(self) -> None:
        """No-op: the per-bank summaries were authoritative all along."""


class RaaArena:
    """Every bank's RFM RAA counter as one flat int64 vector."""

    def __init__(self, rfm_logics: Sequence):
        self.logics = list(rfm_logics)
        self.values = np.zeros(len(self.logics), dtype=np.int64)
        for flat, logic in enumerate(self.logics):
            self.values[flat] = logic.raa.value
        #: scalar view for the drain's per-ACT increment.
        self.mem = memoryview(self.values)

    def write_back(self) -> None:
        for flat, logic in enumerate(self.logics):
            logic.raa.value = int(self.values[flat])


class TrackerArenas:
    """The per-system bundle of arenas the fused drain consults."""

    def __init__(
        self,
        blockhammer: Optional[BlockHammerArena] = None,
        cbs: Optional[CbsArena] = None,
        raa: Optional[RaaArena] = None,
    ):
        self.blockhammer = blockhammer
        self.cbs = cbs
        self.raa = raa

    def write_back(self) -> None:
        if self.blockhammer is not None:
            self.blockhammer.write_back()
        if self.cbs is not None:
            self.cbs.write_back()
        if self.raa is not None:
            self.raa.write_back()

    def counters(self) -> Dict[str, int]:
        """Cheap always-on activity counts for the telemetry event."""
        out: Dict[str, int] = {}
        if self.blockhammer is not None:
            out["arena.bh_flushes"] = self.blockhammer.flushes
        if self.cbs is not None:
            out["arena.cbs_syncs"] = self.cbs.syncs
        return out
