"""Scheme-internals probe layer: per-epoch time-series, exact across backends.

Opt-in via ``REPRO_PROBES=<dir>`` (or the CLI ``--probes`` flags): each
simulation run appends deterministic newline-JSON records to its own
``probes-<pid>-<n>.jsonl`` under that directory, sampling the
mitigation scheme's internal state every ``REPRO_PROBE_INTERVAL``
cycles (default 20000):

* per-bank ACT / refresh- / ARR- / RFM-stall counters from the sim core;
* RFM issuance cadence and the RAA counter trajectory;
* Mithril / Graphene CbS occupancy, min/max counters, cumulative
  Space-Saving spillover (:attr:`CounterSummary.evictions`);
* BlockHammer blacklist occupancy, throttle-latency histogram
  (power-of-two buckets), and dual-CBF saturation;
* estimated-vs-true hot-row error: the probe layer keeps exact per-bank
  ACT counts and compares the tracker's estimate for the hottest row.

Exactness contract: the scalar and turbo backends process the identical
event stream, and both sample at the *same* logical point — after every
event of cycles ``< c`` has been applied and before any event of the
triggering cycle ``c`` — so with probes enabled the two backends emit
byte-identical record streams (gated by
tests/integration/test_probe_parity.py).  Records therefore contain no
wall-clock times, pids, or backend identifiers; the canonical encoding
is ``json.dumps(record, sort_keys=True, separators=(",", ":"))``.

Zero-cost-off: with ``REPRO_PROBES`` unset the scalar backend runs its
original tight loop unchanged and the turbo drains pay one comparison
per distinct event cycle against ``inf``.

Each stream ends with a seal record carrying the record count and the
sha256 over all preceding lines; :func:`read_probe_stream` verifies it,
so a crashed run is detectable (unsealed) without corrupting readers.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.mithril import MithrilScheme
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.sim.metrics import POW2_BUCKETS, pow2_bucket

PROBES_ENV = "REPRO_PROBES"
INTERVAL_ENV = "REPRO_PROBE_INTERVAL"
DEFAULT_INTERVAL = 20_000
SCHEMA_VERSION = 1
PROBE_GLOB = "probes-*.jsonl"

#: per-process stream counter: one simulation run = one stream file.
_FILE_SEQ = itertools.count()


def probes_dir() -> Optional[Path]:
    """The configured probe directory, or None when probing is off."""
    value = os.environ.get(PROBES_ENV, "").strip()
    return Path(value) if value else None


def enabled() -> bool:
    return probes_dir() is not None


def probe_interval() -> int:
    """Sampling interval in cycles (``REPRO_PROBE_INTERVAL`` override)."""
    raw = os.environ.get(INTERVAL_ENV, "").strip()
    if not raw:
        return DEFAULT_INTERVAL
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_INTERVAL


def attach(system) -> Optional["ProbeRun"]:
    """Create a probe stream for ``system``; None when probing is off.

    Called once from ``SimulatedSystem.__init__`` (both backends share
    it through ``super().__init__``).  I/O failures degrade to probing
    disabled rather than perturbing the simulation.
    """
    directory = probes_dir()
    if directory is None:
        return None
    interval = probe_interval()
    if interval <= 0:
        return None
    try:
        return ProbeRun(system, directory, interval)
    except OSError:
        return None


class ProbeRun:
    """One simulation run's sealed probe stream."""

    def __init__(self, system, directory: Path, interval: int):
        directory.mkdir(parents=True, exist_ok=True)
        self.path = (
            directory
            / f"probes-{os.getpid()}-{next(_FILE_SEQ):06d}.jsonl"
        )
        self.interval = interval
        #: first cycle at (or past) which the next sample fires.
        self.next_cycle = interval
        self.samples = 0
        self._records = 0
        self._sha = hashlib.sha256()
        self._finalized = False
        banks = system.banks
        #: exact per-bank row -> ACT count, fed by the serve-path wraps
        #: (scalar + turbo generic) or the fused drain's explicit hook.
        self.act_counts: List[Dict[int, int]] = [{} for _ in banks]
        self._fh = self.path.open("w")
        for flat, controller in enumerate(banks):
            _wrap_act_counter(controller, self.act_counts[flat])
        scheme = banks[0].scheme if banks else None
        try:
            table_entries = int(scheme.table_entries()) if scheme else 0
        except Exception:
            table_entries = 0
        self._write({
            "k": "header",
            "schema": SCHEMA_VERSION,
            "interval": interval,
            "banks": len(banks),
            "cores": len(system.cores),
            "scheme": scheme.name if scheme is not None else "?",
            "table_entries": table_entries,
        })

    # ------------------------------------------------------------------
    # record plumbing
    # ------------------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
        except OSError:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
            return
        self._sha.update((line + "\n").encode("utf-8"))
        self._records += 1

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample(self, system, cycle: int) -> None:
        """Record one per-epoch snapshot and advance the schedule.

        Both backends call this at the same logical point: all events
        of cycles ``< cycle`` applied, none of ``cycle`` itself.
        """
        self._write(self._sample_record(system, cycle))
        self.samples += 1
        next_cycle = self.next_cycle
        interval = self.interval
        while next_cycle <= cycle:
            next_cycle += interval
        self.next_cycle = next_cycle

    def _sample_record(self, system, cycle: int) -> Dict[str, Any]:
        banks = system.banks
        arenas = getattr(system, "_arenas", None)
        record: Dict[str, Any] = {
            "k": "sample",
            "i": self.samples,
            "cycle": cycle,
            "acts": [c.bank.act_count for c in banks],
            "refresh_stall": [c.refresh_stall_cycles for c in banks],
            "arr_stall": [c.arr_stall_cycles for c in banks],
            "rfm_stall": [c.rfm_stall_cycles for c in banks],
        }
        if banks and banks[0].rfm_logic is not None:
            record.update(_rfm_block(banks, arenas))
        scheme = banks[0].scheme if banks else None
        if isinstance(scheme, MithrilScheme):
            record["mithril"] = _mithril_block(banks)
        elif isinstance(scheme, GrapheneScheme):
            record["graphene"] = _graphene_block(banks)
        elif isinstance(scheme, BlockHammerScheme):
            record["blockhammer"] = _blockhammer_block(banks, arenas, cycle)
        record["top"] = _truth_block(banks, arenas, self.act_counts)
        return record

    # ------------------------------------------------------------------
    # finalize + seal
    # ------------------------------------------------------------------

    def finalize(self, system, result) -> None:
        """Write the final-state record and the stream seal, then close."""
        if self._finalized:
            return
        self._finalized = True
        self._write({
            "k": "final",
            "cycle": result.total_cycles,
            "samples": self.samples,
            "acts": result.acts,
            "rfm_commands": result.rfm_commands,
            "rfm_elided": result.rfm_elided,
            "rfms_skipped": result.rfms_skipped,
            "arr_requests": result.arr_requests,
            "preventive_refresh_rows": result.preventive_refresh_rows,
            "throttle_events": result.throttle_events,
            "flips": result.flips,
        })
        if self._fh is None:
            return
        seal = {
            "k": "seal",
            "records": self._records,
            "sha256": self._sha.hexdigest(),
        }
        try:
            self._fh.write(
                json.dumps(seal, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._fh.close()
        except OSError:
            pass
        self._fh = None
        try:  # lazy import: telemetry is optional and independent
            from repro import telemetry

            sink = telemetry.get()
            if sink is not None:
                sink.event(
                    "probes.sealed",
                    path=self.path.name,
                    records=self._records,
                    samples=self.samples,
                )
        except Exception:
            pass


# ----------------------------------------------------------------------
# per-scheme state readers (arena-aware; values identical either path)
# ----------------------------------------------------------------------


def _rfm_block(banks, arenas) -> Dict[str, List[int]]:
    raa_arena = arenas.raa if arenas is not None else None
    raa: List[int] = []
    issued: List[int] = []
    elided: List[int] = []
    mrr: List[int] = []
    for flat, controller in enumerate(banks):
        logic = controller.rfm_logic
        if logic is None:
            raa.append(0)
            issued.append(0)
            elided.append(0)
            mrr.append(0)
            continue
        if raa_arena is not None:
            raa.append(int(raa_arena.mem[flat]))
        else:
            raa.append(logic.raa.value)
        issued.append(logic.rfm_issued)
        elided.append(logic.rfm_elided)
        mrr.append(logic.mrr_reads)
    return {
        "raa": raa,
        "rfm_issued": issued,
        "rfm_elided": elided,
        "mrr_reads": mrr,
    }


def _mithril_block(banks) -> Dict[str, List[int]]:
    entries: List[int] = []
    mins: List[int] = []
    maxs: List[int] = []
    spread_seen: List[int] = []
    observed: List[int] = []
    evictions: List[int] = []
    for controller in banks:
        scheme = controller.scheme
        if not isinstance(scheme, MithrilScheme):
            for out in (entries, mins, maxs, spread_seen, observed,
                        evictions):
                out.append(0)
            continue
        table = scheme.table
        summary = table._summary
        entries.append(len(summary))
        mins.append(table.min_count())
        maxs.append(table.max_count())
        spread_seen.append(table.max_spread_seen)
        observed.append(summary.total_observed)
        evictions.append(summary.evictions)
    return {
        "entries": entries,
        "min": mins,
        "max": maxs,
        "spread_seen": spread_seen,
        "observed": observed,
        "evictions": evictions,
    }


def _graphene_block(banks) -> Dict[str, List[int]]:
    entries: List[int] = []
    mins: List[int] = []
    maxs: List[int] = []
    resets: List[int] = []
    observed: List[int] = []
    evictions: List[int] = []
    for controller in banks:
        scheme = controller.scheme
        if not isinstance(scheme, GrapheneScheme):
            for out in (entries, mins, maxs, resets, observed, evictions):
                out.append(0)
            continue
        table = scheme.table
        entries.append(len(table))
        mins.append(table.min_count)
        top = table.max_entry()
        maxs.append(0 if top is None else top[1])
        resets.append(scheme.resets)
        observed.append(table.total_observed)
        evictions.append(table.evictions)
    return {
        "entries": entries,
        "min": mins,
        "max": maxs,
        "resets": resets,
        "observed": observed,
        "evictions": evictions,
    }


def _blockhammer_block(banks, arenas, cycle: int) -> Dict[str, Any]:
    bh_arena = arenas.blockhammer if arenas is not None else None
    np = None
    if bh_arena is not None:
        import numpy as np  # arena present implies numpy present
    pending: List[int] = []
    backlog: List[int] = []
    throttles: List[int] = []
    blacklisted: List[int] = []
    totals: List[List[int]] = []
    active: List[int] = []
    since: List[int] = []
    nonzero: List[List[int]] = []
    lat_hist = [0] * POW2_BUCKETS
    for flat, controller in enumerate(banks):
        scheme = controller.scheme
        if not isinstance(scheme, BlockHammerScheme):
            pending.append(0)
            backlog.append(0)
            throttles.append(0)
            blacklisted.append(0)
            totals.append([0, 0])
            active.append(0)
            since.append(0)
            nonzero.append([0, 0])
            continue
        release = scheme._release
        pending.append(len(release))
        waiting = 0
        for value in release.values():
            latency = value - cycle
            if latency > 0:
                waiting += 1
                lat_hist[pow2_bucket(latency)] += 1
        backlog.append(waiting)
        throttles.append(scheme.stats.throttle_events)
        blacklisted.append(scheme.blacklisted_rows_seen)
        if bh_arena is not None:
            totals.append([int(v) for v in bh_arena.totals[flat]])
            active.append(int(bh_arena.active[flat]))
            since.append(int(bh_arena.since_swap[flat]))
            tensor = bh_arena.tensor
            nonzero.append([
                int(np.count_nonzero(tensor[flat, 0])),
                int(np.count_nonzero(tensor[flat, 1])),
            ])
        else:
            cbf = scheme.cbf
            totals.append([f.total_observed for f in cbf._filters])
            active.append(cbf._active)
            since.append(cbf._since_swap)
            nonzero.append(cbf.nonzero_counters())
    return {
        "pending": pending,
        "backlog": backlog,
        "lat_hist": lat_hist,
        "throttle_events": throttles,
        "blacklisted_seen": blacklisted,
        "cbf_total": totals,
        "cbf_active": active,
        "cbf_since_swap": since,
        "cbf_nonzero": nonzero,
    }


def _truth_block(banks, arenas, act_counts) -> Dict[str, List[int]]:
    """Hottest true row per bank vs the tracker's estimate for it."""
    bh_arena = arenas.blockhammer if arenas is not None else None
    rows: List[int] = []
    trues: List[int] = []
    ests: List[int] = []
    for flat, controller in enumerate(banks):
        counts = act_counts[flat]
        if not counts:
            rows.append(-1)
            trues.append(0)
            ests.append(0)
            continue
        row = max(counts, key=lambda r: (counts[r], -r))
        rows.append(row)
        trues.append(counts[row])
        scheme = controller.scheme
        if isinstance(scheme, (MithrilScheme, GrapheneScheme)):
            ests.append(int(scheme.table.estimate(row)))
        elif isinstance(scheme, BlockHammerScheme):
            if bh_arena is not None:
                ests.append(int(bh_arena.estimate(flat, row)))
            else:
                ests.append(int(scheme.cbf.estimate(row)))
        else:
            ests.append(0)
    return {"row": rows, "true": trues, "est": ests}


def _wrap_act_counter(controller, counts: Dict[int, int]) -> None:
    """Count every served ACT through the controller's serve path.

    Installed as an instance attribute (the :mod:`repro.sim.tracing`
    pattern), so the turbo fusability snapshot — which type-checks the
    controller — is unaffected.  The fused drain never calls
    ``_on_activated``; it feeds :attr:`ProbeRun.act_counts` directly.
    """
    inner = controller._on_activated

    def _counted(row, result, _inner=inner, _counts=counts):
        _counts[row] = _counts.get(row, 0) + 1
        _inner(row, result)

    controller._on_activated = _counted


# ----------------------------------------------------------------------
# stream reading (report + parity-gate side)
# ----------------------------------------------------------------------


def probe_files(directory) -> List[Path]:
    """The probe stream files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(PROBE_GLOB))


def read_probe_stream(path) -> Tuple[List[Dict[str, Any]], bool]:
    """All records of one stream plus whether its seal verified.

    A torn trailing line (crash mid-append) is dropped; a missing or
    mismatching seal returns ``sealed=False`` with the records intact.
    """
    records: List[Dict[str, Any]] = []
    sealed = False
    sha = hashlib.sha256()
    try:
        text = Path(path).read_text()
    except OSError:
        return records, sealed
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            break
        if not isinstance(record, dict):
            break
        if record.get("k") == "seal":
            sealed = (
                record.get("records") == len(records)
                and record.get("sha256") == sha.hexdigest()
            )
            break
        sha.update((line + "\n").encode("utf-8"))
        records.append(record)
    return records, sealed
