"""Simulation results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.types import EnergyCounts


@dataclass
class SimulationResult:
    """Everything a run produces; the benches derive their rows from this."""

    scheme_name: str
    total_cycles: int
    per_core_instructions: List[int]
    per_core_finish_cycles: List[int]
    energy: EnergyCounts
    flips: int = 0
    max_disturbance: float = 0.0
    acts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    rfm_commands: int = 0
    rfm_elided: int = 0
    rfms_skipped: int = 0
    arr_requests: int = 0
    preventive_refresh_rows: int = 0
    arr_stall_cycles: int = 0
    rfm_stall_cycles: int = 0
    refresh_stall_cycles: int = 0
    throttle_events: int = 0

    @property
    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs (the paper's performance metric)."""
        total = 0.0
        for instructions, finish in zip(
            self.per_core_instructions, self.per_core_finish_cycles
        ):
            if finish > 0:
                total += instructions / finish
        return total

    @property
    def row_hit_rate(self) -> float:
        accesses = self.row_hits + self.row_misses
        return self.row_hits / accesses if accesses else 0.0

    def relative_performance(self, baseline: "SimulationResult") -> float:
        """Aggregate IPC normalized to an unprotected baseline (in %)."""
        base = baseline.aggregate_ipc
        if base == 0:
            return 0.0
        return 100.0 * self.aggregate_ipc / base

    def summary(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme_name,
            "cycles": self.total_cycles,
            "aggregate_ipc": round(self.aggregate_ipc, 4),
            "acts": self.acts,
            "row_hit_rate": round(self.row_hit_rate, 4),
            "rfm_commands": self.rfm_commands,
            "rfm_elided": self.rfm_elided,
            "rfms_skipped": self.rfms_skipped,
            "arr_requests": self.arr_requests,
            "preventive_refresh_rows": self.preventive_refresh_rows,
            "flips": self.flips,
            "max_disturbance": self.max_disturbance,
        }
