"""Simulation results, derived metrics, and histogram utilities.

The histogram/percentile helpers at the bottom back the probe layer
(:mod:`repro.sim.probes`) and its report renderer: they are exact,
deterministic, and pure python, so the no-numpy lane gets identical
values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import EnergyCounts


@dataclass
class SimulationResult:
    """Everything a run produces; the benches derive their rows from this."""

    scheme_name: str
    total_cycles: int
    per_core_instructions: List[int]
    per_core_finish_cycles: List[int]
    energy: EnergyCounts
    flips: int = 0
    max_disturbance: float = 0.0
    acts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    rfm_commands: int = 0
    rfm_elided: int = 0
    rfms_skipped: int = 0
    arr_requests: int = 0
    preventive_refresh_rows: int = 0
    arr_stall_cycles: int = 0
    rfm_stall_cycles: int = 0
    refresh_stall_cycles: int = 0
    throttle_events: int = 0

    @property
    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs (the paper's performance metric)."""
        total = 0.0
        for instructions, finish in zip(
            self.per_core_instructions, self.per_core_finish_cycles
        ):
            if finish > 0:
                total += instructions / finish
        return total

    @property
    def row_hit_rate(self) -> float:
        accesses = self.row_hits + self.row_misses
        return self.row_hits / accesses if accesses else 0.0

    def relative_performance(self, baseline: "SimulationResult") -> float:
        """Aggregate IPC normalized to an unprotected baseline (in %)."""
        base = baseline.aggregate_ipc
        if base == 0:
            return 0.0
        return 100.0 * self.aggregate_ipc / base

    def summary(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme_name,
            "cycles": self.total_cycles,
            "aggregate_ipc": round(self.aggregate_ipc, 4),
            "acts": self.acts,
            "row_hit_rate": round(self.row_hit_rate, 4),
            "rfm_commands": self.rfm_commands,
            "rfm_elided": self.rfm_elided,
            "rfms_skipped": self.rfms_skipped,
            "arr_requests": self.arr_requests,
            "preventive_refresh_rows": self.preventive_refresh_rows,
            "flips": self.flips,
            "max_disturbance": self.max_disturbance,
        }


# ----------------------------------------------------------------------
# histogram / percentile utilities (probe layer + reports)
# ----------------------------------------------------------------------

#: default bucket count for the power-of-two histograms below; bucket 0
#: holds value 0, bucket i holds [2**(i-1), 2**i), the last bucket is
#: open-ended.
POW2_BUCKETS = 20


def pow2_bucket(value: int, buckets: int = POW2_BUCKETS) -> int:
    """Bucket index of ``value`` in a power-of-two histogram."""
    if value <= 0:
        return 0
    index = int(value).bit_length()
    return index if index < buckets else buckets - 1


def pow2_bucket_bounds(index: int, buckets: int = POW2_BUCKETS) -> Tuple[int, Optional[int]]:
    """``[lower, upper)`` of a bucket; the last bucket has ``upper=None``."""
    if index <= 0:
        return (0, 1)
    if index >= buckets - 1:
        return (1 << (buckets - 2), None)
    return (1 << (index - 1), 1 << index)


def pow2_histogram(values: Sequence[int], buckets: int = POW2_BUCKETS) -> List[int]:
    """Per-bucket counts of ``values`` (non-negative ints)."""
    counts = [0] * buckets
    for value in values:
        counts[pow2_bucket(value, buckets)] += 1
    return counts


def merge_counts(histograms: Sequence[Sequence[int]]) -> List[int]:
    """Element-wise sum of equal-length bucket-count vectors."""
    histograms = [h for h in histograms if h]
    if not histograms:
        return []
    merged = [0] * max(len(h) for h in histograms)
    for counts in histograms:
        for index, count in enumerate(counts):
            merged[index] += count
    return merged


def exact_percentile(values: Sequence[float], q: float):
    """Nearest-rank percentile: the smallest value with at least
    ``ceil(q/100 * n)`` values at or below it.  ``q`` in (0, 100]."""
    if not values:
        return None
    if not 0 < q <= 100:
        raise ValueError(f"q must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


def percentile_from_counts(counts: Sequence[int], q: float) -> Optional[int]:
    """Nearest-rank percentile over bucketed data: the index of the
    bucket containing the rank-th sample.  ``None`` for empty data."""
    total = sum(counts)
    if total == 0:
        return None
    if not 0 < q <= 100:
        raise ValueError(f"q must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * total)
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank:
            return index
    return len(counts) - 1


def percentile_summary(values: Sequence[float]) -> Dict[str, float]:
    """count/min/max/mean plus the p50/p95/p99 panel the reports use."""
    values = list(values)
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "p50": exact_percentile(values, 50),
        "p95": exact_percentile(values, 95),
        "p99": exact_percentile(values, 99),
    }
