"""The turbo simulation backend: SoA decode + epoch-batched fused drain.

:class:`TurboSimulatedSystem` runs the exact same co-simulation as
:class:`~repro.sim.system.SimulatedSystem` — the golden suite pins
every scheme × workload result byte for byte across both backends —
but restructures the event loop for CPython throughput:

* the issue path reads the structure-of-arrays trace decode
  (:mod:`repro.sim.soa`) instead of per-entry objects, folds the
  ``TraceCore.issue`` bookkeeping inline, and recycles served
  :class:`~repro.types.MemoryRequest` objects through a pool;
* ``run`` drains all heap events sharing a cycle in one pass (an
  *epoch*), dispatching through a fused fast path that inlines the
  scalar backend's per-event call chain —
  ``_bank_event → BankController.serve → BankTimingModel.serve_access
  → _on_activated → HammerModel.on_activate`` — into straight-line
  code with no ``BankServiceResult`` allocation, plus per-flat context
  tuples and a cached refresh-tick horizon in place of repeated
  attribute/property loads;
* the per-ACT tracker updates of the *stock* schemes are specialized:
  ``NoProtection``, Mithril/Mithril+ (CbS update + spread check) and
  BlockHammer (dual-CBF observe-and-estimate + blacklist + throttle
  probes) run inline, eliminating four to seven call frames per ACT
  while leaving the underlying data-structure operations
  (``CounterSummary._observe_one``, ``CountingBloomFilter._indices``,
  rotation) as the single source of truth.  Any other scheme — and
  ARR/RFM application, auto-refresh, FR-FCFS scheduling — stays a
  real call, so semantics are untouched.

The fused path is only taken when every cooperating component is the
stock implementation (checked by construction-time ``type(...) is``
snapshots — a subclassed controller, timing model, hammer model, page
policy or scheduler drops the whole system back to the scalar
handlers inside the same epoch-batched drain, and a subclassed or
instance-patched scheme merely drops its own inline specialization).
Unlike the scalar backend, fusability is snapshotted at construction:
monkeypatching a component *after* building the system is not honored
— build the system after patching, or use the scalar backend (every
unit test does; turbo correctness is owned by the golden-equivalence
suite and the cross-backend property tests).

Same-cycle bank events land on distinct banks (a bank schedules at
most one serve per cycle), so per-sketch batches within an epoch stay
tiny (~1.02 events measured); what *does* pay cross-bank is shared
state, not shared batches.  When every bank runs the same stock
scheme, the tracker arenas (:mod:`repro.sim.arena`) adopt all banks'
tracker state at construction — one ``(banks, 2, size)`` dual-CBF
tensor with a merged pre-hashed probe cache for BlockHammer (per-ACT
updates defer to the epoch boundary and flush as a batch), the exact
per-bank CbS summaries plus stacked count matrices for
Mithril/Graphene, one flat RAA vector for RFM — and the drain
dispatches per-ACT work through them.  Mixed or non-stock
configurations keep the per-bank inline handlers above.  Arena state
is written back to the per-bank objects when ``run`` returns, so
post-run inspection is backend-invariant — measured honestly in
docs/ENGINE.md.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.mithril import MithrilScheme, MithrilTable
from repro.dram.bank import BankTimingModel, FawTracker
from repro.dram.hammer import FlipEvent, HammerModel
from repro.dram.refresh import AutoRefreshEngine
from repro.mc.controller import BankController
from repro.mc.rfm import RaaCounter, RfmIssueLogic
from repro.mc.pagepolicy import (
    ClosedPagePolicy,
    MinimalistOpenPolicy,
    OpenPagePolicy,
)
from repro.mc.scheduler import BlissScheduler, FrFcfsScheduler
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.protection import NoProtection
from repro.sim.arena import (
    BlockHammerArena,
    CbsArena,
    RaaArena,
    TrackerArenas,
)
from repro.sim.metrics import SimulationResult
from repro.sim.soa import decode_traces
from repro.sim.system import (
    _BANK,
    _COMPLETE,
    _CYCLE_SHIFT,
    _IDENT_BITS,
    _IDENT_MASK,
    _ISSUE,
    _LOW_BITS,
    _SEQ_BITS,
    _SEQ_LIMIT,
    SimulatedSystem,
)
from repro.streaming.cbs import CounterSummary
from repro.streaming.counting_bloom import (
    CountingBloomFilter,
    DualCountingBloomFilter,
)
from repro.types import MemoryRequest, RowAddress

#: Page-policy encodings for the fused path.
_POLICY_OPEN, _POLICY_CLOSED, _POLICY_MINIMALIST = 0, 1, 2

#: Per-ACT tracker-update specializations (see _snapshot_fusability).
_ACT_GENERIC, _ACT_NONE, _ACT_MITHRIL, _ACT_BLOCKHAMMER, _ACT_GRAPHENE = (
    0, 1, 2, 3, 4
)

#: Arena dispatch codes (see _install_arenas): every bank runs the
#: same stock scheme and the per-ACT path goes through the cross-bank
#: arena instead of the per-bank inline block.
_ACT_MITHRIL_ARENA, _ACT_BLOCKHAMMER_ARENA, _ACT_GRAPHENE_ARENA = 5, 6, 7

#: Throttle-release specializations.
_THROTTLE_NEVER, _THROTTLE_BLOCKHAMMER, _THROTTLE_GENERIC = 0, 1, 2


def _unpatched(obj, base_class, *methods) -> bool:
    """``obj`` is exactly ``base_class`` with no method overrides."""
    if type(obj) is not base_class:
        return False
    for method in methods:
        if method in obj.__dict__:
            return False
    return True


class TurboSimulatedSystem(SimulatedSystem):
    """Vectorized-decode, fused-event-loop system (numpy required)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        traces = [core.trace for core in self.cores]
        #: per-core SoA decode; long traces come back as streamed
        #: windows, which the issue paths page through via ``ensure``.
        self._soa = decode_traces(traces, self.num_banks)
        #: served requests are recycled into new issues (the fused
        #: drain owns every reference, so reuse is invisible).
        self._request_pool = []
        #: one-unpack context for the issue path (stable objects).
        self._issue_ctx = (
            self.banks,
            self._queue_cores,
            self._queue_len,
            self._bank_scheduled,
            self._row_address,
            self._bank_address,
            self._heap,
            self._request_pool,
        )
        self._fused = self._snapshot_fusability()
        #: cross-bank tracker arenas; installed only when every bank
        #: runs the same stock scheme (see _install_arenas).
        self._arenas = self._install_arenas() if self._fused else None

    # ------------------------------------------------------------------

    def _build_core_flats(self, traces, num_banks):
        # The SoA decode supplies (possibly windowed) flats to the
        # overridden issue paths; materializing the scalar per-trace
        # tables here would duplicate the whole column.
        return [None] * len(traces)

    def _snapshot_fusability(self) -> bool:
        """True when every component is stock (fused path is exact)."""
        # Any re-snapshot invalidates previously installed arenas:
        # their dispatch codes are rebuilt from scratch below.
        self._arenas = None
        self._bliss_channel = []
        for scheduler in self._schedulers:
            if type(scheduler) not in (BlissScheduler, FrFcfsScheduler):
                return False
            if (
                "pick" in scheduler.__dict__
                or "on_served" in scheduler.__dict__
            ):
                return False
            self._bliss_channel.append(type(scheduler) is BlissScheduler)
        throttle_modes = []
        act_modes = []
        fast_hammer = []
        fast_rfm = []
        contexts = []
        policy_modes = set()
        for controller in self.banks:
            if (
                type(controller) is not BankController
                or type(controller.bank) is not BankTimingModel
                or type(controller.refresh) is not AutoRefreshEngine
                or (controller.bank.faw is not None
                    and type(controller.bank.faw) is not FawTracker)
            ):
                return False
            hammer = controller.hammer
            if hammer is not None and type(hammer) is not HammerModel:
                return False
            policy = controller.page_policy
            if policy is None or type(policy) is OpenPagePolicy:
                policy_modes.add((_POLICY_OPEN, 0))
            elif type(policy) is ClosedPagePolicy:
                policy_modes.add((_POLICY_CLOSED, 0))
            elif type(policy) is MinimalistOpenPolicy:
                policy_modes.add(
                    (_POLICY_MINIMALIST, policy.burst_limit)
                )
            else:
                return False
            scheme = controller.scheme
            # Throttle specialization: never / blockhammer-inline /
            # generic memoized call (the scalar path's behavior).
            if controller.never_throttles():
                throttle_modes.append(_THROTTLE_NEVER)
            elif (
                type(controller).throttle_release
                is BankController.throttle_release
                and "throttle_release" not in controller.__dict__
                and _unpatched(
                    scheme, BlockHammerScheme, "throttle_release"
                )
                and type(scheme).throttle_release
                is BlockHammerScheme.throttle_release
            ):
                throttle_modes.append(_THROTTLE_BLOCKHAMMER)
            else:
                throttle_modes.append(_THROTTLE_GENERIC)
            # Per-ACT tracker-update specialization.
            if _unpatched(scheme, NoProtection, "on_activate"):
                act_modes.append(_ACT_NONE)
            elif (
                _unpatched(scheme, MithrilScheme, "on_activate")
                and type(scheme).on_activate is MithrilScheme.on_activate
                and type(scheme.table) is MithrilTable
                and type(scheme.table._summary) is CounterSummary
            ):
                act_modes.append(_ACT_MITHRIL)
            elif (
                _unpatched(scheme, BlockHammerScheme, "on_activate")
                and type(scheme).on_activate
                is BlockHammerScheme.on_activate
                and type(scheme.cbf) is DualCountingBloomFilter
                and all(
                    type(f) is CountingBloomFilter
                    for f in scheme.cbf._filters
                )
            ):
                act_modes.append(_ACT_BLOCKHAMMER)
            elif (
                _unpatched(scheme, GrapheneScheme,
                           "on_activate", "_maybe_reset")
                and type(scheme).on_activate
                is GrapheneScheme.on_activate
                and type(scheme)._maybe_reset
                is GrapheneScheme._maybe_reset
                and type(scheme.table) is CounterSummary
            ):
                act_modes.append(_ACT_GRAPHENE)
            else:
                act_modes.append(_ACT_GENERIC)
            fast_hammer.append(
                hammer is not None
                and hammer.blast_weights == (1.0,)
            )
            rfm_logic = controller.rfm_logic
            fast_rfm.append(
                rfm_logic is not None
                and _unpatched(rfm_logic, RfmIssueLogic, "on_activate")
                and _unpatched(rfm_logic.raa, RaaCounter, "on_activate")
            )
            contexts.append([
                controller,
                controller.queue,
                controller.bank,
                controller.channel_state,
                controller.energy,
                controller.refresh,
                scheme,
                hammer,
            ])
        if len(policy_modes) != 1:
            return False  # mixed policies: not produced by any config
        (self._policy_mode, self._policy_burst), = policy_modes
        self._throttle_mode = throttle_modes
        self._act_mode = act_modes
        self._fast_hammer = fast_hammer
        self._fast_rfm = fast_rfm
        # One tuple unpack per bank event instead of six list reads:
        # fold the per-flat mode flags and channel scheduler in.
        for flat, ctx in enumerate(contexts):
            channel = self._bank_channel[flat]
            ctx.extend([
                throttle_modes[flat],
                act_modes[flat],
                fast_hammer[flat],
                fast_rfm[flat],
                self._schedulers[channel],
                self._bliss_channel[channel],
                channel,
            ])
        self._bank_ctx = [tuple(ctx) for ctx in contexts]
        return True

    def _install_arenas(self) -> Optional[TrackerArenas]:
        """Adopt per-bank tracker state into cross-bank arenas.

        Engages only when *every* bank carries the same single
        ``_ACT_*`` specialization — i.e. all banks run the same stock
        scheme; mixed or non-stock configurations return None and the
        fused drain keeps the exact per-bank inline handlers.  On
        success ``_act_mode`` and the per-flat contexts are remapped
        to the ``*_ARENA`` dispatch codes, and an RAA vector is added
        when every bank also carries fused RFM logic.
        """
        act_modes = self._act_mode
        first = act_modes[0]
        if any(mode != first for mode in act_modes):
            return None
        schemes = [ctx[6] for ctx in self._bank_ctx]
        try:
            if first == _ACT_MITHRIL:
                arenas = TrackerArenas(cbs=CbsArena.for_mithril(schemes))
                remap = _ACT_MITHRIL_ARENA
            elif first == _ACT_BLOCKHAMMER:
                blockhammer = BlockHammerArena(schemes)
                for soa in self._soa:
                    blockhammer.prefill(soa.rows)
                arenas = TrackerArenas(blockhammer=blockhammer)
                remap = _ACT_BLOCKHAMMER_ARENA
            elif first == _ACT_GRAPHENE:
                arenas = TrackerArenas(cbs=CbsArena.for_graphene(schemes))
                remap = _ACT_GRAPHENE_ARENA
            else:  # NoProtection / generic: nothing to share
                return None
        except ValueError:  # non-uniform tracker geometry
            return None
        if self._fast_rfm and all(self._fast_rfm):
            # fast_rfm implies rfm_logic is present and stock
            arenas.raa = RaaArena(
                [ctx[0].rfm_logic for ctx in self._bank_ctx]
            )
        self._act_mode = [remap] * len(act_modes)
        self._bank_ctx = [
            ctx[:9] + (remap,) + ctx[10:] for ctx in self._bank_ctx
        ]
        return arenas

    # ------------------------------------------------------------------
    # SoA issue path (overrides the scalar entry-object path)
    # ------------------------------------------------------------------

    def _try_issue(self, core, cycle: int) -> None:
        core_id = core.core_id
        soa = self._soa[core_id]
        total = soa.length
        (banks, queue_cores, queue_len, scheduled, row_address,
         bank_address, heap, pool) = self._issue_ctx
        heappush = heapq.heappush
        mlp = core.mlp
        index = core.index
        outstanding = core.outstanding_reads
        # Window-relative field access: a full decode is one window
        # covering the trace (base 0, bound total), so the fast path
        # pays only the ``index - base`` subtraction; a streamed
        # decode pages the next chunk in when ``index`` walks past
        # ``bound`` (core.index never decreases, so windows only ever
        # advance).
        base = soa.chunk_start
        bound = soa.chunk_end
        flats = soa.flats
        rows = soa.rows
        columns = soa.columns
        writes = soa.writes
        steps = soa.steps
        while index < total:
            if cycle < core.next_issue_cycle:
                seq = self._seq = self._seq + 1
                if seq >= _SEQ_LIMIT:
                    raise OverflowError(
                        f"event sequence exceeded {_SEQ_LIMIT} "
                        f"(heap-key seq field)"
                    )
                heappush(
                    heap,
                    (((core.next_issue_cycle << _SEQ_BITS) | seq)
                     << _LOW_BITS)
                    | (_ISSUE << _IDENT_BITS) | core_id,
                )
                break
            if index >= bound:
                soa.ensure(index)
                base = soa.chunk_start
                bound = soa.chunk_end
                flats = soa.flats
                rows = soa.rows
                columns = soa.columns
                writes = soa.writes
                steps = soa.steps
            local = index - base
            is_write = writes[local]
            if not is_write and outstanding >= mlp:
                core.stalled_on_mlp = True
                break
            flat = flats[local]
            row = rows[local]
            column = columns[local]
            if is_write:
                core.writes_issued += 1
            else:
                core.reads_issued += 1
                outstanding += 1
            core.next_issue_cycle = cycle + steps[local]
            index += 1
            interned = row_address[flat]
            address = interned.get(row)
            if address is None:
                address = RowAddress(bank_address[flat], row)
                interned[row] = address
            if pool:
                request = pool.pop()
                request.core = core_id
                request.arrival_cycle = cycle
                request.address = address
                request.column = column
                request.is_write = is_write
                request.completion_cycle = None
            else:
                request = MemoryRequest(
                    core=core_id,
                    arrival_cycle=cycle,
                    address=address,
                    column=column,
                    is_write=is_write,
                )
            controller = banks[flat]
            controller.queue.append(request)
            occupancy = queue_cores[flat]
            occupancy[core_id] = occupancy.get(core_id, 0) + 1
            queue_len[flat] += 1
            if not scheduled[flat]:
                scheduled[flat] = True
                ready = controller.bank.ready_cycle
                wake = ready if ready > cycle else cycle
                seq = self._seq = self._seq + 1
                if seq >= _SEQ_LIMIT:
                    raise OverflowError(
                        f"event sequence exceeded {_SEQ_LIMIT} "
                        f"(heap-key seq field)"
                    )
                heappush(
                    heap,
                    (((wake << _SEQ_BITS) | seq) << _LOW_BITS)
                    | (_BANK << _IDENT_BITS) | flat,
                )
        core.index = index
        core.outstanding_reads = outstanding

    def _complete_event(self, core_id: int, cycle: int) -> None:
        core = self.cores[core_id]
        outstanding = core.outstanding_reads - 1
        if outstanding < 0:
            raise RuntimeError(
                f"core {core.core_id}: read completion without "
                f"outstanding read"
            )
        core.outstanding_reads = outstanding
        if core.stalled_on_mlp:
            core.stalled_on_mlp = False
            self._try_issue(core, cycle)

    # ------------------------------------------------------------------
    # epoch-batched drain
    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimulationResult:
        if self._ran:
            raise RuntimeError("a SimulatedSystem can only run once")
        self._ran = True
        heap = self._heap
        for core in self.cores:
            self._seq += 1
            heap.append((self._seq << _LOW_BITS) | core.core_id)
        heapq.heapify(heap)
        # One telemetry branch per run — the drain loops stay untouched.
        from repro import telemetry

        tel = telemetry.get()
        if self._fused:
            # Pause cyclic GC for the drain: the pool removes nearly
            # all per-event allocation, so generational collections
            # only scan long-lived simulator state over and over.
            # Results are GC-invariant; the flag is restored on exit.
            import gc

            was_enabled = gc.isenabled()
            if was_enabled:
                gc.disable()
            span = (
                tel.span("sim.drain", backend="turbo", fused=True)
                if tel is not None else telemetry.NOOP_SPAN
            )
            try:
                with span:
                    self._drain_fused(max_cycles)
            finally:
                if was_enabled:
                    gc.enable()
                if self._arenas is not None:
                    # Post-run inspection (blacklists, filter state,
                    # RAA counts) must see what the scalar backend
                    # leaves on the per-bank objects.
                    self._arenas.write_back()
        else:
            span = (
                tel.span("sim.drain", backend="turbo", fused=False)
                if tel is not None else telemetry.NOOP_SPAN
            )
            with span:
                self._drain_generic(max_cycles)
        if tel is not None:
            counts = dict(
                self._arenas.counters() if self._arenas is not None else {}
            )
            counts["soa.window_loads"] = sum(
                getattr(soa, "loads", 0) for soa in self._soa
            )
            for name, value in counts.items():
                tel.counter(name, value)
            tel.event("sim.run.done", backend="turbo", **counts)
        return self._collect()

    def _drain_generic(self, max_cycles: Optional[int]) -> None:
        """Epoch drain through the scalar handlers (fallback path)."""
        heap = self._heap
        heappop = heapq.heappop
        limit = float("inf") if max_cycles is None else max_cycles
        cores = self.cores
        try_issue = self._try_issue
        bank_event = self._bank_event
        complete_event = self._complete_event
        probe = self._probe
        probe_next = probe.next_cycle if probe is not None else float("inf")
        while heap:
            cycle = heap[0] >> _CYCLE_SHIFT
            if cycle > limit:
                break
            if cycle >= probe_next:
                # Same logical point as the scalar backend's per-pop
                # check: every event of cycles < cycle applied, none
                # of cycle itself — streams match byte for byte.
                probe.sample(self, cycle)
                probe_next = probe.next_cycle
            while heap:
                key = heap[0]
                if (key >> _CYCLE_SHIFT) != cycle:
                    break
                heappop(heap)
                kind = (key >> _IDENT_BITS) & 3
                ident = key & _IDENT_MASK
                if kind == _BANK:
                    bank_event(ident, cycle)
                elif kind == _ISSUE:
                    try_issue(cores[ident], cycle)
                else:
                    complete_event(ident, cycle)

    def _drain_fused(self, max_cycles: Optional[int]) -> None:
        """The fused fast path: one epoch-batched straight-line loop.

        Inlines (behavior-preserving, see the module docstring):
        ``_bank_event``, ``BankController.serve``,
        ``BankTimingModel.serve_access`` (+ ``FawTracker``),
        ``_on_activated`` with the single-distance ``HammerModel``
        fast path, the stock schemes' per-ACT updates, BLISS ``pick``
        / ``on_served``, and the event pushes.
        """
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        limit = float("inf") if max_cycles is None else max_cycles
        cores = self.cores
        contexts = self._bank_ctx
        bank_scheduled = self._bank_scheduled
        queue_cores = self._queue_cores
        core_served = self._core_served
        last_completion = self._core_last_completion
        soas = self._soa
        banks = self.banks
        scheduled = bank_scheduled
        row_address = self._row_address
        bank_address = self._bank_address
        pool = self._request_pool
        policy_mode = self._policy_mode
        policy_burst = self._policy_burst
        # All banks share one timing configuration.
        timings = self.config.timings
        trp = timings.cycles(timings.trp)
        trcd = timings.cycles(timings.trcd)
        tcl = timings.cycles(timings.tcl)
        tbl = timings.cycles(timings.tbl)
        trc = timings.cycles(timings.trc)
        tras = timings.cycles(timings.tras)
        #: cached refresh horizon per flat bank (next_tick_cycle is a
        #: property; re-read only after an actual refresh drain).
        refresh_next = [
            ctx[5].next_tick_cycle for ctx in contexts
        ]
        # NOTE: the fused drain deliberately abandons self._queue_len
        # (the scalar path's external-queue-mutation guard): nothing
        # can mutate a queue behind this loop's back under the
        # construction snapshot, no fused-path code reads it, and the
        # inline issue loop below skips the increment its generic twin
        # (_try_issue) performs.  Anything consulting _queue_len after
        # a fused run sees stale zeros.
        # Cross-bank arena dispatch (see _install_arenas): exactly one
        # of the observe hooks is bound when arenas are active, and
        # every bank shares it.
        arenas = self._arenas
        mithril_observe = graphene_observe = bh_flush = None
        raa_mem = None
        if arenas is not None:
            if arenas.cbs is not None:
                if arenas.cbs.kind == "mithril":
                    mithril_observe = arenas.cbs.mithril_observe
                else:
                    graphene_observe = arenas.cbs.graphene_observe
            if arenas.blockhammer is not None:
                bh_flush = arenas.blockhammer.flush
            if arenas.raa is not None:
                raa_mem = arenas.raa.mem
        #: BlockHammer per-ACT updates deferred within the current
        #: epoch as (flat, row, start) triples — at most one per bank
        #: (a bank serves at most once per cycle, and the conflict
        #: guard below settles the batch before any second same-bank
        #: event could read stale blacklist state).
        bh_pending = []
        bh_append = bh_pending.append
        bh_pending_flats = set()
        row_hits = 0
        row_misses = 0
        #: probes off ⇒ one inf-compare per distinct event cycle and
        #: one None-check per ACT; probes on ⇒ sample at the top of the
        #: epoch, where bh_pending is empty (settled at the previous
        #: epoch boundary) — the same logical point as the scalar
        #: backend's per-pop check, so streams match byte for byte.
        probe = self._probe
        probe_next = probe.next_cycle if probe is not None else float("inf")
        probe_acts = None if probe is None else probe.act_counts
        seq = self._seq
        while heap:
            cycle = heap[0] >> _CYCLE_SHIFT
            if cycle > limit:
                break
            if cycle >= probe_next:
                probe.sample(self, cycle)
                probe_next = probe.next_cycle
            while heap:
                key = heap[0]
                if (key >> _CYCLE_SHIFT) != cycle:
                    break
                heappop(heap)
                kind = (key >> _IDENT_BITS) & 3
                if kind != _BANK:
                    core_id = key & _IDENT_MASK
                    core = cores[core_id]
                    if kind == _ISSUE:
                        issuing = True
                    else:
                        # inline _complete_event
                        outstanding = core.outstanding_reads - 1
                        if outstanding < 0:
                            raise RuntimeError(
                                f"core {core.core_id}: read completion "
                                f"without outstanding read"
                            )
                        core.outstanding_reads = outstanding
                        issuing = core.stalled_on_mlp
                        if issuing:
                            core.stalled_on_mlp = False
                    if issuing:
                        # ---- inline _try_issue (SoA issue loop) ------
                        soa = soas[core_id]
                        total = soa.length
                        base = soa.chunk_start
                        bound = soa.chunk_end
                        flats = soa.flats
                        soa_rows = soa.rows
                        soa_columns = soa.columns
                        soa_writes = soa.writes
                        soa_steps = soa.steps
                        mlp = core.mlp
                        index = core.index
                        outstanding = core.outstanding_reads
                        while index < total:
                            if cycle < core.next_issue_cycle:
                                seq += 1
                                if seq >= _SEQ_LIMIT:
                                    raise OverflowError(
                                        f"event sequence exceeded "
                                        f"{_SEQ_LIMIT} (heap-key seq "
                                        f"field)"
                                    )
                                heappush(
                                    heap,
                                    (((core.next_issue_cycle
                                       << _SEQ_BITS) | seq)
                                     << _LOW_BITS)
                                    | (_ISSUE << _IDENT_BITS) | core_id,
                                )
                                break
                            if index >= bound:
                                # streamed decode: page the next
                                # window in (windows only advance)
                                soa.ensure(index)
                                base = soa.chunk_start
                                bound = soa.chunk_end
                                flats = soa.flats
                                soa_rows = soa.rows
                                soa_columns = soa.columns
                                soa_writes = soa.writes
                                soa_steps = soa.steps
                            local = index - base
                            is_write = soa_writes[local]
                            if not is_write and outstanding >= mlp:
                                core.stalled_on_mlp = True
                                break
                            flat = flats[local]
                            row = soa_rows[local]
                            column = soa_columns[local]
                            if is_write:
                                core.writes_issued += 1
                            else:
                                core.reads_issued += 1
                                outstanding += 1
                            core.next_issue_cycle = (
                                cycle + soa_steps[local]
                            )
                            index += 1
                            interned = row_address[flat]
                            address = interned.get(row)
                            if address is None:
                                address = RowAddress(
                                    bank_address[flat], row
                                )
                                interned[row] = address
                            if pool:
                                request = pool.pop()
                                request.core = core_id
                                request.arrival_cycle = cycle
                                request.address = address
                                request.column = column
                                request.is_write = is_write
                                request.completion_cycle = None
                            else:
                                request = MemoryRequest(
                                    core=core_id,
                                    arrival_cycle=cycle,
                                    address=address,
                                    column=column,
                                    is_write=is_write,
                                )
                            controller = banks[flat]
                            controller.queue.append(request)
                            occupancy = queue_cores[flat]
                            occupancy[core_id] = (
                                occupancy.get(core_id, 0) + 1
                            )
                            if not scheduled[flat]:
                                scheduled[flat] = True
                                ready = controller.bank.ready_cycle
                                wake = ready if ready > cycle else cycle
                                seq += 1
                                if seq >= _SEQ_LIMIT:
                                    raise OverflowError(
                                        f"event sequence exceeded "
                                        f"{_SEQ_LIMIT} (heap-key seq "
                                        f"field)"
                                    )
                                heappush(
                                    heap,
                                    (((wake << _SEQ_BITS) | seq)
                                     << _LOW_BITS)
                                    | (_BANK << _IDENT_BITS) | flat,
                                )
                        core.index = index
                        core.outstanding_reads = outstanding
                    continue
                # ---- fused bank event ---------------------------------
                flat = key & _IDENT_MASK
                if bh_pending and flat in bh_pending_flats:
                    # A second event on a bank holding a deferred ACT
                    # would read a stale blacklist: settle first.
                    bh_flush(bh_pending)
                    del bh_pending[:]
                    bh_pending_flats.clear()
                bank_scheduled[flat] = False
                (controller, queue, bank, channel_state, energy,
                 refresh, scheme, hammer, t_mode, a_mode, f_hammer,
                 f_rfm, scheduler, is_bliss, channel) = contexts[flat]
                qlen = len(queue)
                if not qlen:
                    continue
                occupancy = queue_cores[flat]
                open_row = bank.open_row
                memo = None
                if qlen == 1:
                    index = 0
                    request = queue[0]
                    if t_mode:
                        if t_mode == _THROTTLE_BLOCKHAMMER:
                            qrow = request.address.row
                            if open_row == qrow:
                                release = cycle
                            else:
                                release = scheme._release.get(qrow)
                                if release is None or release <= cycle:
                                    release = cycle
                        else:
                            release = controller.throttle_release(
                                request, cycle
                            )
                        if release > cycle:
                            bank_scheduled[flat] = True
                            retry = (
                                release if release > cycle + 1
                                else cycle + 1
                            )
                            seq += 1
                            if seq >= _SEQ_LIMIT:
                                raise OverflowError(
                                    f"event sequence exceeded "
                                    f"{_SEQ_LIMIT} (heap-key seq field)"
                                )
                            heappush(
                                heap,
                                (((retry << _SEQ_BITS) | seq)
                                 << _LOW_BITS)
                                | (_BANK << _IDENT_BITS) | flat,
                            )
                            continue
                    contended = False
                elif is_bliss:
                    # Inline stock-BLISS tier scan (released-only
                    # candidates; same selection order as
                    # BlissScheduler.pick, which never returns a
                    # throttled request).  Throttled candidates feed
                    # the all-throttled fallback minimum on the fly.
                    blacklist = scheduler._blacklist_until
                    best_index = None
                    best_tier = 4
                    best_arrival = 0
                    bt_release = bt_arrival = bt_found = None
                    match_row = open_row is not None
                    if t_mode == _THROTTLE_BLOCKHAMMER:
                        release_map = scheme._release
                    elif t_mode == _THROTTLE_GENERIC:
                        throttle = controller.throttle_release
                    for i, queued in enumerate(queue):
                        if t_mode:
                            qrow = queued.address.row
                            if t_mode == _THROTTLE_BLOCKHAMMER:
                                if open_row == qrow:
                                    release = cycle
                                else:
                                    release = release_map.get(qrow)
                                    if (
                                        release is None
                                        or release <= cycle
                                    ):
                                        release = cycle
                            else:
                                release = throttle(queued, cycle)
                            if release > cycle:
                                arrival = queued.arrival_cycle
                                if (
                                    bt_found is None
                                    or release < bt_release
                                    or (release == bt_release
                                        and arrival < bt_arrival)
                                ):
                                    bt_found = i
                                    bt_release = release
                                    bt_arrival = arrival
                                continue
                        tier = (
                            2 if blacklist.get(queued.core, -1) > cycle
                            else 0
                        )
                        if not (
                            match_row and queued.address.row == open_row
                        ):
                            tier += 1
                        arrival = queued.arrival_cycle
                        if tier < best_tier or (
                            tier == best_tier and arrival < best_arrival
                        ):
                            best_index = i
                            best_tier = tier
                            best_arrival = arrival
                    if best_index is None:
                        # Every candidate throttled: retry at the
                        # earliest release (oldest on ties), exactly
                        # the scalar abstain fallback.
                        retry = (
                            bt_release if bt_release > cycle + 1
                            else cycle + 1
                        )
                        bank_scheduled[flat] = True
                        seq += 1
                        if seq >= _SEQ_LIMIT:
                            raise OverflowError(
                                f"event sequence exceeded "
                                f"{_SEQ_LIMIT} (heap-key seq field)"
                            )
                        heappush(
                            heap,
                            (((retry << _SEQ_BITS) | seq) << _LOW_BITS)
                            | (_BANK << _IDENT_BITS) | flat,
                        )
                        continue
                    index = best_index
                    request = queue[index]
                    contended = qlen > occupancy.get(request.core, 0)
                else:
                    # Non-BLISS channel (FR-FCFS): keep the scheduler
                    # call, with the scalar backend's memoized release
                    # hook.
                    if t_mode:
                        throttle = controller.throttle_release
                        memo = {}

                        def release_of(
                            queued, _throttle=throttle, _memo=memo,
                            _cycle=cycle,
                        ):
                            memo_key = id(queued)
                            release = _memo.get(memo_key)
                            if release is None:
                                release = _memo[memo_key] = _throttle(
                                    queued, _cycle
                                )
                            return release
                    else:
                        release_of = None
                    index = scheduler.pick(
                        queue, open_row, cycle, release_of
                    )
                    abstained = index is None
                    if abstained:
                        if release_of is None:
                            index = min(
                                range(qlen),
                                key=lambda i: queue[i].arrival_cycle,
                            )
                        else:
                            index = min(
                                range(qlen),
                                key=lambda i: (
                                    release_of(queue[i]),
                                    queue[i].arrival_cycle,
                                ),
                            )
                    request = queue[index]
                    if release_of is not None:
                        release = release_of(request)
                        if release > cycle:
                            earliest = (
                                release if abstained
                                else min(release_of(r) for r in queue)
                            )
                            retry = (
                                earliest if earliest > cycle + 1
                                else cycle + 1
                            )
                            bank_scheduled[flat] = True
                            seq += 1
                            if seq >= _SEQ_LIMIT:
                                raise OverflowError(
                                    f"event sequence exceeded "
                                    f"{_SEQ_LIMIT} (heap-key seq field)"
                                )
                            heappush(
                                heap,
                                (((retry << _SEQ_BITS) | seq)
                                 << _LOW_BITS)
                                | (_BANK << _IDENT_BITS) | flat,
                            )
                            continue
                    contended = qlen > occupancy.get(request.core, 0)
                core_id = request.core
                queue.pop(index)
                count = occupancy.get(core_id, 1) - 1
                if count:
                    occupancy[core_id] = count
                else:
                    occupancy.pop(core_id, None)
                # ---- inlined BankController.serve ---------------------
                if cycle >= refresh_next[flat]:
                    controller.advance_refresh(cycle)
                    refresh_next[flat] = refresh.next_tick_cycle
                    open_row = bank.open_row  # refresh precharges
                row = request.address.row
                if t_mode:
                    if t_mode == _THROTTLE_BLOCKHAMMER:
                        act_not_before = scheme._release.get(row)
                        if (
                            act_not_before is None
                            or act_not_before <= cycle
                        ):
                            act_not_before = cycle
                    else:
                        act_not_before = scheme.throttle_release(
                            row, cycle
                        )
                else:
                    act_not_before = cycle
                if policy_mode == _POLICY_OPEN:
                    close_after = False
                elif policy_mode == _POLICY_CLOSED:
                    close_after = True
                else:  # minimalist-open (exact should_close inline)
                    hits = (
                        controller._consecutive_hits
                        if open_row == row else 0
                    )
                    if hits >= policy_burst:
                        close_after = True
                    else:
                        close_after = True
                        for queued in queue:
                            if queued.address.row == row:
                                close_after = False
                                break
                # ---- inlined BankTimingModel.serve_access -------------
                ready = bank.ready_cycle
                start = cycle if cycle > ready else ready
                activated = False
                precharged = False
                if open_row == row:
                    row_hit = True
                    column_issue = start
                else:
                    row_hit = False
                    last_act = bank._last_act_cycle
                    if open_row is not None:
                        earliest_pre = last_act + tras
                        if earliest_pre > start:
                            start = earliest_pre
                        start += trp
                        precharged = True
                        bank.pre_count += 1
                    act_cycle = (
                        start if start > act_not_before
                        else act_not_before
                    )
                    earliest_act = last_act + trc
                    if earliest_act > act_cycle:
                        act_cycle = earliest_act
                    faw = bank.faw
                    if faw is not None:
                        recent = faw._recent
                        if len(recent) >= faw.window:
                            faw_ready = recent[0] + faw.tfaw_cycles
                            if faw_ready > act_cycle:
                                act_cycle = faw_ready
                        recent.append(act_cycle)
                    bank._last_act_cycle = act_cycle
                    bank.act_count += 1
                    activated = True
                    bank.open_row = row
                    column_issue = act_cycle + trcd
                data_start = column_issue + tcl
                if channel_state.bus_free_cycle > data_start:
                    data_start = channel_state.bus_free_cycle
                data_cycle = data_start + tbl
                bank.access_count += 1
                if close_after:
                    pre_at = bank._last_act_cycle + tras
                    if column_issue > pre_at:
                        pre_at = column_issue
                    bank.ready_cycle = pre_at + trp
                    bank.open_row = None
                    bank.pre_count += 1
                    precharged = True
                else:
                    bank.ready_cycle = column_issue + tbl
                # ---- post-access bookkeeping (serve, continued) -------
                channel_state.bus_free_cycle = data_cycle
                if row_hit:
                    controller._consecutive_hits += 1
                    row_hits += 1
                else:
                    controller._consecutive_hits = 1
                    row_misses += 1
                if request.is_write:
                    energy.writes += 1
                else:
                    energy.reads += 1
                if activated:
                    # ---- inlined _on_activated ------------------------
                    energy.acts += 1
                    if precharged:
                        energy.pres += 1
                    if probe_acts is not None:
                        # the serve-path wrap never runs here: feed the
                        # probe layer's exact ACT counts directly
                        bank_acts = probe_acts[flat]
                        bank_acts[row] = bank_acts.get(row, 0) + 1
                    if hammer is not None:
                        if f_hammer:
                            disturbance = hammer._disturbance
                            rows_per_bank = hammer.rows_per_bank
                            flip_th = hammer.flip_th
                            for victim in (row - 1, row + 1):
                                if not 0 <= victim < rows_per_bank:
                                    continue
                                level = (
                                    disturbance.get(victim, 0.0) + 1.0
                                )
                                disturbance[victim] = level
                                if level > hammer.max_disturbance:
                                    hammer.max_disturbance = level
                                    hammer.max_disturbance_row = victim
                                if level >= flip_th:
                                    hammer.flips.append(
                                        FlipEvent(
                                            cycle=start,
                                            row=victim,
                                            disturbance=level,
                                            aggressor=row,
                                        )
                                    )
                                    disturbance[victim] = 0.0
                        else:
                            hammer.on_activate(row, start)
                    # ---- per-ACT tracker update (specialized) ---------
                    if a_mode >= _ACT_MITHRIL_ARENA:
                        # cross-bank arena dispatch (uniform stock
                        # scheme; see repro.sim.arena for exactness)
                        if a_mode == _ACT_BLOCKHAMMER_ARENA:
                            # defer to the epoch boundary; flushed as
                            # a batch through the shared CBF tensor
                            bh_append((flat, row, start))
                            bh_pending_flats.add(flat)
                        elif a_mode == _ACT_MITHRIL_ARENA:
                            mithril_observe(flat, row)
                        else:
                            arr_victims = graphene_observe(
                                flat, row, start
                            )
                            if arr_victims:
                                controller._apply_arr(
                                    arr_victims, start
                                )
                    elif a_mode == _ACT_MITHRIL:
                        # inline MithrilScheme.on_activate +
                        # MithrilTable.record_activation (+ spread),
                        # with the CbS on-table hit (_observe_one +
                        # _move) and fresh-heap-top max_entry fast
                        # paths unrolled
                        scheme.stats.acts_observed += 1
                        table = scheme.table
                        summary = table._summary
                        counts = summary._counts
                        current = counts.get(row)
                        if current is None:
                            summary._observe_one(row)
                        else:
                            summary._total_observed += 1
                            new = current + 1
                            buckets = summary._buckets
                            bucket = buckets[current]
                            bucket.discard(row)
                            old_emptied = not bucket
                            if old_emptied:
                                del buckets[current]
                            counts[row] = new
                            bucket = buckets.get(new)
                            if bucket is None:
                                buckets[new] = {row}
                            else:
                                bucket.add(row)
                            heappush(
                                summary._max_heap, (-new, row)
                            )
                            if (
                                old_emptied
                                and current == summary._min_count
                            ):
                                # new > current: advance upward
                                # (inline _advance_min; buckets is
                                # non-empty, we just added to it)
                                probe = summary._min_count
                                while probe not in buckets:
                                    probe += 1
                                summary._min_count = probe
                        max_heap = summary._max_heap
                        if max_heap:
                            neg_count, element = max_heap[0]
                            if counts.get(element) == -neg_count:
                                max_count = -neg_count
                            else:
                                top = summary.max_entry()
                                max_count = (
                                    0 if top is None else top[1]
                                )
                        else:
                            max_count = 0
                        if len(counts) < summary.capacity:
                            min_count = 0
                        else:
                            min_count = summary._min_count
                        spread = max_count - min_count
                        if spread > table._max_spread_seen:
                            table._max_spread_seen = spread
                        window = table._wrap_window
                        if window is not None and spread >= window:
                            raise OverflowError(
                                f"counter spread {spread} exceeds "
                                f"wrapping window {window}; "
                                f"counter_bits={table.counter_bits} "
                                f"too small"
                            )
                    elif a_mode == _ACT_BLOCKHAMMER:
                        # inline BlockHammerScheme.on_activate +
                        # DualCountingBloomFilter.observe_and_estimate
                        scheme.stats.acts_observed += 1
                        cbf = scheme.cbf
                        filters = cbf._filters
                        first = filters[0]
                        second = filters[1]
                        indices_first = first._index_cache.get(row)
                        if indices_first is None:
                            indices_first = first._indices(row)
                        indices_second = second._index_cache.get(row)
                        if indices_second is None:
                            indices_second = second._indices(row)
                        counters = first._counters
                        for probe in indices_first:
                            counters[probe] += 1
                        first._total += 1
                        counters = second._counters
                        for probe in indices_second:
                            counters[probe] += 1
                        second._total += 1
                        cbf._since_swap += 1
                        if cbf._since_swap >= cbf.half_epoch:
                            cbf._rotate()
                        if cbf._active == 0:
                            counters = first._counters
                            probes = indices_first
                        else:
                            counters = second._counters
                            probes = indices_second
                        estimate = counters[probes[0]]
                        for probe in probes:
                            value = counters[probe]
                            if value < estimate:
                                estimate = value
                        if estimate >= scheme.n_bl:
                            release_map = scheme._release
                            if row not in release_map:
                                scheme.blacklisted_rows_seen += 1
                            release_map[row] = (
                                start + scheme.delay_cycles
                            )
                            scheme.stats.throttle_events += 1
                    elif a_mode == _ACT_GRAPHENE:
                        # inline GrapheneScheme.on_activate
                        # (+ _maybe_reset, CbS estimate)
                        scheme.stats.acts_observed += 1
                        if start >= scheme._next_reset:
                            scheme.table.reset()
                            scheme._next_trigger.clear()
                            scheme.resets += 1
                            while scheme._next_reset <= start:
                                scheme._next_reset += (
                                    scheme.reset_interval_cycles
                                )
                        table = scheme.table
                        counts = table._counts
                        current = counts.get(row)
                        if current is None:
                            table._observe_one(row)
                            found = counts.get(row)
                            if found is None:  # defensive; observe
                                # always tables the row
                                if len(counts) < table.capacity:
                                    found = 0
                                else:
                                    found = table._min_count
                        else:
                            # inline _observe_one on-table hit + _move
                            table._total_observed += 1
                            found = current + 1
                            buckets = table._buckets
                            bucket = buckets[current]
                            bucket.discard(row)
                            old_emptied = not bucket
                            if old_emptied:
                                del buckets[current]
                            counts[row] = found
                            bucket = buckets.get(found)
                            if bucket is None:
                                buckets[found] = {row}
                            else:
                                bucket.add(row)
                            heappush(
                                table._max_heap, (-found, row)
                            )
                            if (
                                old_emptied
                                and current == table._min_count
                            ):
                                probe = table._min_count
                                while probe not in buckets:
                                    probe += 1
                                table._min_count = probe
                        trigger = scheme._next_trigger.get(
                            row, scheme.threshold
                        )
                        if found >= trigger:
                            scheme._next_trigger[row] = (
                                trigger + scheme.threshold
                            )
                            rows_per_bank = scheme.rows_per_bank
                            victims = [
                                v for v in (row - 1, row + 1)
                                if 0 <= v < rows_per_bank
                            ]
                            scheme.stats.preventive_refresh_rows += (
                                len(victims)
                            )
                            if victims:
                                controller._apply_arr(victims, start)
                    elif a_mode == _ACT_NONE:
                        # inline NoProtection.on_activate
                        scheme.stats.acts_observed += 1
                    else:
                        arr_victims = scheme.on_activate(row, start)
                        if arr_victims:
                            controller._apply_arr(arr_victims, start)
                    rfm_logic = controller.rfm_logic
                    if rfm_logic is not None:
                        if f_rfm:
                            # inline RfmIssueLogic.on_activate /
                            # RaaCounter fast path (below threshold);
                            # the live count sits in the arena RAA
                            # vector when one is installed
                            raa = rfm_logic.raa
                            raa_th = raa.rfm_th
                            if raa_th > 0:
                                if raa_mem is not None:
                                    value = raa_mem[flat] + 1
                                    if value >= raa_th:
                                        raa_mem[flat] = 0
                                        fire = True
                                    else:
                                        raa_mem[flat] = value
                                        fire = False
                                else:
                                    raa.value += 1
                                    if raa.value >= raa_th:
                                        raa.value = 0
                                        fire = True
                                    else:
                                        fire = False
                                if fire:
                                    issue = True
                                    if rfm_logic.mrr_gated:
                                        rfm_logic.mrr_reads += 1
                                        if not scheme.rfm_needed_flag():
                                            rfm_logic.rfm_elided += 1
                                            issue = False
                                    if issue:
                                        rfm_logic.rfm_issued += 1
                                        controller._apply_rfm(start)
                        elif rfm_logic.on_activate(
                            flag_reader=scheme.rfm_needed_flag
                        ):
                            controller._apply_rfm(start)
                        if rfm_logic.mrr_reads:
                            delta = (
                                rfm_logic.mrr_reads
                                - energy.mrr_commands
                            )
                            if delta > 0:
                                energy.mrr_commands += delta
                request.completion_cycle = data_cycle
                pool.append(request)  # recycled by _try_issue
                # ---- inlined scheduler.on_served (BLISS) --------------
                if contended and is_bliss:
                    if core_id == scheduler._last_core:
                        scheduler._streak += 1
                    else:
                        scheduler._last_core = core_id
                        scheduler._streak = 1
                    if scheduler._streak >= scheduler.blacklist_threshold:
                        scheduler._blacklist_until[core_id] = (
                            cycle + scheduler.blacklist_cycles
                        )
                        scheduler._streak = 0
                # ---- completion + rescheduling ------------------------
                if not request.is_write:
                    seq += 1
                    if seq >= _SEQ_LIMIT:
                        raise OverflowError(
                            f"event sequence exceeded {_SEQ_LIMIT} "
                            f"(heap-key seq field)"
                        )
                    heappush(
                        heap,
                        (((data_cycle << _SEQ_BITS) | seq) << _LOW_BITS)
                        | (_COMPLETE << _IDENT_BITS) | core_id,
                    )
                core_served[core_id] += 1
                if data_cycle > last_completion[core_id]:
                    last_completion[core_id] = data_cycle
                if qlen > 1:
                    bank_scheduled[flat] = True
                    ready = bank.ready_cycle
                    retry = ready if ready > cycle + 1 else cycle + 1
                    seq += 1
                    if seq >= _SEQ_LIMIT:
                        raise OverflowError(
                            f"event sequence exceeded {_SEQ_LIMIT} "
                            f"(heap-key seq field)"
                        )
                    heappush(
                        heap,
                        (((retry << _SEQ_BITS) | seq) << _LOW_BITS)
                        | (_BANK << _IDENT_BITS) | flat,
                    )
            # ---- epoch boundary: settle deferred tracker updates ------
            if bh_pending:
                bh_flush(bh_pending)
                del bh_pending[:]
                bh_pending_flats.clear()
        if bh_pending:  # max_cycles cutoff mid-epoch
            bh_flush(bh_pending)
        self._seq = seq
        self.row_hits += row_hits
        self.row_misses += row_misses
