"""The simulated system: event-driven co-simulation of cores, MC, DRAM.

The event loop carries three event kinds:

* ``issue`` — a core is ready to issue its next trace entry;
* ``bank`` — a bank is (possibly) free; the channel scheduler picks the
  next queued request for it;
* ``complete`` — a read's data burst finished; the owning core retires
  it and may unstall.

Banks serve one request at a time; the per-bank
:class:`~repro.mc.controller.BankController` folds in auto-refresh,
RFM issue, ARR stalls, throttling and the RowHammer fault model.

Hot-path notes
--------------
Wall-clock per event bounds how many sweep points the reproduction can
cover, so the loop avoids per-event allocation and recomputation:

* heap entries are single integers — ``(cycle, seq)`` packed above a
  small kind/ident field — so ``heappush``/``heappop`` compare ints
  instead of tuples while preserving the exact (cycle, seq) FIFO order
  of the historical string-kind tuples;
* the per-flat-bank ``(channel, rank, bank)`` decode table and each
  trace's normalized flat bank indices are computed once in
  ``__init__``, and :class:`~repro.types.RowAddress` instances are
  interned per (bank, row) — ``_make_request`` does no organization
  math at all;
* ``_bank_event`` memoizes ``throttle_release`` per request for the
  duration of one event (the release cannot change until a request is
  served), serves single-request queues without consulting the
  scheduler, and tracks a per-queue core-occupancy count so BLISS's
  "contended" bit costs O(1) instead of an O(queue) scan.

All of this is behavior-preserving: the golden-equivalence suite pins
results to the pre-optimization simulator byte for byte.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence

from repro.dram.bank import FawTracker
from repro.mc.controller import BankController, ChannelState
from repro.mc.pagepolicy import make_page_policy
from repro.mc.scheduler import make_scheduler
from repro.params import DEFAULT_CONFIG, SystemConfig
from repro.protection import NoProtection, ProtectionScheme
from repro.sim import probes as _probes
from repro.sim.core import TraceCore
from repro.sim.metrics import SimulationResult
from repro.types import BankAddress, EnergyCounts, MemoryRequest, RowAddress
from repro.workloads.trace import CoreTrace

#: Event kinds, encoded as integers in the heap key (historically the
#: strings "issue" / "bank" / "complete"; the unique ``seq`` means the
#: kind never participates in ordering, so the encoding is free).
_ISSUE, _BANK, _COMPLETE = 0, 1, 2

#: Heap-key layout: cycle | seq (40 bits) | kind (2 bits) | ident
#: (20 bits).  Python ints are unbounded, so large cycle counts simply
#: grow the key; ``seq`` at 40 bits allows ~10^12 events per run and
#: ``_push`` raises rather than letting it bleed into the cycle bits.
_SEQ_BITS = 40
_SEQ_LIMIT = 1 << _SEQ_BITS
_LOW_BITS = 22                     # kind + ident
_IDENT_BITS = 20
_IDENT_MASK = (1 << _IDENT_BITS) - 1
_CYCLE_SHIFT = _SEQ_BITS + _LOW_BITS


class SimulatedSystem:
    """One full system instance, runnable once."""

    def __init__(
        self,
        traces: Sequence[CoreTrace],
        scheme_factory: Optional[Callable[[], ProtectionScheme]] = None,
        config: SystemConfig = DEFAULT_CONFIG,
        rfm_th: int = 0,
        flip_th: int = 10_000,
        mlp: int = 4,
        track_hammer: bool = True,
    ):
        if not traces:
            raise ValueError("need at least one core trace")
        self.config = config
        self.cores = [
            TraceCore(core_id=i, trace=trace, mlp=mlp)
            for i, trace in enumerate(traces)
        ]
        org = config.organization
        self.num_banks = org.total_banks
        if self.num_banks > _IDENT_MASK or len(self.cores) > _IDENT_MASK:
            raise ValueError(
                f"heap-key ident field supports up to {_IDENT_MASK} "
                f"banks/cores"
            )
        banks_per_channel = org.ranks_per_channel * org.banks_per_rank
        timings = config.timings
        self._channels = [
            ChannelState(faw=FawTracker(timings.cycles(timings.tfaw)))
            for _ in range(org.channels)
        ]
        self._schedulers = [
            make_scheduler(config.scheduler) for _ in range(org.channels)
        ]
        page_policy = make_page_policy(config.page_policy)
        self.banks: List[BankController] = []
        for flat in range(self.num_banks):
            channel = flat // banks_per_channel
            scheme = scheme_factory() if scheme_factory else NoProtection()
            self.banks.append(
                BankController(
                    config=config,
                    scheme=scheme,
                    rfm_th=rfm_th,
                    flip_th=flip_th,
                    channel_state=self._channels[channel],
                    page_policy=page_policy,
                    track_hammer=track_hammer,
                )
            )
        self._bank_channel = [
            flat // banks_per_channel for flat in range(self.num_banks)
        ]
        # Flat-index -> BankAddress decode table: the organization math
        # happens once here instead of once per request.
        self._bank_address = [
            BankAddress(
                flat // banks_per_channel,
                (flat % banks_per_channel) // org.banks_per_rank,
                flat % org.banks_per_rank,
            )
            for flat in range(self.num_banks)
        ]
        #: Interned RowAddress per (flat bank, row); rows repeat heavily
        #: (row-buffer locality), so most requests reuse an instance.
        self._row_address: List[Dict[int, RowAddress]] = [
            {} for _ in range(self.num_banks)
        ]
        # Per-trace normalized flat bank index, one entry per request:
        # `entry.bank_index % num_banks` is evaluated once per trace
        # entry here and never in the issue path.
        self._core_flats = self._build_core_flats(traces, self.num_banks)
        self._bank_scheduled = [False] * self.num_banks
        # Per-bank queue occupancy by core (the scheduler's "contended"
        # bit) plus the queue length it was built against; an external
        # queue mutation (tests do this) is caught by the length guard.
        self._queue_cores: List[Dict[int, int]] = [
            {} for _ in range(self.num_banks)
        ]
        self._queue_len = [0] * self.num_banks
        self._heap: List[int] = []
        self._seq = 0
        self._core_last_completion = [0] * len(self.cores)
        self._core_served = [0] * len(self.cores)
        self.row_hits = 0
        self.row_misses = 0
        self._ran = False
        #: opt-in scheme-internals probe stream (REPRO_PROBES); None in
        #: the common case, and the run loops branch once on it so the
        #: probes-off hot path is unchanged.
        self._probe = _probes.attach(self)

    # ------------------------------------------------------------------

    def _build_core_flats(
        self, traces: Sequence[CoreTrace], num_banks: int
    ) -> List[List[int]]:
        """Issue-table hook: the turbo backend substitutes its SoA
        decode (possibly streamed in windows) for these full tables."""
        return [
            [entry.bank_index % num_banks for entry in trace.entries]
            for trace in traces
        ]

    def _push(self, cycle: int, kind: int, ident: int) -> None:
        self._seq += 1
        if self._seq >= _SEQ_LIMIT:
            raise OverflowError(
                f"event sequence exceeded {_SEQ_LIMIT} (heap-key seq field)"
            )
        heapq.heappush(
            self._heap,
            (((cycle << _SEQ_BITS) | self._seq) << _LOW_BITS)
            | (kind << _IDENT_BITS)
            | ident,
        )

    def _make_request(
        self, core_id: int, cycle: int, entry, flat: Optional[int] = None
    ) -> MemoryRequest:
        if flat is None:  # compatibility path for direct callers
            flat = entry.bank_index % self.num_banks
        row = entry.row
        interned = self._row_address[flat]
        address = interned.get(row)
        if address is None:
            address = RowAddress(self._bank_address[flat], row)
            interned[row] = address
        return MemoryRequest(
            core=core_id,
            arrival_cycle=cycle,
            address=address,
            column=entry.column,
            is_write=entry.is_write,
        )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _try_issue(self, core: TraceCore, cycle: int) -> None:
        core_id = core.core_id
        entries = core.trace.entries
        total = len(entries)
        flats = self._core_flats[core_id]
        banks = self.banks
        queue_cores = self._queue_cores
        queue_len = self._queue_len
        scheduled = self._bank_scheduled
        mlp = core.mlp
        while core.index < total:
            if cycle < core.next_issue_cycle:
                self._push(core.next_issue_cycle, _ISSUE, core_id)
                return
            index = core.index
            entry = entries[index]
            if not entry.is_write and core.outstanding_reads >= mlp:
                core.stalled_on_mlp = True
                return
            flat = flats[index]
            entry = core.issue(cycle)
            request = self._make_request(core_id, cycle, entry, flat)
            controller = banks[flat]
            controller.queue.append(request)
            occupancy = queue_cores[flat]
            occupancy[core_id] = occupancy.get(core_id, 0) + 1
            queue_len[flat] += 1
            if not scheduled[flat]:
                scheduled[flat] = True
                ready = controller.bank.ready_cycle
                self._push(ready if ready > cycle else cycle, _BANK, flat)

    def _bank_event(self, flat: int, cycle: int) -> None:
        self._bank_scheduled[flat] = False
        controller = self.banks[flat]
        queue = controller.queue
        qlen = len(queue)
        if not qlen:
            return

        # One bank event consults the throttle release of each queued
        # request up to three times (scheduler pick, the chosen
        # request, the retry minimum).  The release cannot change
        # within the event, so memoize it — keyed by request identity,
        # not row, so an override that inspects other request fields
        # (the hook receives the full request) stays exact — and when
        # the scheme keeps the default no-op throttle hook
        # (``never_throttles()`` checks live, so monkeypatches at any
        # level are honored), skip the bookkeeping entirely by handing
        # the scheduler ``None`` ("everything is released").
        if controller.never_throttles():
            release_of = None
        else:
            throttle = controller.throttle_release
            memo: Dict[int, int] = {}

            def release_of(request: MemoryRequest) -> int:
                key = id(request)
                release = memo.get(key)
                if release is None:
                    release = memo[key] = throttle(request, cycle)
                return release

        # Resync the per-queue core-occupancy map when the queue was
        # mutated behind the issue path (tests inject or remove
        # requests directly); the length guard catches every external
        # edit except a same-length in-place swap, which nothing does.
        occupancy = self._queue_cores[flat]
        if self._queue_len[flat] != qlen:
            occupancy.clear()
            for queued in queue:
                occupancy[queued.core] = occupancy.get(queued.core, 0) + 1
            self._queue_len[flat] = qlen

        scheduler = self._schedulers[self._bank_channel[flat]]
        if qlen == 1:
            # Single-candidate fast path: any scheduler either picks it
            # or abstains, and the abstain fallback picks it anyway.
            index = 0
            request = queue[0]
            if release_of is not None:
                release = release_of(request)
                if release > cycle:
                    self._bank_scheduled[flat] = True
                    self._push(
                        release if release > cycle + 1 else cycle + 1,
                        _BANK, flat,
                    )
                    return
            contended = False
        else:
            index = scheduler.pick(
                queue, controller.bank.open_row, cycle, release_of
            )
            abstained = index is None
            if abstained:
                # Scheduler abstained: fall back to the candidate whose
                # throttle releases first (oldest on ties).  The shipped
                # schedulers abstain only when every candidate is
                # throttled, but the Scheduler contract allows
                # abstaining for any reason, so the fallback must still
                # be able to serve a released request.
                if release_of is None:
                    index = min(
                        range(qlen),
                        key=lambda i: queue[i].arrival_cycle,
                    )
                else:
                    index = min(
                        range(qlen),
                        key=lambda i: (release_of(queue[i]),
                                       queue[i].arrival_cycle),
                    )
            request = queue[index]
            if release_of is not None:
                release = release_of(request)
                if release > cycle:
                    # Every candidate is throttled; retry at the
                    # earliest release (on the abstain path the chosen
                    # request already holds the queue minimum).
                    earliest = (
                        release if abstained
                        else min(release_of(r) for r in queue)
                    )
                    self._bank_scheduled[flat] = True
                    self._push(max(earliest, cycle + 1), _BANK, flat)
                    return
            contended = qlen > occupancy.get(request.core, 0)
        core_id = request.core
        queue.pop(index)
        count = occupancy.get(core_id, 1) - 1
        if count:
            occupancy[core_id] = count
        else:
            occupancy.pop(core_id, None)
        self._queue_len[flat] = qlen - 1
        result = controller.serve(request, cycle)
        scheduler.on_served(core_id, cycle, contended=contended)
        if result.row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        data_cycle = result.data_cycle
        if not request.is_write:
            self._push(data_cycle, _COMPLETE, core_id)
        self._core_served[core_id] += 1
        if data_cycle > self._core_last_completion[core_id]:
            self._core_last_completion[core_id] = data_cycle
        if qlen > 1:
            self._bank_scheduled[flat] = True
            ready = controller.bank.ready_cycle
            self._push(
                ready if ready > cycle + 1 else cycle + 1, _BANK, flat
            )

    def _complete_event(self, core_id: int, cycle: int) -> None:
        core = self.cores[core_id]
        core.on_read_complete(cycle)
        if core.stalled_on_mlp:
            core.stalled_on_mlp = False
            self._try_issue(core, cycle)

    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimulationResult:
        if self._ran:
            raise RuntimeError("a SimulatedSystem can only run once")
        self._ran = True
        heap = self._heap
        # Batch the initial issue events: build the list once and
        # heapify instead of N pushes (same (cycle, seq) order).
        for core in self.cores:
            self._seq += 1
            heap.append((self._seq << _LOW_BITS) | core.core_id)
        heapq.heapify(heap)
        heappop = heapq.heappop
        limit = float("inf") if max_cycles is None else max_cycles
        cores = self.cores
        try_issue = self._try_issue
        bank_event = self._bank_event
        complete_event = self._complete_event
        probe = self._probe
        if probe is None:
            while heap:
                key = heappop(heap)
                cycle = key >> _CYCLE_SHIFT
                if cycle > limit:
                    break
                kind = (key >> _IDENT_BITS) & 3
                ident = key & _IDENT_MASK
                if kind == _BANK:
                    bank_event(ident, cycle)
                elif kind == _ISSUE:
                    try_issue(cores[ident], cycle)
                else:
                    complete_event(ident, cycle)
        else:
            # Probing twin of the loop above: sample on the first event
            # at or past the schedule — every prior cycle fully applied,
            # the triggering cycle untouched — the same logical point
            # the turbo drains sample at, so streams match byte for
            # byte across backends.
            next_probe = probe.next_cycle
            while heap:
                key = heappop(heap)
                cycle = key >> _CYCLE_SHIFT
                if cycle > limit:
                    break
                if cycle >= next_probe:
                    probe.sample(self, cycle)
                    next_probe = probe.next_cycle
                kind = (key >> _IDENT_BITS) & 3
                ident = key & _IDENT_MASK
                if kind == _BANK:
                    bank_event(ident, cycle)
                elif kind == _ISSUE:
                    try_issue(cores[ident], cycle)
                else:
                    complete_event(ident, cycle)
        return self._collect()

    def _collect(self) -> SimulationResult:
        energy = EnergyCounts()
        flips = 0
        max_disturbance = 0.0
        acts = 0
        rfm_commands = 0
        rfm_elided = 0
        rfms_skipped = 0
        arr_requests = 0
        preventive_rows = 0
        arr_stalls = 0
        rfm_stalls = 0
        refresh_stalls = 0
        throttle_events = 0
        for controller in self.banks:
            energy = energy.merged(controller.energy)
            acts += controller.bank.act_count
            if controller.hammer is not None:
                flips += controller.hammer.flip_count
                max_disturbance = max(
                    max_disturbance, controller.hammer.max_disturbance
                )
            stats = controller.scheme.stats
            rfms_skipped += stats.rfms_skipped
            arr_requests += stats.arr_requests
            preventive_rows += stats.preventive_refresh_rows
            throttle_events += stats.throttle_events
            arr_stalls += controller.arr_stall_cycles
            rfm_stalls += controller.rfm_stall_cycles
            refresh_stalls += controller.refresh_stall_cycles
            if controller.rfm_logic is not None:
                rfm_commands += controller.rfm_logic.rfm_issued
                rfm_elided += controller.rfm_logic.rfm_elided
        scheme_name = self.banks[0].scheme.name if self.banks else "none"
        finishes = [
            self._core_last_completion[core.core_id] for core in self.cores
        ]
        result = SimulationResult(
            scheme_name=scheme_name,
            total_cycles=max(finishes) if finishes else 0,
            per_core_instructions=[
                core.total_instructions for core in self.cores
            ],
            per_core_finish_cycles=finishes,
            energy=energy,
            flips=flips,
            max_disturbance=max_disturbance,
            acts=acts,
            row_hits=self.row_hits,
            row_misses=self.row_misses,
            rfm_commands=rfm_commands,
            rfm_elided=rfm_elided,
            rfms_skipped=rfms_skipped,
            arr_requests=arr_requests,
            preventive_refresh_rows=preventive_rows,
            arr_stall_cycles=arr_stalls,
            rfm_stall_cycles=rfm_stalls,
            refresh_stall_cycles=refresh_stalls,
            throttle_events=throttle_events,
        )
        if self._probe is not None:
            # Turbo calls _collect after the arena write-back, so the
            # final record reads authoritative state on every backend.
            self._probe.finalize(self, result)
        return result


def make_system(
    traces: Sequence[CoreTrace],
    scheme_factory: Optional[Callable[[], ProtectionScheme]] = None,
    config: SystemConfig = DEFAULT_CONFIG,
    rfm_th: int = 0,
    flip_th: int = 10_000,
    mlp: int = 4,
    track_hammer: bool = True,
    backend: Optional[str] = None,
) -> "SimulatedSystem":
    """Build one system on the resolved backend (see repro.sim.backend).

    ``backend=None`` consults ``REPRO_SIM_BACKEND`` and defaults to
    ``scalar``; ``turbo`` silently degrades to ``scalar`` (with a
    one-line warning) when numpy is unavailable.  Results are
    byte-identical across backends — the golden suite runs both.
    """
    from repro.sim.backend import TURBO, resolve_backend

    if resolve_backend(backend) == TURBO:
        from repro.sim.turbo import TurboSimulatedSystem

        system_class = TurboSimulatedSystem
    else:
        system_class = SimulatedSystem
    return system_class(
        traces,
        scheme_factory=scheme_factory,
        config=config,
        rfm_th=rfm_th,
        flip_th=flip_th,
        mlp=mlp,
        track_hammer=track_hammer,
    )


def simulate(
    traces: Sequence[CoreTrace],
    scheme_factory: Optional[Callable[[], ProtectionScheme]] = None,
    config: SystemConfig = DEFAULT_CONFIG,
    rfm_th: int = 0,
    flip_th: int = 10_000,
    mlp: int = 4,
    track_hammer: bool = True,
    max_cycles: Optional[int] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Build and run one system; the one-call entry point for benches."""
    from repro import telemetry

    system = make_system(
        traces,
        scheme_factory=scheme_factory,
        config=config,
        rfm_th=rfm_th,
        flip_th=flip_th,
        mlp=mlp,
        track_hammer=track_hammer,
        backend=backend,
    )
    tel = telemetry.get()
    span = (
        tel.span(
            "sim.simulate",
            backend=type(system).__name__,
            cores=len(system.cores),
        )
        if tel is not None else telemetry.NOOP_SPAN
    )
    with span:
        return system.run(max_cycles=max_cycles)
