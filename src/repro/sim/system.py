"""The simulated system: event-driven co-simulation of cores, MC, DRAM.

The event loop carries three event kinds:

* ``issue`` — a core is ready to issue its next trace entry;
* ``bank`` — a bank is (possibly) free; the channel scheduler picks the
  next queued request for it;
* ``complete`` — a read's data burst finished; the owning core retires
  it and may unstall.

Banks serve one request at a time; the per-bank
:class:`~repro.mc.controller.BankController` folds in auto-refresh,
RFM issue, ARR stalls, throttling and the RowHammer fault model.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dram.bank import FawTracker
from repro.mc.controller import BankController, ChannelState
from repro.mc.pagepolicy import make_page_policy
from repro.mc.scheduler import make_scheduler
from repro.params import DEFAULT_CONFIG, SystemConfig
from repro.protection import NoProtection, ProtectionScheme
from repro.sim.core import TraceCore
from repro.sim.metrics import SimulationResult
from repro.types import BankAddress, EnergyCounts, MemoryRequest, RowAddress
from repro.workloads.trace import CoreTrace


class SimulatedSystem:
    """One full system instance, runnable once."""

    def __init__(
        self,
        traces: Sequence[CoreTrace],
        scheme_factory: Optional[Callable[[], ProtectionScheme]] = None,
        config: SystemConfig = DEFAULT_CONFIG,
        rfm_th: int = 0,
        flip_th: int = 10_000,
        mlp: int = 4,
        track_hammer: bool = True,
    ):
        if not traces:
            raise ValueError("need at least one core trace")
        self.config = config
        self.cores = [
            TraceCore(core_id=i, trace=trace, mlp=mlp)
            for i, trace in enumerate(traces)
        ]
        org = config.organization
        self.num_banks = org.total_banks
        banks_per_channel = org.ranks_per_channel * org.banks_per_rank
        timings = config.timings
        self._channels = [
            ChannelState(faw=FawTracker(timings.cycles(timings.tfaw)))
            for _ in range(org.channels)
        ]
        self._schedulers = [
            make_scheduler(config.scheduler) for _ in range(org.channels)
        ]
        page_policy = make_page_policy(config.page_policy)
        self.banks: List[BankController] = []
        for flat in range(self.num_banks):
            channel = flat // banks_per_channel
            scheme = scheme_factory() if scheme_factory else NoProtection()
            self.banks.append(
                BankController(
                    config=config,
                    scheme=scheme,
                    rfm_th=rfm_th,
                    flip_th=flip_th,
                    channel_state=self._channels[channel],
                    page_policy=page_policy,
                    track_hammer=track_hammer,
                )
            )
        self._bank_channel = [
            flat // banks_per_channel for flat in range(self.num_banks)
        ]
        self._bank_scheduled = [False] * self.num_banks
        self._heap: List[Tuple[int, int, str, int]] = []
        self._seq = 0
        self._core_last_completion = [0] * len(self.cores)
        self._core_served = [0] * len(self.cores)
        self.row_hits = 0
        self.row_misses = 0
        self._ran = False

    # ------------------------------------------------------------------

    def _push(self, cycle: int, kind: str, ident: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (cycle, self._seq, kind, ident))

    def _make_request(self, core_id: int, cycle: int, entry) -> MemoryRequest:
        org = self.config.organization
        banks_per_channel = org.ranks_per_channel * org.banks_per_rank
        flat = entry.bank_index % self.num_banks
        channel = flat // banks_per_channel
        within = flat % banks_per_channel
        rank = within // org.banks_per_rank
        bank = within % org.banks_per_rank
        address = RowAddress(BankAddress(channel, rank, bank), entry.row)
        return MemoryRequest(
            core=core_id,
            arrival_cycle=cycle,
            address=address,
            column=entry.column,
            is_write=entry.is_write,
        )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _try_issue(self, core: TraceCore, cycle: int) -> None:
        while not core.done_issuing():
            if cycle < core.next_issue_cycle:
                self._push(core.next_issue_cycle, "issue", core.core_id)
                return
            entry = core.peek()
            if not entry.is_write and core.outstanding_reads >= core.mlp:
                core.stalled_on_mlp = True
                return
            entry = core.issue(cycle)
            request = self._make_request(core.core_id, cycle, entry)
            flat = entry.bank_index % self.num_banks
            self.banks[flat].queue.append(request)
            if not self._bank_scheduled[flat]:
                self._bank_scheduled[flat] = True
                start = max(cycle, self.banks[flat].bank.ready_cycle)
                self._push(start, "bank", flat)

    def _bank_event(self, flat: int, cycle: int) -> None:
        self._bank_scheduled[flat] = False
        controller = self.banks[flat]
        queue = controller.queue
        if not queue:
            return
        scheduler = self._schedulers[self._bank_channel[flat]]

        def release_of(request: MemoryRequest) -> int:
            return controller.throttle_release(request, cycle)

        index = scheduler.pick(queue, controller.bank.open_row, cycle, release_of)
        abstained = index is None
        if abstained:
            # Scheduler abstained: fall back to the candidate whose
            # throttle releases first (oldest on ties).  The shipped
            # schedulers abstain only when every candidate is
            # throttled, but the Scheduler contract allows abstaining
            # for any reason, so the fallback must still be able to
            # serve a released request.
            index = min(
                range(len(queue)),
                key=lambda i: (release_of(queue[i]), queue[i].arrival_cycle),
            )
        request = queue[index]
        release = release_of(request)
        if release > cycle:
            # Every candidate is throttled; retry at the earliest
            # release (on the abstain path the chosen request already
            # holds the queue minimum).
            earliest = (
                release if abstained
                else min(release_of(r) for r in queue)
            )
            self._bank_scheduled[flat] = True
            self._push(max(earliest, cycle + 1), "bank", flat)
            return
        contended = any(r.core != request.core for r in queue)
        queue.pop(index)
        result = controller.serve(request, cycle)
        scheduler.on_served(request.core, cycle, contended=contended)
        if result.row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        core_id = request.core
        if request.is_read:
            self._push(result.data_cycle, "complete", core_id)
        self._core_served[core_id] += 1
        if result.data_cycle > self._core_last_completion[core_id]:
            self._core_last_completion[core_id] = result.data_cycle
        if queue:
            self._bank_scheduled[flat] = True
            self._push(
                max(controller.bank.ready_cycle, cycle + 1), "bank", flat
            )

    def _complete_event(self, core_id: int, cycle: int) -> None:
        core = self.cores[core_id]
        core.on_read_complete(cycle)
        if core.stalled_on_mlp:
            core.stalled_on_mlp = False
            self._try_issue(core, cycle)

    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimulationResult:
        if self._ran:
            raise RuntimeError("a SimulatedSystem can only run once")
        self._ran = True
        for core in self.cores:
            self._push(0, "issue", core.core_id)
        while self._heap:
            cycle, _seq, kind, ident = heapq.heappop(self._heap)
            if max_cycles is not None and cycle > max_cycles:
                break
            if kind == "issue":
                self._try_issue(self.cores[ident], cycle)
            elif kind == "bank":
                self._bank_event(ident, cycle)
            else:
                self._complete_event(ident, cycle)
        return self._collect()

    def _collect(self) -> SimulationResult:
        energy = EnergyCounts()
        flips = 0
        max_disturbance = 0.0
        acts = 0
        rfm_commands = 0
        rfm_elided = 0
        rfms_skipped = 0
        arr_requests = 0
        preventive_rows = 0
        arr_stalls = 0
        rfm_stalls = 0
        refresh_stalls = 0
        throttle_events = 0
        for controller in self.banks:
            energy = energy.merged(controller.energy)
            acts += controller.bank.act_count
            if controller.hammer is not None:
                flips += controller.hammer.flip_count
                max_disturbance = max(
                    max_disturbance, controller.hammer.max_disturbance
                )
            stats = controller.scheme.stats
            rfms_skipped += stats.rfms_skipped
            arr_requests += stats.arr_requests
            preventive_rows += stats.preventive_refresh_rows
            throttle_events += stats.throttle_events
            arr_stalls += controller.arr_stall_cycles
            rfm_stalls += controller.rfm_stall_cycles
            refresh_stalls += controller.refresh_stall_cycles
            if controller.rfm_logic is not None:
                rfm_commands += controller.rfm_logic.rfm_issued
                rfm_elided += controller.rfm_logic.rfm_elided
        scheme_name = self.banks[0].scheme.name if self.banks else "none"
        finishes = [
            self._core_last_completion[core.core_id] for core in self.cores
        ]
        return SimulationResult(
            scheme_name=scheme_name,
            total_cycles=max(finishes) if finishes else 0,
            per_core_instructions=[
                core.total_instructions for core in self.cores
            ],
            per_core_finish_cycles=finishes,
            energy=energy,
            flips=flips,
            max_disturbance=max_disturbance,
            acts=acts,
            row_hits=self.row_hits,
            row_misses=self.row_misses,
            rfm_commands=rfm_commands,
            rfm_elided=rfm_elided,
            rfms_skipped=rfms_skipped,
            arr_requests=arr_requests,
            preventive_refresh_rows=preventive_rows,
            arr_stall_cycles=arr_stalls,
            rfm_stall_cycles=rfm_stalls,
            refresh_stall_cycles=refresh_stalls,
            throttle_events=throttle_events,
        )


def simulate(
    traces: Sequence[CoreTrace],
    scheme_factory: Optional[Callable[[], ProtectionScheme]] = None,
    config: SystemConfig = DEFAULT_CONFIG,
    rfm_th: int = 0,
    flip_th: int = 10_000,
    mlp: int = 4,
    track_hammer: bool = True,
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Build and run one system; the one-call entry point for benches."""
    system = SimulatedSystem(
        traces,
        scheme_factory=scheme_factory,
        config=config,
        rfm_th=rfm_th,
        flip_th=flip_th,
        mlp=mlp,
        track_hammer=track_hammer,
    )
    return system.run(max_cycles=max_cycles)
