"""Simulation backend selection: ``scalar`` (default) vs ``turbo``.

The two backends are *byte-identical in results* — the golden suite
runs every scheme × workload pair under both — and differ only in how
the event loop executes:

* ``scalar`` — the reference implementation in
  :class:`repro.sim.system.SimulatedSystem`; pure python, runs
  anywhere, the patch-friendly path every unit test exercises.
* ``turbo`` — :class:`repro.sim.turbo.TurboSimulatedSystem`; requires
  numpy (structure-of-arrays trace pre-decode) and fuses the
  per-event call chain into an epoch-batched drain loop.

Selection: the ``backend=`` argument of
:func:`repro.sim.system.simulate` wins, else the
``REPRO_SIM_BACKEND`` environment variable, else ``scalar``.  Asking
for ``turbo`` without numpy degrades to ``scalar`` with a one-line
warning (once per process) — a numpy-less environment stays fully
functional.

The backend is an implementation detail, **not** a result dimension:
job hashes and cache payloads are independent of it (asserted by
tests/unit/test_backend.py).
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV = "REPRO_SIM_BACKEND"

SCALAR = "scalar"
TURBO = "turbo"
BACKENDS = (SCALAR, TURBO)

_warned_fallback = False


def numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend(requested: Optional[str] = None) -> str:
    """The backend to run: explicit request > env var > scalar.

    Unknown names raise; ``turbo`` without numpy falls back to
    ``scalar`` with a single warning.
    """
    global _warned_fallback
    name = requested or os.environ.get(BACKEND_ENV) or SCALAR
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"use one of {', '.join(BACKENDS)}"
        )
    if name == TURBO and not numpy_available():
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                "turbo simulation backend requested but numpy is not "
                "installed; falling back to the scalar backend "
                "(results are identical, only slower)",
                RuntimeWarning,
                stacklevel=2,
            )
        return SCALAR
    return name
