"""Command-level tracing of a simulation run.

A :class:`CommandTracer` hooks into the per-bank controllers and logs
every DRAM command (ACT/PRE/REF/RFM/ARR events) with its cycle —
useful for debugging scheduler behaviour, for validating command
legality offline, and for feeding the device-level model with real
command streams.

Tracing is opt-in: the hot simulation path never pays for it unless a
tracer is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.types import CommandKind


@dataclass(frozen=True)
class TracedCommand:
    cycle: int
    bank: int
    kind: CommandKind
    row: Optional[int] = None
    core: Optional[int] = None


class CommandTracer:
    """Accumulates a bounded command log across banks."""

    def __init__(self, capacity: int = 1_000_000):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.commands: List[TracedCommand] = []
        self.dropped = 0

    def record(
        self,
        cycle: int,
        bank: int,
        kind: CommandKind,
        row: Optional[int] = None,
        core: Optional[int] = None,
    ) -> None:
        if len(self.commands) >= self.capacity:
            self.dropped += 1
            return
        self.commands.append(
            TracedCommand(cycle=cycle, bank=bank, kind=kind, row=row,
                          core=core)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def counts_by_kind(self) -> Dict[CommandKind, int]:
        counts: Dict[CommandKind, int] = {}
        for command in self.commands:
            counts[command.kind] = counts.get(command.kind, 0) + 1
        return counts

    def per_bank(self, bank: int) -> List[TracedCommand]:
        return [c for c in self.commands if c.bank == bank]

    def acts_between(
        self, bank: int, start_cycle: int, end_cycle: int
    ) -> int:
        return sum(
            1
            for c in self.commands
            if c.bank == bank
            and c.kind is CommandKind.ACT
            and start_cycle <= c.cycle <= end_cycle
        )

    def rfm_cadence(self, bank: int) -> List[int]:
        """ACT counts between consecutive RFMs on a bank — should all
        equal RFM_TH under the paper's issue rule."""
        acts = 0
        cadence = []
        for command in self.commands:
            if command.bank != bank:
                continue
            if command.kind is CommandKind.ACT:
                acts += 1
            elif command.kind is CommandKind.RFM:
                cadence.append(acts)
                acts = 0
        return cadence

    def summary(self) -> Dict[str, object]:
        """Drop-accounting view of the log.

        ``total`` counts every command *offered* to the tracer;
        ``recorded``/``dropped`` split it at the capacity bound, so a
        truncated log is visible instead of silently passing for a
        complete one.  ``by_kind`` covers the recorded commands only
        (keyed by the command kind's name).
        """
        return {
            "total": len(self.commands) + self.dropped,
            "recorded": len(self.commands),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "truncated": self.dropped > 0,
            "by_kind": {
                kind.name: count
                for kind, count in sorted(
                    self.counts_by_kind().items(),
                    key=lambda kv: kv[0].name,
                )
            },
        }

    def verify_ordering(self) -> bool:
        """Commands on each bank must be cycle-ordered."""
        last: Dict[int, int] = {}
        for command in self.commands:
            if command.cycle < last.get(command.bank, -1):
                return False
            last[command.bank] = command.cycle
        return True

    def __len__(self) -> int:
        return len(self.commands)


def attach_tracer(system, tracer: Optional[CommandTracer] = None):
    """Instrument a :class:`~repro.sim.system.SimulatedSystem`.

    Wraps each bank controller's internals with recording callbacks.
    Returns the tracer.  Must be called before ``system.run()``.
    """
    # "tracer or ..." would discard a fresh tracer: an empty
    # CommandTracer is falsy through __len__.
    tracer = tracer if tracer is not None else CommandTracer()
    for flat, controller in enumerate(system.banks):
        _wrap_controller(controller, flat, tracer)
    return tracer


def _wrap_controller(controller, flat: int, tracer: CommandTracer) -> None:
    original_on_activated = controller._on_activated
    original_apply_rfm = controller._apply_rfm
    original_apply_arr = controller._apply_arr
    original_advance_refresh = controller.advance_refresh

    def on_activated(row, result):
        tracer.record(result.start_cycle, flat, CommandKind.ACT, row=row)
        return original_on_activated(row, result)

    def apply_rfm(cycle):
        tracer.record(cycle, flat, CommandKind.RFM)
        return original_apply_rfm(cycle)

    def apply_arr(victims, cycle):
        tracer.record(cycle, flat, CommandKind.ARR,
                      row=victims[0] if victims else None)
        return original_apply_arr(victims, cycle)

    def advance_refresh(cycle):
        before = controller.refresh.ticks_processed
        result = original_advance_refresh(cycle)
        after = controller.refresh.ticks_processed
        for _ in range(after - before):
            tracer.record(cycle, flat, CommandKind.REF)
        return result

    controller._on_activated = on_activated
    controller._apply_rfm = apply_rfm
    controller._apply_arr = apply_arr
    controller.advance_refresh = advance_refresh
