"""repro — reproduction of Mithril (HPCA 2022).

Mithril is the first RFM-interface-compatible, deterministic RowHammer
protection scheme.  This package implements the scheme, its analytical
safety bounds, every baseline the paper compares against, and the DDR5
memory-system simulator the evaluation needs.

Quickstart::

    from repro import MithrilScheme, paper_default_config, simulate
    from repro.workloads import mix_high

    cfg = paper_default_config(flip_th=6_250, adaptive_th=200)
    result = simulate(
        mix_high(num_requests=2000),
        scheme_factory=lambda: MithrilScheme(
            n_entries=cfg.n_entries, rfm_th=cfg.rfm_th,
            adaptive_th=cfg.adaptive_th,
        ),
        rfm_th=cfg.rfm_th,
        flip_th=cfg.flip_th,
    )
    print(result.summary())
"""

from repro.core.bounds import adaptive_bound, estimated_growth_bound
from repro.core.config import MithrilConfig, min_entries_for, paper_default_config
from repro.core.mithril import MithrilScheme, MithrilTable
from repro.params import (
    DEFAULT_CONFIG,
    DramOrganization,
    DramTimings,
    PAPER_FLIP_THRESHOLDS,
    SystemConfig,
)
from repro.protection import ProtectionScheme, build_scheme, scheme_names
from repro.sim import SimulationResult, simulate
from repro.verify import run_safety_trace

__version__ = "1.0.0"

__all__ = [
    "MithrilScheme",
    "MithrilTable",
    "MithrilConfig",
    "ProtectionScheme",
    "build_scheme",
    "scheme_names",
    "estimated_growth_bound",
    "adaptive_bound",
    "min_entries_for",
    "paper_default_config",
    "simulate",
    "SimulationResult",
    "run_safety_trace",
    "DramTimings",
    "DramOrganization",
    "SystemConfig",
    "DEFAULT_CONFIG",
    "PAPER_FLIP_THRESHOLDS",
    "__version__",
]
