"""Common interface for RowHammer protection schemes.

A scheme instance protects a *single DRAM bank* — this mirrors the
hardware, where the tracker structure is replicated per bank (Mithril,
TWiCe) or allocated per bank inside the MC (Graphene, BlockHammer).

The memory controller / simulator drives a scheme through:

* :meth:`on_activate` — every ACT to the bank.  The scheme may demand
  an immediate adjacent-row refresh (the legacy ARR path used by PARA,
  Graphene, TWiCe, CBT).
* :meth:`on_rfm` — every RFM command the MC issues to the bank (only
  when :attr:`uses_rfm` is true).  The scheme performs preventive
  refreshes inside the tRFM window (Mithril, PARFM, RFM-Graphene).
* :meth:`throttle_release` — consulted before scheduling an ACT;
  BlockHammer delays hazardous rows this way.
* :meth:`rfm_needed_flag` — the Mithril+ mode-register flag: the MC
  reads it (MRR) when the RAA counter saturates and skips the RFM
  command when the flag is clear.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.types import SchemeLocation


@dataclass
class SchemeStats:
    """Bookkeeping every scheme keeps, used by the energy model."""

    acts_observed: int = 0
    rfms_received: int = 0
    rfms_skipped: int = 0           #: adaptive refresh skipped the work
    arr_requests: int = 0
    preventive_refresh_rows: int = 0
    mrr_reads: int = 0
    throttle_events: int = 0


class ProtectionScheme(abc.ABC):
    """Per-bank RowHammer protection scheme."""

    #: where the scheme lives (Table I); affects the area model
    location: SchemeLocation = SchemeLocation.MC
    #: True when the MC must run RAA counters and issue RFM commands
    uses_rfm: bool = False
    #: True when the MC reads the mode register before issuing RFM (Mithril+)
    uses_mrr_gating: bool = False

    def __init__(self) -> None:
        self.stats = SchemeStats()

    @abc.abstractmethod
    def on_activate(self, row: int, cycle: int) -> List[int]:
        """Observe an ACT on ``row``; return victim rows needing ARR now.

        An empty list means no immediate action.  Non-empty lists are
        only meaningful for ARR-based (non-RFM) schemes: the simulator
        models the returned rows being refreshed right away, stalling
        the bank.
        """

    def on_rfm(self, cycle: int) -> List[int]:
        """Handle an RFM command; return rows preventively refreshed."""
        return []

    def on_autorefresh(self, first_row: int, last_row: int, cycle: int) -> None:
        """Observe the auto-refresh of rows [first_row, last_row]."""

    def rfm_needed_flag(self) -> bool:
        """Mithril+ mode-register flag (True: the RFM is worth issuing)."""
        return True

    def throttle_release(self, row: int, cycle: int) -> int:
        """Earliest cycle the given row may be activated (throttling)."""
        return cycle

    @property
    def name(self) -> str:
        return type(self).__name__

    def table_entries(self) -> int:
        """Number of tracker entries (0 for probabilistic schemes)."""
        return 0


SchemeFactory = Callable[[], ProtectionScheme]

_REGISTRY: Dict[str, Callable[..., ProtectionScheme]] = {}


def register_scheme(name: str):
    """Class decorator registering a scheme under ``name``."""

    def decorator(cls):
        _REGISTRY[name] = cls
        cls.registry_name = name
        return cls

    return decorator


def scheme_names() -> List[str]:
    return sorted(_REGISTRY)


def build_scheme(name: str, **kwargs) -> ProtectionScheme:
    """Instantiate a registered scheme by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; known: {', '.join(scheme_names())}"
        ) from None
    return cls(**kwargs)


class NoProtection(ProtectionScheme):
    """Baseline: no RowHammer mitigation at all."""

    location = SchemeLocation.MC
    uses_rfm = False

    def on_activate(self, row: int, cycle: int) -> List[int]:
        self.stats.acts_observed += 1
        return []


_REGISTRY["none"] = NoProtection
