"""Workload substrate: trace format, benign generators, attack patterns."""

from repro.workloads.stats import WorkloadProfile, profile_traces
from repro.workloads.trace import CoreTrace, TraceEntry
from repro.workloads.synthetic import (
    random_access_trace,
    streaming_sweep_trace,
    strided_trace,
)
from repro.workloads.spec_like import mix_blend, mix_high
from repro.workloads.multithreaded import fft_like, pagerank_like, radix_like
from repro.workloads.attacks import (
    blockhammer_adversarial_trace,
    double_sided_trace,
    multi_sided_trace,
    rotation_attack_trace,
)

__all__ = [
    "CoreTrace",
    "TraceEntry",
    "WorkloadProfile",
    "profile_traces",
    "random_access_trace",
    "streaming_sweep_trace",
    "strided_trace",
    "mix_high",
    "mix_blend",
    "fft_like",
    "radix_like",
    "pagerank_like",
    "double_sided_trace",
    "multi_sided_trace",
    "rotation_attack_trace",
    "blockhammer_adversarial_trace",
]
