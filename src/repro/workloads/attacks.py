"""Adversarial access patterns.

* :func:`double_sided_trace` — the classic double-sided hammer: both
  neighbours of one victim are activated alternately; each neighbour
  needs only FlipTH/2 ACTs to flip the victim.
* :func:`multi_sided_trace` — the TRRespass-style multi-sided attack of
  Section VI-A (typically 32 victims): many aggressor pairs hammered in
  a rotation, defeating trackers with too few counters.
* :func:`rotation_attack_trace` — round-robin over ``num_rows`` rows;
  with ``num_rows > Nentry`` this is the concentration pattern the
  Theorem-1 proof bounds (it maximizes estimated-count growth).
* :func:`blockhammer_adversarial_trace` — the performance attack of
  Section VI-A: activate rows that alias with a benign thread's rows in
  BlockHammer's counting Bloom filter just enough to blacklist them,
  throttling the *benign* thread.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.streaming.counting_bloom import CountingBloomFilter
from repro.workloads.trace import CoreTrace, TraceEntry


def _act_entries(
    rows: Sequence[int],
    bank_index: int,
    total_requests: int,
    gap_cycles: int = 0,
) -> List[TraceEntry]:
    """Cycle over ``rows`` with row-miss accesses (every access ACTs)."""
    entries = []
    n = len(rows)
    for i in range(total_requests):
        entries.append(
            TraceEntry(
                gap_cycles=gap_cycles,
                bank_index=bank_index,
                row=rows[i % n],
                column=i % 128,
                is_write=False,
                instructions=1,
            )
        )
    return entries


def double_sided_trace(
    victim_row: int = 1000,
    bank_index: int = 0,
    total_requests: int = 8000,
    name: str = "double-sided",
) -> CoreTrace:
    """Alternate ACTs on victim_row-1 and victim_row+1."""
    rows = [victim_row - 1, victim_row + 1]
    return CoreTrace(
        name=name,
        entries=_act_entries(rows, bank_index, total_requests),
        memory_intensive=True,
    )


def multi_sided_trace(
    num_victims: int = 32,
    base_row: int = 2000,
    bank_index: int = 0,
    total_requests: int = 8000,
    name: str = "multi-sided",
) -> CoreTrace:
    """TRRespass pattern: aggressor rows interleaved with many victims.

    Aggressors sit at even offsets, victims at odd offsets between
    them, so every aggressor hammers two victims and every interior
    victim is double-sided.
    """
    aggressors = [base_row + 2 * i for i in range(num_victims + 1)]
    return CoreTrace(
        name=name,
        entries=_act_entries(aggressors, bank_index, total_requests),
        memory_intensive=True,
    )


def rotation_attack_trace(
    num_rows: int,
    base_row: int = 4000,
    row_stride: int = 2,
    bank_index: int = 0,
    total_requests: int = 8000,
    name: str = "rotation",
) -> CoreTrace:
    """Round-robin over many distinct rows (tracker-thrashing pattern)."""
    if num_rows <= 0:
        raise ValueError(f"num_rows must be positive, got {num_rows}")
    rows = [base_row + row_stride * i for i in range(num_rows)]
    return CoreTrace(
        name=name,
        entries=_act_entries(rows, bank_index, total_requests),
        memory_intensive=True,
    )


def _vectorized_probe_matrix(cbf: CountingBloomFilter, search_space: int):
    """(search_space, k) probe-index matrix, or None without numpy.

    The attacker's profiling sweep batch-probes the whole search space
    in one vectorized hash pass
    (:meth:`~repro.streaming.vectorized.NumpyCountingBloomFilter.probe_indices_many`);
    a numpy-less environment keeps the scalar filter's lazy per-row
    loops below — identical rows either way (same hash family and
    seed), asserted by tests/unit/test_attacks.py.
    """
    try:
        from repro.streaming.vectorized import NumpyCountingBloomFilter
    except ImportError:
        return None
    twin = NumpyCountingBloomFilter(cbf.size, cbf.num_hashes, cbf._seed)
    return twin.probe_indices_many(range(search_space))


def find_aliasing_rows(
    cbf: CountingBloomFilter,
    target_row: int,
    count: int,
    search_space: int = 65536,
    min_shared: int = 1,
) -> List[int]:
    """Rows sharing at least ``min_shared`` CBF counters with the target.

    This is the attacker's offline profiling step: BlockHammer's hash
    functions are not secret, so rows colliding with a benign thread's
    hot rows can be precomputed (batch-probed over the search space).
    """
    target_indices = set(cbf._indices(target_row))
    matrix = _vectorized_probe_matrix(cbf, search_space)
    if matrix is None:
        shared_of = lambda row: sum(  # noqa: E731
            1 for idx in cbf._indices(row) if idx in target_indices
        )
    else:
        import numpy as np

        targets = np.fromiter(
            target_indices, dtype=np.int64, count=len(target_indices)
        )
        counts = np.isin(matrix, targets).sum(axis=1)
        shared_of = counts.__getitem__
    aliases = []
    for row in range(search_space):
        if row == target_row:
            continue
        if shared_of(row) >= min_shared:
            aliases.append(row)
            if len(aliases) >= count:
                break
    return aliases


def find_covering_rows(
    cbf: CountingBloomFilter,
    target_row: int,
    search_space: int = 65536,
) -> List[int]:
    """One alias row per CBF counter of the target.

    The blacklist estimate is the *minimum* of the target's counters,
    so the attacker must inflate all of them.  For each counter index
    of the target, pick a different row that also hashes there —
    hammering the set raises every counter and thus the minimum.
    """
    needed = list(dict.fromkeys(cbf._indices(target_row)))
    matrix = _vectorized_probe_matrix(cbf, search_space)
    covers: List[int] = []
    if matrix is not None:
        import numpy as np

        for index in needed:
            for row in np.flatnonzero((matrix == index).any(axis=1)):
                row = int(row)
                if row != target_row and row not in covers:
                    covers.append(row)
                    break
        return covers
    for index in needed:
        for row in range(search_space):
            if row == target_row or row in covers:
                continue
            if index in cbf._indices(row):
                covers.append(row)
                break
    return covers


def blockhammer_adversarial_trace(
    benign_rows: Sequence[int],
    cbf_size: int,
    blacklist_threshold: int,
    bank_index: int = 0,
    total_requests: int = 8000,
    num_hashes: int = 4,
    seed: int = 0xB10F,
    name: str = "bh-adversarial",
) -> CoreTrace:
    """Blacklist benign rows by hammering their CBF aliases.

    The attacker activates rows covering every CBF counter of the
    benign thread's rows — pushing the shared counters over N_BL so
    that the *benign* accesses get throttled (Section VI-A).
    """
    probe = CountingBloomFilter(cbf_size, num_hashes=num_hashes, seed=seed)
    cover_groups: List[List[int]] = []
    for row in benign_rows:
        covers = find_covering_rows(probe, row)
        if covers:
            cover_groups.append(covers)
    if not cover_groups:
        cover_groups = [[row + 1, row + 3] for row in benign_rows]
    # Budget-aware: fully blacklist one benign row's cover group before
    # moving to the next.  Cycling within a group forces a row miss
    # (hence an ACT and a CBF count) on every access.
    margin = max(2, blacklist_threshold // 8)
    rows: List[int] = []
    for covers in cover_groups:
        if len(covers) == 1:
            covers = covers + [covers[0] + 2]
        per_alias = blacklist_threshold + margin
        for i in range(per_alias * len(covers)):
            rows.append(covers[i % len(covers)])
        if len(rows) >= total_requests:
            break
    if not rows:
        rows = [benign_rows[0] + 1, benign_rows[0] + 3]
    # Spend any remaining budget keeping the blacklists warm.
    recycle = [covers[i % len(covers)]
               for covers in cover_groups
               for i in range(len(covers))]
    while len(rows) < total_requests:
        rows.extend(recycle)
    return CoreTrace(
        name=name,
        entries=_act_entries(rows[:total_requests], bank_index,
                             total_requests),
        memory_intensive=True,
    )
