"""Multi-threaded workload substitutes: FFT, RADIX (SPLASH-2), PageRank (GAP).

Threads of one program share a footprint; the generators split the
shared data among cores the way the real kernels do:

* FFT — each thread sweeps its partition with power-of-two strides
  between phases (butterfly exchanges touch rows shared with siblings);
* RADIX — counting phase sweeps the local partition, permute phase
  scatters across the whole footprint;
* PageRank — destination-vertex accesses are near-uniform over the
  entire graph (very low row locality, high ACT rate).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.trace import CoreTrace, TraceEntry


def _entries_from_logical(
    logical_rows: np.ndarray,
    gaps: np.ndarray,
    writes: np.ndarray,
    num_banks: int,
    rows_per_bank: int = 65536,
) -> List[TraceEntry]:
    return [
        TraceEntry(
            gap_cycles=int(gaps[i]),
            bank_index=int(logical_rows[i]) % num_banks,
            row=(int(logical_rows[i]) // num_banks) % rows_per_bank,
            column=i % 128,
            is_write=bool(writes[i]),
            instructions=int(gaps[i]) + 1,
        )
        for i in range(len(logical_rows))
    ]


def fft_like(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    footprint_rows: int = 16384,
    mean_gap: float = 24.0,
    seed: int = 21,
) -> List[CoreTrace]:
    """FFT: partitioned sweeps with stride-doubling exchange phases."""
    rng = np.random.default_rng(seed)
    partition = footprint_rows // num_cores
    traces = []
    for core in range(num_cores):
        gaps = np.maximum(
            0, rng.exponential(mean_gap, size=num_requests).astype(np.int64)
        )
        writes = rng.random(num_requests) < 0.5
        logical = np.empty(num_requests, dtype=np.int64)
        base = core * partition
        stride = 1
        position = 0
        phase_len = max(1, num_requests // 8)
        for i in range(num_requests):
            if i % phase_len == 0 and i > 0:
                stride = min(stride * 2, footprint_rows // 2)
                position = 0
            logical[i] = (base + (position % partition)) % footprint_rows
            # exchange phase: every 4th access goes to a sibling partition
            if stride > 1 and i % 4 == 3:
                logical[i] = (logical[i] + stride) % footprint_rows
            position += 1 if stride == 1 else stride
        traces.append(
            CoreTrace(
                name=f"fft-t{core}",
                entries=_entries_from_logical(logical, gaps, writes, num_banks),
                memory_intensive=True,
            )
        )
    return traces


def radix_like(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    footprint_rows: int = 16384,
    mean_gap: float = 20.0,
    seed: int = 22,
) -> List[CoreTrace]:
    """RADIX: local counting sweep then global scatter (permute)."""
    rng = np.random.default_rng(seed)
    partition = footprint_rows // num_cores
    traces = []
    for core in range(num_cores):
        gaps = np.maximum(
            0, rng.exponential(mean_gap, size=num_requests).astype(np.int64)
        )
        writes = rng.random(num_requests) < 0.5
        half = num_requests // 2
        local = core * partition + (np.arange(half) // 8) % partition
        scatter = rng.integers(0, footprint_rows, size=num_requests - half)
        logical = np.concatenate([local, scatter])
        traces.append(
            CoreTrace(
                name=f"radix-t{core}",
                entries=_entries_from_logical(logical, gaps, writes, num_banks),
                memory_intensive=True,
            )
        )
    return traces


def pagerank_like(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    footprint_rows: int = 65536,
    mean_gap: float = 18.0,
    skew: float = 0.75,
    seed: int = 23,
) -> List[CoreTrace]:
    """PageRank: power-law vertex popularity over a huge footprint."""
    rng = np.random.default_rng(seed)
    traces = []
    # Zipf-ish vertex popularity shared by all threads.
    ranks = np.arange(1, footprint_rows + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    for core in range(num_cores):
        gaps = np.maximum(
            0, rng.exponential(mean_gap, size=num_requests).astype(np.int64)
        )
        writes = rng.random(num_requests) < 0.15
        logical = rng.choice(footprint_rows, size=num_requests, p=weights)
        traces.append(
            CoreTrace(
                name=f"pagerank-t{core}",
                entries=_entries_from_logical(logical, gaps, writes, num_banks),
                memory_intensive=True,
            )
        )
    return traces
