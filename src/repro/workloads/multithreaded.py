"""Multi-threaded workload substitutes: FFT, RADIX (SPLASH-2), PageRank (GAP).

Threads of one program share a footprint; the generators split the
shared data among cores the way the real kernels do:

* FFT — each thread sweeps its partition with power-of-two strides
  between phases (butterfly exchanges touch rows shared with siblings);
* RADIX — counting phase sweeps the local partition, permute phase
  scatters across the whole footprint;
* PageRank — destination-vertex accesses are near-uniform over the
  entire graph (very low row locality, high ACT rate).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.nprng import default_rng, zipf_weights
from repro.workloads.trace import CoreTrace, TraceEntry


def _gaps(rng, n: int, mean_gap: float) -> List[int]:
    """Exponential integer gaps.

    Deliberately NOT ``synthetic._gaps``: that helper short-circuits
    ``mean_gap <= 0`` without touching the RNG, while these generators
    have always drawn ``n`` variates unconditionally — unifying would
    shift the draw stream and change historical traces bit-for-bit.
    """
    return [
        g if g > 0 else 0
        for g in map(int, rng.exponential(mean_gap, size=n))
    ]


def _entries_from_logical(
    logical_rows: Sequence[int],
    gaps: Sequence[int],
    writes: Sequence[bool],
    num_banks: int,
    rows_per_bank: int = 65536,
) -> List[TraceEntry]:
    return [
        TraceEntry(
            gap_cycles=int(gaps[i]),
            bank_index=int(logical_rows[i]) % num_banks,
            row=(int(logical_rows[i]) // num_banks) % rows_per_bank,
            column=i % 128,
            is_write=bool(writes[i]),
            instructions=int(gaps[i]) + 1,
        )
        for i in range(len(logical_rows))
    ]


def fft_like(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    footprint_rows: int = 16384,
    mean_gap: float = 24.0,
    seed: int = 21,
) -> List[CoreTrace]:
    """FFT: partitioned sweeps with stride-doubling exchange phases."""
    rng = default_rng(seed)
    partition = footprint_rows // num_cores
    traces = []
    for core in range(num_cores):
        gaps = _gaps(rng, num_requests, mean_gap)
        writes = [v < 0.5 for v in rng.random(num_requests)]
        logical = [0] * num_requests
        base = core * partition
        stride = 1
        position = 0
        phase_len = max(1, num_requests // 8)
        for i in range(num_requests):
            if i % phase_len == 0 and i > 0:
                stride = min(stride * 2, footprint_rows // 2)
                position = 0
            logical[i] = (base + (position % partition)) % footprint_rows
            # exchange phase: every 4th access goes to a sibling partition
            if stride > 1 and i % 4 == 3:
                logical[i] = (logical[i] + stride) % footprint_rows
            position += 1 if stride == 1 else stride
        traces.append(
            CoreTrace(
                name=f"fft-t{core}",
                entries=_entries_from_logical(logical, gaps, writes, num_banks),
                memory_intensive=True,
            )
        )
    return traces


def radix_like(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    footprint_rows: int = 16384,
    mean_gap: float = 20.0,
    seed: int = 22,
) -> List[CoreTrace]:
    """RADIX: local counting sweep then global scatter (permute)."""
    rng = default_rng(seed)
    partition = footprint_rows // num_cores
    traces = []
    for core in range(num_cores):
        gaps = _gaps(rng, num_requests, mean_gap)
        writes = [v < 0.5 for v in rng.random(num_requests)]
        half = num_requests // 2
        local = [
            core * partition + (i // 8) % partition for i in range(half)
        ]
        scatter = rng.integers(0, footprint_rows, size=num_requests - half)
        logical = local + list(scatter)
        traces.append(
            CoreTrace(
                name=f"radix-t{core}",
                entries=_entries_from_logical(logical, gaps, writes, num_banks),
                memory_intensive=True,
            )
        )
    return traces


def pagerank_like(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    footprint_rows: int = 65536,
    mean_gap: float = 18.0,
    skew: float = 0.75,
    seed: int = 23,
) -> List[CoreTrace]:
    """PageRank: power-law vertex popularity over a huge footprint."""
    rng = default_rng(seed)
    traces = []
    # Zipf-ish vertex popularity shared by all threads (bit-identical
    # with and without numpy; see nprng.zipf_weights).
    weights = zipf_weights(footprint_rows, skew)
    for core in range(num_cores):
        gaps = _gaps(rng, num_requests, mean_gap)
        writes = [v < 0.15 for v in rng.random(num_requests)]
        logical = rng.choice(footprint_rows, size=num_requests, p=weights)
        traces.append(
            CoreTrace(
                name=f"pagerank-t{core}",
                entries=_entries_from_logical(logical, gaps, writes, num_banks),
                memory_intensive=True,
            )
        )
    return traces
