"""Workload characterization: the statistics Figure 8 is built from.

Quantifies the properties the adaptive-refresh argument (Section V-A)
rests on: per-row access-burst lengths, row reuse distances, footprint,
bank balance, and the ACT-per-access amplification a row-buffer with a
given burst limit would see.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.workloads.trace import CoreTrace, interleave_round_robin


@dataclass
class WorkloadProfile:
    """Summary statistics of one or more core traces."""

    total_requests: int
    write_fraction: float
    footprint_rows: int
    banks_touched: int
    bank_imbalance: float          #: max/mean requests per bank
    mean_burst_length: float       #: consecutive same-(bank,row) runs
    max_burst_length: int
    act_per_access_estimate: float  #: with an idealized open row buffer
    reuse_distance_p50: Optional[float]
    reuse_distance_p90: Optional[float]
    hottest_row_share: float       #: fraction of requests to hottest row

    def summary(self) -> Dict[str, float]:
        return {
            "total_requests": self.total_requests,
            "write_fraction": round(self.write_fraction, 4),
            "footprint_rows": self.footprint_rows,
            "banks_touched": self.banks_touched,
            "bank_imbalance": round(self.bank_imbalance, 3),
            "mean_burst_length": round(self.mean_burst_length, 2),
            "max_burst_length": self.max_burst_length,
            "act_per_access_estimate": round(
                self.act_per_access_estimate, 4
            ),
            "reuse_distance_p50": self.reuse_distance_p50,
            "reuse_distance_p90": self.reuse_distance_p90,
            "hottest_row_share": round(self.hottest_row_share, 4),
        }


def _percentile(sorted_values: Sequence[float], fraction: float):
    if not sorted_values:
        return None
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def profile_traces(traces: Iterable[CoreTrace]) -> WorkloadProfile:
    """Characterize the merged request stream of the given traces.

    Requests are interleaved round-robin across cores, approximating
    the arrival interleaving the memory controller sees.
    """
    merged = interleave_round_robin(traces)
    if not merged:
        raise ValueError("traces contain no requests")

    writes = sum(1 for e in merged if e.is_write)
    locations = [(e.bank_index, e.row) for e in merged]
    row_counts = Counter(locations)
    bank_counts = Counter(e.bank_index for e in merged)

    # burst lengths: consecutive same-(bank,row) runs
    bursts = []
    run = 1
    for previous, location in zip(locations, locations[1:]):
        if location == previous:
            run += 1
        else:
            bursts.append(run)
            run = 1
    bursts.append(run)

    # per-bank open-row model: an access misses when the previous
    # access to the same bank touched a different row.
    open_row: Dict[int, int] = {}
    misses = 0
    for entry in merged:
        if open_row.get(entry.bank_index) != entry.row:
            misses += 1
        open_row[entry.bank_index] = entry.row

    # reuse distances: distinct (bank, row) locations between visits
    last_seen: Dict[Tuple[int, int], int] = {}
    stamp = 0
    distances: List[int] = []
    seen_since: Dict[Tuple[int, int], set] = defaultdict(set)
    # O(n * d) exact reuse distance is too slow; approximate with
    # request-count distance, which preserves ordering of percentiles.
    for index, location in enumerate(locations):
        if location in last_seen:
            distances.append(index - last_seen[location])
        last_seen[location] = index
    distances.sort()

    mean_requests_per_bank = len(merged) / max(1, len(bank_counts))
    return WorkloadProfile(
        total_requests=len(merged),
        write_fraction=writes / len(merged),
        footprint_rows=len(row_counts),
        banks_touched=len(bank_counts),
        bank_imbalance=max(bank_counts.values()) / mean_requests_per_bank,
        mean_burst_length=sum(bursts) / len(bursts),
        max_burst_length=max(bursts),
        act_per_access_estimate=misses / len(merged),
        reuse_distance_p50=_percentile(distances, 0.5),
        reuse_distance_p90=_percentile(distances, 0.9),
        hottest_row_share=max(row_counts.values()) / len(merged),
    )


def expected_tracker_spread(
    profile: WorkloadProfile, n_entries: int, rfm_th: int
) -> float:
    """First-order prediction of the Mithril-table spread a workload
    builds between RFMs: bounded by its burst concentration.

    A benign workload's spread stays near its typical per-row burst
    (the Section V-A observation that ~128-access sweeps keep spread
    under AdTH ~ 200); a hot-row workload's spread grows toward
    ``hottest_row_share * rfm_th`` per interval, accumulating if the
    row stays resident.
    """
    burst_component = profile.mean_burst_length
    hot_component = profile.hottest_row_share * rfm_th
    return max(burst_component, hot_component)
