"""Per-core memory trace format.

A trace entry is one post-LLC memory request plus the amount of core
work (instructions / cycles) separating it from the previous request.
Traces are the substitute for the paper's SPEC CPU2017 SimPoint traces
(see DESIGN.md): the mitigation overheads depend only on the resulting
ACT stream statistics, which the generators control explicitly.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


class _DeterministicGzip(gzip.GzipFile):
    """GzipFile whose header carries no filename and mtime 0.

    The stock header embeds both, so saving the same trace under two
    paths (or at two times) yields different bytes; pinning them keeps
    re-saves byte-identical — what TraceSet manifests' sha256 digests
    rely on.
    """

    def __init__(self, path, mode: str):
        self._raw = open(path, mode)
        super().__init__(filename="", mode=mode, fileobj=self._raw,
                         mtime=0)

    def close(self):
        try:
            super().close()
        finally:
            self._raw.close()


def open_trace_file(path, mode: str):
    """Open a trace file, transparently compressed when it ends ``.gz``."""
    path = Path(path)
    binary = "b" in mode
    if path.suffix == ".gz":
        raw = _DeterministicGzip(path, "wb" if "w" in mode else "rb")
        return raw if binary else io.TextIOWrapper(raw)
    return path.open(mode if binary else mode.rstrip("b"))


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One memory request of a core trace.

    ``gap_cycles`` — memory-clock cycles of core work since the
    previous request was *issued* (the throughput model of the core).
    ``instructions`` — instructions retired in that gap, used for IPC.
    Slotted: workloads hold hundreds of thousands of these.
    """

    gap_cycles: int
    bank_index: int
    row: int
    column: int = 0
    is_write: bool = False
    instructions: int = 0


@dataclass
class CoreTrace:
    """A whole core's request stream plus identification metadata."""

    name: str
    entries: List[TraceEntry] = field(default_factory=list)
    memory_intensive: bool = True
    #: (entry count, total) memo for :attr:`total_instructions` — the
    #: sum is O(n) and the simulator reads it once per core per run.
    _instruction_memo: Optional[Tuple[int, int]] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    @property
    def total_instructions(self) -> int:
        """Sum of per-entry instruction counts, memoized by length.

        Generators build traces by appending entries, which the length
        guard catches; in-place entry *replacement* (which no shipped
        code does) would require dropping ``_instruction_memo``.
        """
        memo = self._instruction_memo
        if memo is not None and memo[0] == len(self.entries):
            return memo[1]
        total = sum(entry.instructions for entry in self.entries)
        self._instruction_memo = (len(self.entries), total)
        return total

    def banks_touched(self) -> Sequence[int]:
        return sorted({entry.bank_index for entry in self.entries})

    # ------------------------------------------------------------------
    # (de)serialization — line-delimited JSON for easy inspection
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        with open_trace_file(path, "w") as handle:
            header = {
                "name": self.name,
                "memory_intensive": self.memory_intensive,
            }
            handle.write(json.dumps(header) + "\n")
            for entry in self.entries:
                record = [
                    entry.gap_cycles,
                    entry.bank_index,
                    entry.row,
                    entry.column,
                    int(entry.is_write),
                    entry.instructions,
                ]
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load(cls, path) -> "CoreTrace":
        with open_trace_file(path, "r") as handle:
            header = json.loads(handle.readline())
            entries = []
            for line in handle:
                gap, bank, row, column, write, instructions = json.loads(line)
                entries.append(
                    TraceEntry(
                        gap_cycles=gap,
                        bank_index=bank,
                        row=row,
                        column=column,
                        is_write=bool(write),
                        instructions=instructions,
                    )
                )
        return cls(
            name=header["name"],
            entries=entries,
            memory_intensive=header.get("memory_intensive", True),
        )


def merge_as_workload(traces: Iterable[CoreTrace]) -> List[CoreTrace]:
    """Validate a multi-core workload (one trace per core)."""
    result = list(traces)
    if not result:
        raise ValueError("a workload needs at least one core trace")
    return result


def interleave_round_robin(traces: Iterable[CoreTrace]) -> List[TraceEntry]:
    """Merge per-core streams round-robin, one entry per core per turn.

    The arrival-interleaving approximation both characterization
    layers (:func:`repro.workloads.stats.profile_traces` and
    :mod:`repro.traces.characterize`) analyze: close to what the
    memory controller sees without simulating timing.
    """
    iterators = [iter(t.entries) for t in traces]
    merged: List[TraceEntry] = []
    while iterators:
        alive = []
        for iterator in iterators:
            entry = next(iterator, None)
            if entry is not None:
                merged.append(entry)
                alive.append(iterator)
        iterators = alive
    return merged
