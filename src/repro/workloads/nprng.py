"""Seeded-RNG shim: numpy's ``Generator`` or the bit-exact pure fallback.

Every workload generator draws through :func:`default_rng`.  With
numpy installed it returns ``numpy.random.default_rng(seed)``
unchanged — the draws (and therefore every golden trace) are exactly
what they were when the generators imported numpy directly.  Without
numpy (or with ``REPRO_FORCE_PURE_RNG=1``, which the equivalence tests
use) it returns :class:`repro.purenp.rng.Generator`, which reproduces
the same draws bit for bit.

The generators were refactored to the subset of idioms that behaves
identically for ndarrays and plain lists: sized draws are consumed by
iteration / indexing plus explicit ``int()`` / ``bool()`` / ``<``
coercion, never by ndarray-only operations.
"""

from __future__ import annotations

import os
import struct
import warnings
from typing import List, Union

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy lane
    _np = None

FORCE_PURE_ENV = "REPRO_FORCE_PURE_RNG"


def numpy_available() -> bool:
    return _np is not None


def using_pure_rng() -> bool:
    """True when draws come from the pure fallback."""
    return _np is None or bool(os.environ.get(FORCE_PURE_ENV))


def default_rng(seed: int):
    """``numpy.random.default_rng`` or the pure bit-exact equivalent."""
    if using_pure_rng():
        from repro.purenp import default_rng as pure_default_rng

        return pure_default_rng(seed)
    return _np.random.default_rng(seed)


def _nudge_ulp(value: float, offset: int) -> float:
    bits = struct.unpack("<q", struct.pack("<d", value))[0]
    return struct.unpack("<d", struct.pack("<q", bits + offset))[0]


def zipf_weights(count: int, exponent: float) -> Union[List[float], object]:
    """Normalized ``1 / rank**exponent`` weights, rank = 1..count.

    The numpy path is the historical ``1.0 / np.power(ranks, exponent)``
    then ``/= sum``.  The pure path reproduces it bit for bit: numpy's
    SIMD ``pow`` differs from C libm by one ulp on ~6% of these inputs,
    so the vendored correction table (``repro.purenp._tables``) patches
    libm ``**`` for the default pagerank parameterization; the
    normalization uses numpy's pairwise-summation order.
    """
    if not using_pure_rng():
        ranks = _np.arange(1, count + 1, dtype=_np.float64)
        weights = 1.0 / _np.power(ranks, exponent)
        weights /= weights.sum()
        return weights
    from repro.purenp import pairwise_sum
    from repro.purenp._tables import POW_CORRECTION_KEY, POW_CORRECTIONS

    corrections = {}
    if (count, exponent) == POW_CORRECTION_KEY:
        corrections = POW_CORRECTIONS
    else:
        warnings.warn(
            f"no vendored pow corrections for zipf_weights({count}, "
            f"{exponent}); the pure-RNG fallback uses libm pow, which "
            "can differ from numpy's by 1 ulp on ~6% of ranks (draws "
            "may then diverge from a numpy environment)",
            RuntimeWarning,
            stacklevel=2,
        )
    powers = []
    for rank in range(1, count + 1):
        value = float(rank) ** exponent
        offset = corrections.get(rank)
        if offset:
            value = _nudge_ulp(value, offset)
        powers.append(value)
    weights = [1.0 / value for value in powers]
    total = pairwise_sum(weights)
    return [weight / total for weight in weights]
