"""Base synthetic trace generators.

Three access primitives cover the behaviours the paper's workloads
exhibit:

* :func:`streaming_sweep_trace` — the lbm-style "large object sweep"
  of Figure 8: sequential sweep over a big footprint, concentrated
  per-row bursts, bank-interleaved;
* :func:`random_access_trace` — PageRank-style irregular accesses with
  almost no row locality (every access is an ACT);
* :func:`strided_trace` — FFT/RADIX-style strided phases.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

from typing import List

from repro.workloads.nprng import default_rng
from repro.workloads.trace import CoreTrace, TraceEntry


def _gaps(rng, n: int, mean_gap: float) -> List[int]:
    """Integer inter-request gaps with an exponential distribution.

    Identical under the numpy and pure generators: one sized
    ``exponential`` draw, truncated toward zero per element (what
    ``.astype(np.int64)`` did), clamped at zero.
    """
    if mean_gap <= 0:
        return [0] * n
    return [
        g if g > 0 else 0
        for g in map(int, rng.exponential(mean_gap, size=n))
    ]


def streaming_sweep_trace(
    name: str = "sweep",
    num_requests: int = 4000,
    num_banks: int = 64,
    rows_per_bank: int = 65536,
    accesses_per_row: int = 16,
    footprint_rows: int = 2048,
    mean_gap: float = 24.0,
    write_fraction: float = 0.3,
    start_row: int = 0,
    seed: int = 1,
) -> CoreTrace:
    """Sequential sweep: bursts of accesses per row, rows striped on banks."""
    if accesses_per_row <= 0:
        raise ValueError("accesses_per_row must be positive")
    rng = default_rng(seed)
    gaps = _gaps(rng, num_requests, mean_gap)
    writes = [v < write_fraction for v in rng.random(num_requests)]
    entries = []
    for i in range(num_requests):
        block = i // accesses_per_row
        logical_row = start_row + block % footprint_rows
        bank = logical_row % num_banks
        row = (logical_row // num_banks) % rows_per_bank
        entries.append(
            TraceEntry(
                gap_cycles=int(gaps[i]),
                bank_index=bank,
                row=row,
                column=i % accesses_per_row,
                is_write=bool(writes[i]),
                instructions=int(gaps[i]) + 1,
            )
        )
    return CoreTrace(name=name, entries=entries, memory_intensive=mean_gap < 64)


def random_access_trace(
    name: str = "random",
    num_requests: int = 4000,
    num_banks: int = 64,
    rows_per_bank: int = 65536,
    footprint_rows: int = 65536,
    mean_gap: float = 32.0,
    write_fraction: float = 0.2,
    seed: int = 2,
) -> CoreTrace:
    """Uniform random rows: near-zero locality, one ACT per access."""
    rng = default_rng(seed)
    gaps = _gaps(rng, num_requests, mean_gap)
    logical = rng.integers(0, footprint_rows, size=num_requests)
    columns = rng.integers(0, 128, size=num_requests)
    writes = [v < write_fraction for v in rng.random(num_requests)]
    entries = [
        TraceEntry(
            gap_cycles=int(gaps[i]),
            bank_index=int(logical[i]) % num_banks,
            row=(int(logical[i]) // num_banks) % rows_per_bank,
            column=int(columns[i]),
            is_write=bool(writes[i]),
            instructions=int(gaps[i]) + 1,
        )
        for i in range(num_requests)
    ]
    return CoreTrace(name=name, entries=entries, memory_intensive=mean_gap < 64)


def strided_trace(
    name: str = "strided",
    num_requests: int = 4000,
    num_banks: int = 64,
    rows_per_bank: int = 65536,
    stride_rows: int = 8,
    phase_length: int = 512,
    footprint_rows: int = 4096,
    mean_gap: float = 28.0,
    write_fraction: float = 0.4,
    seed: int = 3,
) -> CoreTrace:
    """Strided phases: FFT butterflies / radix-sort scatter behaviour."""
    rng = default_rng(seed)
    gaps = _gaps(rng, num_requests, mean_gap)
    writes = [v < write_fraction for v in rng.random(num_requests)]
    entries = []
    position = 0
    for i in range(num_requests):
        if i % phase_length == 0 and i > 0:
            position = int(rng.integers(0, footprint_rows))
        logical = position % footprint_rows
        position += stride_rows
        bank = logical % num_banks
        row = (logical // num_banks) % rows_per_bank
        entries.append(
            TraceEntry(
                gap_cycles=int(gaps[i]),
                bank_index=bank,
                row=row,
                column=i % 64,
                is_write=bool(writes[i]),
                instructions=int(gaps[i]) + 1,
            )
        )
    return CoreTrace(name=name, entries=entries, memory_intensive=mean_gap < 64)
