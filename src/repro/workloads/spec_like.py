"""SPEC-CPU2017-style multiprogrammed workload mixes.

The paper evaluates two 16-trace mixes:

* **mix-high** — 16 memory-intensive traces;
* **mix-blend** — 16 randomly selected traces (intensive and not).

The substitutes here compose the synthetic primitives with per-core
parameters drawn deterministically from the mix seed.  Memory-intensive
cores get small inter-request gaps and large sweeping footprints (the
lbm behaviour of Figure 8); compute-bound cores get large gaps and
small footprints.
"""

from __future__ import annotations

from typing import List

from repro.workloads.nprng import default_rng
from repro.workloads.synthetic import (
    random_access_trace,
    streaming_sweep_trace,
    strided_trace,
)
from repro.workloads.trace import CoreTrace


_GENERATORS = (streaming_sweep_trace, random_access_trace, strided_trace)


def _one_core(
    index: int,
    rng,
    num_requests: int,
    num_banks: int,
    intensive: bool,
) -> CoreTrace:
    kind = _GENERATORS[int(rng.integers(0, len(_GENERATORS)))]
    mean_gap = float(rng.uniform(16, 40) if intensive else rng.uniform(120, 400))
    seed = int(rng.integers(0, 2**31))
    kwargs = dict(
        name=f"core{index}-{kind.__name__.replace('_trace', '')}"
        + ("-mem" if intensive else "-cpu"),
        num_requests=num_requests,
        num_banks=num_banks,
        mean_gap=mean_gap,
        seed=seed,
    )
    if kind is streaming_sweep_trace:
        kwargs["footprint_rows"] = int(rng.integers(1024, 8192))
        kwargs["start_row"] = int(rng.integers(0, 32768))
    elif kind is random_access_trace:
        kwargs["footprint_rows"] = int(rng.integers(8192, 65536))
    else:
        kwargs["footprint_rows"] = int(rng.integers(2048, 16384))
        kwargs["stride_rows"] = int(rng.choice([2, 4, 8, 16]))
    trace = kind(**kwargs)
    trace.memory_intensive = intensive
    return trace


def mix_high(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    seed: int = 11,
) -> List[CoreTrace]:
    """mix-high: every core is memory intensive."""
    rng = default_rng(seed)
    return [
        _one_core(i, rng, num_requests, num_banks, intensive=True)
        for i in range(num_cores)
    ]


def mix_blend(
    num_cores: int = 16,
    num_requests: int = 4000,
    num_banks: int = 64,
    seed: int = 12,
) -> List[CoreTrace]:
    """mix-blend: a random half-and-half blend of intensities."""
    rng = default_rng(seed)
    intensities = [v < 0.5 for v in rng.random(num_cores)]
    if not any(intensities):
        intensities[0] = True
    return [
        _one_core(i, rng, num_requests, num_banks, intensive=bool(intensities[i]))
        for i in range(num_cores)
    ]
