"""Deterministic fault injection (``REPRO_FAULT_PLAN``).

Every robustness claim in this repo — supervised workers surviving
crashes, torn-write recovery, corrupt-entry quarantine — is backed by
a test that *provokes* the failure, and provoked failures must be
reproducible.  This module is the single switchboard: well-known
**injection points** (sites) in the executor, the result store, and
the campaign checkpointer ask :func:`maybe_fail` whether a fault plan
wants them to misbehave, and the plan answers deterministically.

A fault plan is JSON, supplied through the ``REPRO_FAULT_PLAN``
environment variable either inline (a string starting with ``{``) or
as a path to a ``.json`` file::

    {
      "state_dir": "chaos-state",
      "faults": [
        {"site": "worker.execute", "kind": "crash",
         "match": "ab12*", "times": 3},
        {"site": "worker.execute", "kind": "hang", "seconds": 600},
        {"site": "manifest.write", "kind": "torn", "times": 1},
        {"site": "cache.entry.write", "kind": "corrupt", "times": 1}
      ]
    }

Each rule names a *site*, a failure *kind*, an optional ``match``
glob against the site's key (usually a job hash; default ``*``), and a
firing budget ``times`` (default 1; ``null`` = unlimited).  The first
matching rule with budget left fires.  Budgets are claimed through
exclusive file creation under ``state_dir``, so they hold across the
supervisor and every (re-spawned) worker process; a plan loaded from a
file defaults its state dir to ``<file>.state``.  An inline plan
without a state dir falls back to in-process counters — fine for
serial tests, wrong for multi-process runs (each forked worker would
carry its own budget), so the supervisor tests always use a file.

Kinds:

``crash``
    Inside a supervised worker (or with ``"hard": true`` anywhere):
    ``os._exit(CRASH_EXIT_CODE)`` — indistinguishable from
    ``kill -9``.  Elsewhere: raises :class:`InjectedCrash`.
``hang``
    Sleeps ``seconds`` (default 3600).  Under a supervised lease the
    worker is killed when the lease expires; unsupervised callers
    really do hang, which is the point.
``error``
    Raises :class:`InjectedError` — an ordinary exception, exercising
    the structured traceback-capture path.
``torn`` / ``corrupt``
    Returned to the caller (the durable writer in
    :mod:`repro.engine.durable`), which tears the destination file
    mid-payload / flips the sealed checksum.  Only write sites
    implement them; other sites ignore the rule (budget still spent).
``drop`` / ``delay`` / ``duplicate``
    Returned to the caller — implemented by the cluster transport in
    :mod:`repro.cluster.transport`: a dropped message is never
    written, a delayed one carries a ``not_before`` stamp the receiver
    honours (``seconds`` sets the delay), a duplicated one is
    delivered twice.  ``drop`` on ``host.heartbeat`` is how a network
    partition is injected: the agent keeps working but its heartbeats
    vanish, so its host lease expires.

Documented sites (see docs/FAULTS.md): ``worker.execute`` (key = job
hash), ``cache.entry.write`` (job hash), ``manifest.write`` (campaign
name), ``index.append`` (cache generation), ``transport.send`` /
``transport.recv`` (``<mailbox>:<message type>``), ``host.heartbeat``
(host id).  Site names are free-form lowercase dotted identifiers —
a malformed name (empty, whitespace, uppercase) raises
:class:`FaultPlanError` at parse time rather than silently never
matching.
"""

from __future__ import annotations

import fnmatch
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Environment variable holding the plan (inline JSON or a file path).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code of an injected hard crash (lets tests and the supervisor
#: tell an injected kill from a real one).
CRASH_EXIT_CODE = 23

#: Set to True inside supervised worker processes: ``crash`` rules
#: then hard-exit instead of raising, simulating a killed worker.
IN_WORKER = False


class FaultPlanError(ValueError):
    """A fault plan that cannot be parsed or validated."""


class InjectedFault(RuntimeError):
    """Base of all exceptions raised by injected faults."""


class InjectedCrash(InjectedFault):
    """An injected crash at a site where the process must survive."""


class InjectedError(InjectedFault):
    """An injected ordinary failure (exercises traceback capture)."""


_KINDS = (
    "crash", "hang", "error", "torn", "corrupt",
    "drop", "delay", "duplicate",
)

#: Sites are dotted lowercase identifiers (``manifest.write``,
#: ``transport.send``).  The format is validated at parse time so a
#: typo'd site raises instead of silently never matching.
_SITE_RE = re.compile(r"[a-z0-9_-]+(\.[a-z0-9_-]+)*")


class FaultRule:
    """One parsed rule of a plan."""

    def __init__(self, data: Dict[str, Any], index: int):
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault rule #{index} is not an object")
        try:
            self.site = str(data["site"])
            self.kind = str(data["kind"])
        except KeyError as missing:
            raise FaultPlanError(
                f"fault rule #{index} lacks required key {missing}"
            ) from None
        if self.kind not in _KINDS:
            raise FaultPlanError(
                f"fault rule #{index} has unknown kind {self.kind!r}; "
                f"known: {', '.join(_KINDS)}"
            )
        if not _SITE_RE.fullmatch(self.site):
            raise FaultPlanError(
                f"fault rule #{index} has malformed site {self.site!r}; "
                "sites are dotted lowercase identifiers like "
                "'manifest.write'"
            )
        self.match = str(data.get("match", "*"))
        times = data.get("times", 1)
        if times is not None and (not isinstance(times, int) or times < 1):
            raise FaultPlanError(
                f"fault rule #{index}: times must be a positive int "
                f"or null, got {times!r}"
            )
        self.times: Optional[int] = times
        self.seconds = float(data.get("seconds", 3600.0))
        self.hard = bool(data.get("hard", False))
        self.index = index
        self.fired = 0  # in-process budget (no state_dir)

    def matches(self, site: str, key: str) -> bool:
        return site == self.site and fnmatch.fnmatchcase(key, self.match)


class FaultPlan:
    """A parsed ``REPRO_FAULT_PLAN`` with budget accounting."""

    def __init__(self, data: Dict[str, Any],
                 default_state_dir: Optional[Path] = None):
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        raw_rules = data.get("faults")
        if not isinstance(raw_rules, list) or not raw_rules:
            raise FaultPlanError(
                "fault plan must carry a non-empty 'faults' list"
            )
        self.rules: List[FaultRule] = [
            FaultRule(rule, index) for index, rule in enumerate(raw_rules)
        ]
        state = data.get("state_dir")
        self.state_dir: Optional[Path] = (
            Path(state) if state else default_state_dir
        )

    @classmethod
    def parse(cls, raw: str) -> "FaultPlan":
        raw = raw.strip()
        if raw.startswith("{"):
            try:
                return cls(json.loads(raw))
            except ValueError as error:
                raise FaultPlanError(
                    f"inline fault plan is not valid JSON: {error}"
                ) from error
        path = Path(raw)
        try:
            data = json.loads(path.read_text())
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {raw!r}: {error}"
            ) from error
        except ValueError as error:
            raise FaultPlanError(
                f"fault plan {raw!r} is not valid JSON: {error}"
            ) from error
        return cls(data, default_state_dir=Path(f"{path}.state"))

    # -- budget claiming ----------------------------------------------

    def _claim(self, rule: FaultRule) -> bool:
        """Atomically claim one firing of ``rule`` (False = exhausted)."""
        if rule.times is None:
            return True
        if self.state_dir is None:
            if rule.fired >= rule.times:
                return False
            rule.fired += 1
            return True
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        for n in range(rule.times):
            marker = self.state_dir / f"rule{rule.index}.fire{n}"
            try:
                fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    def take(self, site: str, key: str) -> Optional[FaultRule]:
        """The first matching rule with budget, its firing claimed."""
        for rule in self.rules:
            if rule.matches(site, key) and self._claim(rule):
                return rule
        return None


_plan_cache: Dict[str, FaultPlan] = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULT_PLAN``, or None.

    Parsed once per distinct environment value; a malformed plan
    raises :class:`FaultPlanError` loudly — silently disabled chaos
    would defeat the entire harness.
    """
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    plan = _plan_cache.get(raw)
    if plan is None:
        plan = _plan_cache[raw] = FaultPlan.parse(raw)
    return plan


def maybe_fail(site: str, key: str = "") -> Optional[FaultRule]:
    """Ask the active plan whether ``site`` should fail for ``key``.

    Performs process-level kinds in place (``crash``/``hang``/
    ``error``); returns the rule for caller-implemented kinds —
    ``torn``/``corrupt`` for the durable writer, ``drop``/``delay``/
    ``duplicate`` for the cluster transport — and None when nothing
    fires.
    """
    plan = active_plan()
    if plan is None:
        return None
    rule = plan.take(site, key)
    if rule is None:
        return None
    if rule.kind == "crash":
        if IN_WORKER or rule.hard:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected crash at {site}" + (f" ({key})" if key else "")
        )
    if rule.kind == "hang":
        time.sleep(rule.seconds)
        return None
    if rule.kind == "error":
        raise InjectedError(
            f"injected failure at {site}" + (f" ({key})" if key else "")
        )
    return rule
