"""DDR5 timing and organization parameters used throughout the reproduction.

The values follow Table III of the Mithril paper (HPCA 2022):

* DDR5-4800, 2 channels, 1 rank, 32 banks per rank
* tRFC = 295 ns, tRC = 48.64 ns, tRFM = 97.28 ns
* tRCD = tRP = tCL = 16.64 ns
* tREFW = 32 ms, tREFI = tREFW / 8192

All timings are stored in nanoseconds (floats) and converted to integer
memory-clock cycles on demand.  The simulator works in clock cycles so
that event ordering is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


#: DDR5-4800 command-clock period in nanoseconds (2400 MHz command clock).
DDR5_4800_TCK_NS = 1.0 / 2.4


@dataclass(frozen=True)
class DramTimings:
    """DRAM timing parameters, in nanoseconds.

    The defaults are the DDR5-4800 values from Table III of the paper.
    """

    tck: float = DDR5_4800_TCK_NS
    trc: float = 48.64       #: ACT-to-ACT on the same bank
    tras: float = 32.0       #: ACT-to-PRE minimum
    trp: float = 16.64       #: PRE-to-ACT
    trcd: float = 16.64      #: ACT-to-column command
    tcl: float = 16.64       #: column command to data
    tbl: float = 3.33        #: data-burst occupancy of the channel (BL16)
    trfc: float = 295.0      #: refresh cycle time (all-bank REF blockage)
    trfm: float = 97.28      #: RFM command time margin
    tfaw: float = 13.33      #: four-activation window per rank
    trrd: float = 3.33       #: ACT-to-ACT across banks of a rank
    trefw: float = 32e6      #: refresh window (32 ms)
    trefi: float = 32e6 / 8192.0  #: refresh interval (tREFW / 8192)

    def cycles(self, nanoseconds: float) -> int:
        """Convert a duration in nanoseconds to whole clock cycles."""
        return int(math.ceil(nanoseconds / self.tck - 1e-9))

    @property
    def trc_cycles(self) -> int:
        return self.cycles(self.trc)

    @property
    def trfc_cycles(self) -> int:
        return self.cycles(self.trfc)

    @property
    def trfm_cycles(self) -> int:
        return self.cycles(self.trfm)

    @property
    def trefi_cycles(self) -> int:
        return self.cycles(self.trefi)

    @property
    def trefw_cycles(self) -> int:
        return self.cycles(self.trefw)

    def acts_per_trefw(self) -> int:
        """Maximum single-bank ACT count within one tREFW window.

        The bank is unavailable for tRFC out of every tREFI, and each
        ACT occupies the bank for at least tRC.
        """
        usable = self.trefw * (1.0 - self.trfc / self.trefi)
        return int(usable / self.trc)

    def rfm_intervals_per_trefw(self, rfm_th: int) -> int:
        """``W`` of the paper: max RFM intervals within one tREFW.

        W = ceil((tREFW - (tREFW/tREFI) * tRFC) / (tRC * RFM_TH + tRFM))
        """
        if rfm_th <= 0:
            raise ValueError(f"rfm_th must be positive, got {rfm_th}")
        usable = self.trefw - (self.trefw / self.trefi) * self.trfc
        return int(math.ceil(usable / (self.trc * rfm_th + self.trfm)))


@dataclass(frozen=True)
class DramOrganization:
    """Main-memory organization (Table III defaults)."""

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 32
    rows_per_bank: int = 65536
    row_size_bytes: int = 8192
    cacheline_bytes: int = 64
    refresh_groups: int = 8192   #: row groups refreshed per tREFI tick

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def columns_per_row(self) -> int:
        return self.row_size_bytes // self.cacheline_bytes

    @property
    def rows_per_refresh_group(self) -> int:
        return max(1, self.rows_per_bank // self.refresh_groups)


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated-system configuration.

    Combines the DRAM organization and timings with the host-side
    parameters of the paper's evaluation setup (16 cores, BLISS
    scheduling, minimalist-open page policy).
    """

    timings: DramTimings = field(default_factory=DramTimings)
    organization: DramOrganization = field(default_factory=DramOrganization)
    num_cores: int = 16
    scheduler: str = "bliss"          #: "bliss" or "frfcfs"
    page_policy: str = "minimalist-open"  #: or "open" / "closed"
    core_clock_ghz: float = 3.6

    def with_timings(self, **kwargs) -> "SystemConfig":
        return replace(self, timings=replace(self.timings, **kwargs))

    def with_organization(self, **kwargs) -> "SystemConfig":
        return replace(self, organization=replace(self.organization, **kwargs))


#: Default configuration matching Table III of the paper.
DEFAULT_CONFIG = SystemConfig()

#: FlipTH values swept in the paper's evaluation (Figures 9-11, Table IV).
PAPER_FLIP_THRESHOLDS = (50_000, 25_000, 12_500, 6_250, 3_125, 1_500)

#: Default adaptive-refresh threshold used in the evaluation.
DEFAULT_ADAPTIVE_THRESHOLD = 200

#: BlockHammer (CBF size, blacklist threshold N_BL) pairs per FlipTH
#: from Section VI-A of the paper.
BLOCKHAMMER_CONFIGS = {
    50_000: (1024, 17_100),
    25_000: (1024, 8_600),
    12_500: (1024, 4_300),
    6_250: (2048, 2_100),
    3_125: (4096, 1_100),
    1_500: (8192, 490),
}

#: Paper's Mithril RFM_TH choice per FlipTH for the headline configuration
#: (Figure 9: high FlipTH fixes RFM_TH=256; the lowest uses 32).
MITHRIL_DEFAULT_RFM_TH = {
    50_000: 256,
    25_000: 256,
    12_500: 256,
    6_250: 128,
    3_125: 64,
    1_500: 32,
}
