"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
experiment <id>     Run a paper experiment (fig2, fig6, ..., table4).
                    ``--jobs N`` fans simulation jobs out over N worker
                    processes; ``--no-cache`` bypasses the on-disk
                    result cache (see docs/ENGINE.md);
                    ``--extra-workloads`` adds stress-family panels to
                    the drivers that support them (fig9, fig11).
list                List available experiments.
safety <scheme>     Replay an attack against a scheme and report.
configure           Print safe Mithril configurations for a FlipTH.
schemes             List registered protection schemes.
cache               Show (or clear / --gc / --migrate) the simulation
                    result cache; ``--stats`` for per-generation
                    size/age, ``--query`` against the sharded index.
campaign <cmd>      Declarative multi-experiment campaigns: list,
                    plan, run (resumable + fault-tolerant: retries,
                    per-job timeouts, quarantine, graceful drain;
                    ``--hosts N`` distributes over a coordinator +
                    host agents with leases and partition tolerance),
                    agent (one host agent, SSH-launchable), status,
                    verify (exactly-once store audit; exits 0 clean /
                    1 findings / 2 unreadable), report
                    (docs/CAMPAIGNS.md, docs/FAULTS.md).
bench-speed         Time simulate() on a preset; append to the
                    BENCH_SIM_SPEED.json speed trajectory
                    (``*-controlled`` labels are policed; see
                    --allow-uncontrolled).  ``--backend`` times the
                    scalar or turbo backend; ``--pairs N`` runs N
                    back-to-back scalar-vs-candidate pairs and
                    records the median pair (docs/ENGINE.md).
profile             cProfile one workload x scheme simulation
                    (``--backend {scalar,turbo}`` to compare the
                    per-phase split across backends).
traces <cmd>        Trace foundry: ingest external traces, synthesize
                    stress families, characterize ACT streams
                    (docs/WORKLOADS.md).
trace <cmd>         Telemetry consumers: export a run's merged event
                    timeline (``--format perfetto`` loads in the
                    Perfetto UI / chrome://tracing; ``--probes-dir``
                    adds probe counter tracks), or summarize it —
                    ``summary --top N`` lists the slowest spans
                    (docs/OBSERVABILITY.md).
probe report        Per-scheme panels (p50/p95/p99 time-series
                    summaries) from the probe streams a run recorded
                    under REPRO_PROBES / --probes
                    (docs/OBSERVABILITY.md).

``--log-level {debug,info,warning,error}`` (or ``REPRO_LOG``) turns on
stdlib logging; ``campaign status --follow`` tails live progress.
"""

from __future__ import annotations

import argparse
import importlib
import json
import logging
import os
import sys
from pathlib import Path

from repro.core.config import configuration_curve
from repro.experiments.runner import EXPERIMENTS
from repro.protection import build_scheme, scheme_names
from repro.verify.adversary import (
    double_sided_stream,
    many_sided_stream,
    round_robin_stream,
)
from repro.verify.safety import run_safety_trace


#: Environment fallback for ``--log-level``.
LOG_ENV = "REPRO_LOG"

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _configure_logging(level: str) -> None:
    """Wire stdlib logging for the ``repro`` tree.

    ``--log-level`` wins; falls back to ``REPRO_LOG``; default is
    logging off (a bare WARNING handler would still print supervisor
    worker-kill warnings mid-campaign, which existing CLI output
    already covers).
    """
    chosen = level or os.environ.get(LOG_ENV, "")
    chosen = chosen.strip().lower()
    if chosen not in _LOG_LEVELS:
        return
    logging.basicConfig(
        level=getattr(logging, chosen.upper()),
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        stream=sys.stderr,
    )


def _cmd_list(_args) -> int:
    for name, (_module, description) in EXPERIMENTS.items():
        print(f"{name:<16} {description}")
    return 0


def _cmd_schemes(_args) -> int:
    for name in scheme_names():
        print(name)
    return 0


def _apply_probes_flag(args) -> None:
    """``--probes DIR`` enables the probe layer for this process tree."""
    directory = getattr(args, "probes", None)
    if directory:
        from repro.sim.probes import PROBES_ENV

        os.environ[PROBES_ENV] = directory


def _cmd_experiment(args) -> int:
    import inspect

    _apply_probes_flag(args)
    module = importlib.import_module(EXPERIMENTS[args.id][0])
    kwargs = {
        "scale": args.scale,
        "n_jobs": args.jobs,
        "use_cache": not args.no_cache,
    }
    if args.extra_workloads:
        if "extra_workloads" not in inspect.signature(
            module.run
        ).parameters:
            print(
                f"experiment {args.id!r} does not support "
                "--extra-workloads (fig9 and fig11 do)"
            )
            return 1
        kwargs["extra_workloads"] = tuple(args.extra_workloads)
    result = module.run(**kwargs)
    if args.json:
        print(json.dumps(result, indent=2, default=str))
    elif args.markdown:
        from repro.analysis.report import format_experiment

        print(format_experiment(args.id, result))
    else:
        module.print_rows(result)
    return 0


def _cmd_fuzz(args) -> int:
    from repro.core.config import paper_default_config
    from repro.core.mithril import MithrilScheme
    from repro.verify.fuzzer import fuzz_scheme

    config = paper_default_config(args.flip_th, adaptive_th=200)
    results = fuzz_scheme(
        lambda: MithrilScheme(
            n_entries=config.n_entries,
            rfm_th=config.rfm_th,
            adaptive_th=config.adaptive_th,
        ),
        flip_th=args.flip_th,
        rfm_th=config.rfm_th,
        iterations=args.iterations,
        acts_per_pattern=args.acts,
        seed=args.seed,
    )
    print(f"{'pattern':<32} {'max disturbance':>16} {'flips':>6}")
    for result in results[:10]:
        print(
            f"{result.pattern.name:<32} "
            f"{result.report.max_disturbance:>16.0f} "
            f"{len(result.report.flips):>6}"
        )
    worst = results[0]
    print()
    print(
        f"worst pattern reached {worst.disturbance_ratio:.1%} of "
        f"FlipTH={args.flip_th}"
    )
    return 0 if all(r.report.safe for r in results) else 1


def _cmd_configure(args) -> int:
    configs = configuration_curve(args.flip_th, adaptive_th=args.adaptive_th)
    if not configs:
        print(f"no feasible configuration for FlipTH={args.flip_th}")
        return 1
    print(f"{'RFM_TH':>7} {'Nentry':>8} {'bound M':>10} {'table KB':>9}")
    for config in configs:
        print(
            f"{config.rfm_th:>7} {config.n_entries:>8} "
            f"{config.bound:>10.1f} {config.table_kilobytes():>9.3f}"
        )
    return 0


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (
                f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
            )
        value /= 1024
    return f"{value:.1f} GiB"


def _format_mtime(mtime) -> str:
    import time

    if mtime is None:
        return "-"
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(mtime))


def _cmd_cache_stats(cache, live: str) -> int:
    stats = cache.stats()
    if not stats:
        print("cache is empty")
        return 0
    print(f"{'generation':<18} {'entries':>8} {'bytes':>10} "
          f"{'oldest':>20} {'newest':>20}")
    for version, gen in stats.items():
        marker = " (live)" if version == live else ""
        print(
            f"{version:<18} {gen.entries:>8} "
            f"{_format_bytes(gen.total_bytes):>10} "
            f"{_format_mtime(gen.oldest_mtime):>20} "
            f"{_format_mtime(gen.newest_mtime):>20}{marker}"
        )
    return 0


def _cmd_cache_query(cache, live: str, query: str) -> int:
    criteria = {}
    for clause in query.split(","):
        if "=" not in clause:
            print(f"bad query clause {clause!r}; use key=value "
                  "(keys: scheme, workload, experiment, flip_th)")
            return 1
        key, value = clause.split("=", 1)
        key = key.strip()
        if key not in ("scheme", "workload", "experiment", "flip_th"):
            print(f"unknown query key {key!r}; "
                  "use scheme, workload, experiment, or flip_th")
            return 1
        if key == "flip_th":
            try:
                criteria[key] = int(value)
            except ValueError:
                print(f"flip_th must be an integer, got {value!r}")
                return 1
        else:
            criteria[key] = value.strip()
    records = cache.index(live).query(**criteria)
    total = sum(int(r.get("bytes") or 0) for r in records)
    print(f"{len(records)} entr{'y' if len(records) == 1 else 'ies'} "
          f"({_format_bytes(total)}) in generation {live} matching "
          + ",".join(f"{k}={v}" for k, v in criteria.items()))
    by_scheme = {}
    for record in records:
        key = (record.get("scheme"), record.get("workload"))
        by_scheme[key] = by_scheme.get(key, 0) + 1
    for (scheme, workload), count in sorted(
        by_scheme.items(), key=lambda item: str(item[0])
    ):
        print(f"  {scheme or '?':<14} {workload or '?':<26} {count:>6}")
    return 0


def _cmd_cache(args) -> int:
    from repro.engine import ResultCache, code_version

    cache = ResultCache()
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached result(s)")
        return 0
    if args.stats:
        return _cmd_cache_stats(cache, code_version())
    if args.query:
        return _cmd_cache_query(cache, code_version(), args.query)
    if args.migrate:
        moved = cache.migrate()
        print(f"moved {moved} flat entr{'y' if moved == 1 else 'ies'} "
              "into shards (index rebuilt)" if moved else
              "nothing to migrate (no flat entries in the live "
              "generation)")
        return 0
    if args.gc:
        if args.gc == "stale":
            removed = cache.gc_stale()
        else:
            try:
                removed = cache.gc(args.gc)
            except ValueError as error:
                print(error)
                return 1
        print(f"removed {removed} cached result(s)")
        return 0
    live = code_version()
    print(f"cache directory:  {cache.directory}")
    print(f"code version:     {live}")
    print(f"cached results:   {cache.entry_count()} (current version)")
    versions = cache.versions()
    dead = {v: n for v, n in versions.items() if v != live}
    if dead:
        print("dead generations (reclaim with --gc <version> or "
              "--gc stale):")
        for version, count in dead.items():
            print(f"  {version}  {count} entr{'y' if count == 1 else 'ies'}")
    return 0


def _cmd_bench_speed(args) -> int:
    from repro.speed import (
        UncontrolledSpeedClaim,
        run_and_report,
        run_controlled_pairs,
    )

    output = None if args.output == "-" else args.output
    try:
        if args.pairs:
            run_controlled_pairs(
                args.preset,
                args.pairs,
                args.label,
                output=output,
                candidate_backend=args.backend or "turbo",
                allow_uncontrolled=args.allow_uncontrolled,
            )
        else:
            run_and_report(
                args.preset,
                args.label,
                output=output,
                allow_uncontrolled=args.allow_uncontrolled,
                backend=args.backend,
            )
    except ValueError as error:  # incl. UncontrolledSpeedClaim
        print(f"refusing to record: {error}")
        return 1
    return 0


# ----------------------------------------------------------------------
# campaign — declarative multi-experiment campaigns (docs/CAMPAIGNS.md)
# ----------------------------------------------------------------------


def _cmd_campaign_list(_args) -> int:
    from repro.campaigns import builtin_campaigns

    for name, spec in sorted(builtin_campaigns().items()):
        print(f"{name:<14} {spec.description}")
        for experiment in spec.experiments:
            print(f"  {experiment.name:<18} ({experiment.kind})")
    return 0


def _print_plan_summary(summary) -> None:
    print(f"campaign: {summary['campaign']}")
    print(f"{'experiment':<20} {'driver':<8} {'points':>7}")
    for experiment in summary["experiments"]:
        print(f"{experiment['name']:<20} {experiment['kind']:<8} "
              f"{experiment['points']:>7}")
    print(f"{'TOTAL (requested)':<29} {summary['requested_points']:>7}")
    print(f"{'TOTAL (deduplicated)':<29} {summary['total_points']:>7}")
    print(f"{'shared across experiments':<29} "
          f"{summary['shared_points']:>7}")


def _cmd_campaign_plan(args) -> int:
    from repro.campaigns import CampaignError, get_campaign, plan_campaign

    try:
        spec = get_campaign(args.name)
        plan = plan_campaign(spec, scale=args.scale)
    except CampaignError as error:
        print(error)
        return 1
    if args.json:
        print(json.dumps(plan.summary(), indent=2))
        return 0
    _print_plan_summary(plan.summary())
    return 0


def _cmd_campaign_run(args) -> int:
    from repro.campaigns import (
        CampaignError,
        CampaignManifest,
        build_report,
        format_report,
        get_campaign,
        manifest_path,
        plan_campaign,
        run_campaign,
    )

    _apply_probes_flag(args)
    try:
        spec = get_campaign(args.name)
    except CampaignError as error:
        print(error)
        return 1
    if args.dry_run:
        try:
            plan = plan_campaign(spec, scale=args.scale)
        except CampaignError as error:
            print(error)
            return 1
        _print_plan_summary(plan.summary())
        # the same reconciliation a real run applies (for_plan drops
        # completion written by other code versions or stale plans),
        # so the predicted pending count matches what run would do —
        # without writing anything back.
        manifest = CampaignManifest.for_plan(
            manifest_path(spec.name, args.dir), plan
        )
        done = len(manifest.completed)
        print(f"dry run: would submit {plan.total_points - done} "
              f"point(s) ({done} already complete)")
        return 0
    try:
        if args.hosts > 0:
            if args.no_cache:
                print("campaign run --hosts requires the result store "
                      "(it is the cluster's data plane); drop --no-cache")
                return 1
            from repro.cluster import run_campaign_distributed

            result = run_campaign_distributed(
                spec,
                directory=args.dir,
                scale=args.scale,
                hosts=args.hosts,
                n_jobs=args.jobs,
                chunk_size=args.batch_size,
                progress=print,
                max_retries=args.max_retries,
                job_timeout=args.job_timeout,
                retry_quarantined=args.retry_quarantined,
                lease_timeout=args.lease_timeout,
                heartbeat_s=args.heartbeat,
            )
        else:
            result = run_campaign(
                spec,
                directory=args.dir,
                scale=args.scale,
                n_jobs=args.jobs,
                use_cache=not args.no_cache,
                batch_size=args.batch_size,
                progress=print,
                max_retries=args.max_retries,
                job_timeout=args.job_timeout,
                retry_quarantined=args.retry_quarantined,
            )
    except CampaignError as error:
        print(error)
        return 1
    stats = result.stats
    print(
        f"campaign {spec.name!r}: {stats.submitted} submitted "
        f"({stats.previously_complete} already complete), "
        f"{stats.simulated} simulated, {stats.cache_hits} cache hits"
    )
    if getattr(stats, "hosts", 0):
        print(
            f"cluster: {stats.hosts} host(s), {stats.chunks} chunk(s), "
            f"{stats.reassigned} reassigned, "
            f"{stats.duplicate_results} duplicate result(s) discarded, "
            f"{stats.hosts_lost} host(s) lost, "
            f"{stats.hosts_restarted} restarted"
        )
    print(f"manifest: {result.manifest_path}")
    if result.quarantined:
        print(f"quarantined ({len(result.quarantined)} point(s) — "
              "`campaign status` for diagnostics, rerun with "
              "--retry-quarantined to retry):")
        for job_hash, record in sorted(result.quarantined.items()):
            print(f"  {job_hash[:12]} {record.get('scheme')}/"
                  f"{record.get('workload')}: {record.get('reason')} "
                  f"after {record.get('attempts')} attempt(s)")
    if result.drained:
        print("drained: stopped on signal after checkpointing the "
              "in-flight batch; rerun the same command to resume")
    if result.complete and not args.no_report:
        report = build_report(
            spec, directory=args.dir, n_jobs=args.jobs,
            use_cache=not args.no_cache,
        )
        report_dir = result.manifest_path.parent
        (report_dir / "report.json").write_text(
            json.dumps(report, indent=2, default=str) + "\n"
        )
        (report_dir / "report.md").write_text(format_report(report))
        print(f"report: {report_dir / 'report.md'}")
    if result.drained:
        return 3
    if result.quarantined:
        return 2
    return 0


def _telemetry_dir_arg(args):
    """The telemetry dir to read: ``--telemetry-dir`` else the env."""
    from repro.telemetry import TELEMETRY_ENV

    explicit = getattr(args, "telemetry_dir", None)
    if explicit:
        return explicit
    return os.environ.get(TELEMETRY_ENV) or None


def _cmd_trace_export(args) -> int:
    from repro.telemetry import (
        event_files,
        merge_events,
        validate_perfetto,
        write_perfetto,
    )
    from repro.telemetry.perfetto import export_perfetto

    directory = _telemetry_dir_arg(args)
    if not directory:
        print("no telemetry directory: pass --telemetry-dir or set "
              "REPRO_TELEMETRY")
        return 1
    if not event_files(directory):
        print(f"no event streams under {directory}")
        return 1
    if args.format == "merged":
        lines = [
            json.dumps(record, sort_keys=True)
            for record in merge_events(directory)
        ]
        if args.output:
            Path(args.output).write_text("\n".join(lines) + "\n")
            print(f"wrote {len(lines)} merged event(s) to {args.output}")
        else:
            for line in lines:
                print(line)
        return 0
    probes_dir = _probes_dir_arg(args)
    if args.output:
        count = write_perfetto(directory, args.output,
                               probes_dir=probes_dir)
        problems = validate_perfetto(
            json.loads(Path(args.output).read_text())
        )
        if problems:
            print(f"export failed validation ({len(problems)} problem(s)):")
            for problem in problems[:10]:
                print(f"  {problem}")
            return 1
        print(f"wrote {count} trace event(s) to {args.output}")
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0
    payload = export_perfetto(directory, probes_dir=probes_dir)
    print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


def _cmd_trace_summary(args) -> int:
    from repro.telemetry import merge_events, summarize_events
    from repro.telemetry.events import slowest_spans

    directory = _telemetry_dir_arg(args)
    if not directory:
        print("no telemetry directory: pass --telemetry-dir or set "
              "REPRO_TELEMETRY")
        return 1
    events = merge_events(directory)
    summary = summarize_events(events)
    top = slowest_spans(events, limit=args.top)
    if args.json:
        payload = dict(summary)
        payload["slowest_spans"] = top
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"events:     {summary['total']}")
    print(f"processes:  {len(summary['processes'])}")
    for kind, count in sorted(summary["kinds"].items()):
        print(f"  {kind:<24} {count}")
    if summary["span_seconds"]:
        print("span seconds:")
        for name, seconds in sorted(
            summary["span_seconds"].items(), key=lambda kv: -kv[1]
        ):
            print(f"  {name:<24} {seconds:.3f}")
    if top:
        print(f"slowest spans (top {len(top)}):")
        for span in top:
            print(f"  {span['name']:<24} {span['dur']:.3f}s "
                  f"@+{span['start']:.3f}s pid={span['pid']}")
    return 0


def _probes_dir_arg(args):
    """The probe dir to read: ``--probes-dir`` else ``REPRO_PROBES``."""
    from repro.sim.probes import PROBES_ENV

    explicit = getattr(args, "probes_dir", None)
    if explicit:
        return explicit
    return os.environ.get(PROBES_ENV) or None


def _cmd_probe_report(args) -> int:
    from repro.analysis.probe_report import (
        build_probe_report,
        format_probe_report,
    )

    directory = _probes_dir_arg(args)
    if not directory:
        print("no probe directory: pass --probes-dir or set "
              "REPRO_PROBES")
        return 1
    report = build_probe_report(directory)
    if not report["streams"]:
        print(f"no probe streams under {directory}")
        return 1
    rendered = (
        json.dumps(report, indent=2, sort_keys=True)
        if args.json else format_probe_report(report)
    )
    if args.output:
        Path(args.output).write_text(rendered + (
            "" if rendered.endswith("\n") else "\n"
        ))
        print(f"wrote {args.output}")
        return 0
    print(rendered)
    return 0


def _cmd_campaign_status(args) -> int:
    from repro.campaigns import (
        CampaignError,
        CampaignManifest,
        get_campaign,
        manifest_path,
    )

    try:
        spec = get_campaign(args.name)
    except CampaignError as error:
        print(error)
        return 1
    if getattr(args, "follow", False):
        from repro.telemetry.progress import follow_campaign

        snap = follow_campaign(
            spec.name,
            directory=args.dir,
            telemetry_dir=_telemetry_dir_arg(args),
            interval=args.interval,
            ticks=args.ticks,
        )
        return 0 if snap and snap.get("remaining") == 0 else 1
    manifest = CampaignManifest.load(manifest_path(spec.name, args.dir))
    if manifest is None:
        print(f"campaign {spec.name!r} has never run "
              "(no manifest on disk)")
        return 1
    if args.json:
        payload = {
            "campaign": manifest.data.get("campaign"),
            "status": manifest.status,
            "total_points": manifest.data.get("total_points"),
            "completed_points": len(manifest.completed),
            "quarantined_points": len(manifest.quarantined),
            "quarantined": manifest.quarantined,
            "code_version": manifest.data.get("code_version"),
            "experiments": manifest.experiment_progress(),
            "runs": manifest.data.get("runs") or [],
            "notes": manifest.data.get("notes") or [],
        }
        print(json.dumps(payload, indent=2))
        return 0
    total = manifest.data.get("total_points") or 0
    done = len(manifest.completed)
    print(f"campaign:   {manifest.data.get('campaign')}")
    print(f"status:     {manifest.status} ({done}/{total} points)")
    print(f"code ver:   {manifest.data.get('code_version')}")
    for experiment in manifest.experiment_progress():
        line = (f"  {experiment['name']:<20} ({experiment['kind']}) "
                f"{experiment['completed']}/{experiment['points']}")
        if experiment.get("quarantined"):
            line += f" [{experiment['quarantined']} quarantined]"
        print(line)
    quarantined = manifest.quarantined
    if quarantined:
        print(f"quarantine: {len(quarantined)} point(s)")
        for job_hash, record in sorted(quarantined.items()):
            print(f"  {job_hash[:12]} {record.get('scheme')}/"
                  f"{record.get('workload')}: {record.get('reason')} "
                  f"after {record.get('attempts')} attempt(s) — "
                  f"{record.get('message')}")
    runs = manifest.data.get("runs") or []
    if runs:
        last = runs[-1]
        print(f"last run:   {last.get('finished')} — "
              f"{last.get('simulated', 0)} simulated, "
              f"{last.get('cache_hits', 0)} cache hits")
    for note in manifest.data.get("notes") or []:
        print(f"note:       {note}")
    return 0


def _cmd_campaign_verify(args) -> int:
    """Exit-code contract (docs/CAMPAIGNS.md):

    0 — clean: every planned point accounted for (``--strict`` also
        requires an empty quarantine);
    1 — findings: missing/corrupt/unaccounted/duplicate entries (or
        quarantined points under ``--strict``);
    2 — unreadable state: the campaign spec cannot be resolved or the
        store/campaign state cannot be read at all.
    """
    from repro.campaigns import CampaignError, get_campaign, verify_campaign

    try:
        spec = get_campaign(args.name)
        audit = verify_campaign(spec, directory=args.dir, scale=args.scale)
    except CampaignError as error:
        if args.json:
            print(json.dumps({"error": str(error), "exit_code": 2},
                             indent=2))
        else:
            print(error)
        return 2
    except OSError as error:
        if args.json:
            print(json.dumps({"error": str(error), "exit_code": 2},
                             indent=2))
        else:
            print(f"unreadable campaign state: {error}")
        return 2
    strict_ok = audit["ok"] and not audit["quarantined"]
    exit_code = 0 if (strict_ok if args.strict else audit["ok"]) else 1
    if args.json:
        payload = dict(audit)
        payload["strict_ok"] = strict_ok
        payload["exit_code"] = exit_code
        print(json.dumps(payload, indent=2))
    else:
        print(f"campaign:    {audit['campaign']}")
        print(f"planned:     {audit['planned']} point(s)")
        print(f"verified:    {audit['verified']} "
              "(present, seal-checked, exactly once)")
        for key in ("missing", "corrupt", "unaccounted", "duplicates"):
            values = audit[key]
            print(f"{key + ':':<13}{len(values)}"
                  + (f"  {' '.join(h[:12] for h in values[:8])}"
                     if values else ""))
        print(f"quarantined: {len(audit['quarantined'])}")
        for job_hash, record in sorted(audit["quarantined"].items()):
            print(f"  {job_hash[:12]} {record.get('scheme')}/"
                  f"{record.get('workload')}: {record.get('reason')}")
        if audit["store_quarantine_log"]:
            print(f"store quarantine log: "
                  f"{len(audit['store_quarantine_log'])} record(s)")
        print("verdict:     "
              + ("OK" if exit_code == 0 else "FAIL"))
    return exit_code


def _cmd_campaign_agent(args) -> int:
    """Run one host agent (normally exec'd by the coordinator).

    This is the process an SSH launcher would start on a remote host:
    it needs only the cluster spool directory (plus the shared result
    store via ``REPRO_CACHE_DIR``/``--cache-dir``) — assignments and
    results flow over the transport.
    """
    from repro.cluster import agent_main

    return agent_main(
        args.host_id,
        Path(args.cluster_dir),
        n_jobs=args.jobs,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
        cache_dir=args.cache_dir,
        heartbeat_s=args.heartbeat,
        parent_pid=args.parent_pid,
    )


def _cmd_campaign_report(args) -> int:
    from repro.campaigns import (
        CampaignError,
        build_report,
        format_report,
        get_campaign,
    )

    try:
        spec = get_campaign(args.name)
        report = build_report(
            spec, directory=args.dir, n_jobs=args.jobs,
            probes_dir=_probes_dir_arg(args),
        )
    except CampaignError as error:
        print(error)
        return 1
    rendered = (
        json.dumps(report, indent=2, default=str)
        if args.json else format_report(report)
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(rendered + (
            "" if rendered.endswith("\n") else "\n"
        ))
        print(f"wrote {args.output}")
        return 0
    print(rendered)
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    from repro.engine.executor import materialize_job
    from repro.engine.job import SimJob, WorkloadSpec
    from repro.sim.system import simulate

    spec = WorkloadSpec.make(args.workload, scale=args.scale)
    job = SimJob(workload=spec, scheme=args.scheme, flip_th=args.flip_th,
                 scale=args.scale)
    traces, factory, config, rfm_th = materialize_job(job)
    from repro.sim.backend import resolve_backend

    print(f"backend: {resolve_backend(args.backend)}")
    profiler = cProfile.Profile()
    profiler.enable()
    simulate(traces, scheme_factory=factory, config=config, rfm_th=rfm_th,
             flip_th=job.flip_th, mlp=job.mlp,
             track_hammer=job.track_hammer, max_cycles=job.max_cycles,
             backend=args.backend)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


# ----------------------------------------------------------------------
# traces — the trace-foundry command group (docs/WORKLOADS.md)
# ----------------------------------------------------------------------


def _print_characterization(char, heading=None) -> None:
    if heading:
        print(heading)
    summary = char.summary()
    cdf = summary.pop("row_locality_cdf")
    for key, value in summary.items():
        print(f"  {key:<22} {value}")
    points = "  ".join(f"<={k}:{v:.2f}" for k, v in sorted(cdf.items()))
    print(f"  {'row_locality_cdf':<22} {points}")


def _cmd_traces_list(_args) -> int:
    from repro.engine import TRACE_KIND_PREFIX, workload_kinds
    from repro.traces import mapping_names, reader_names

    print("workload kinds:")
    for kind in workload_kinds():
        print(f"  {kind}")
    print(f"  {TRACE_KIND_PREFIX}<path>  (an ingested TraceSet directory "
          "or trace file)")
    print("trace readers:")
    for name in reader_names():
        print(f"  {name}")
    print("mapping policies:")
    for name in mapping_names():
        print(f"  {name}")
    return 0


def _cmd_traces_synth(args) -> int:
    from repro.engine import build_workload
    from repro.engine.job import WorkloadSpec
    from repro.traces import DESIGN_TARGETS, TraceSet, design_violations

    params = dict(scale=args.scale, num_cores=args.cores,
                  num_banks=args.banks)
    if args.seed is not None:
        params["seed"] = args.seed
    spec = WorkloadSpec.make(args.kind, **params)
    try:
        traces = build_workload(spec)
    except (KeyError, TypeError, ValueError) as error:
        # unknown kind, or a kind whose builder needs parameters synth
        # does not expose (e.g. attack's `pattern`)
        print(f"cannot synthesize {args.kind!r}: {error}")
        return 1
    if args.check:
        if args.kind not in DESIGN_TARGETS:
            print(f"no design targets documented for {args.kind!r}")
        else:
            violations = design_violations(args.kind, traces)
            if violations:
                print(f"{args.kind} misses its design targets:")
                for violation in violations:
                    print(f"  {violation}")
                return 1
            print(f"{args.kind}: design targets met")
    traceset = TraceSet(
        name=args.name or args.kind,
        traces=traces,
        provenance={"kind": "generated", "generator": args.kind,
                    "params": dict(spec.params)},
    )
    manifest = traceset.save(args.output, format=args.format,
                             compress=args.gzip)
    requests = sum(len(t) for t in traces)
    print(f"wrote {len(traces)} core trace(s), {requests} requests "
          f"-> {manifest.parent}")
    return 0


def _cmd_traces_ingest(args) -> int:
    from repro.traces import ingest_files

    try:
        traceset = ingest_files(
            args.inputs,
            name=args.name,
            format=None if args.format == "auto" else args.format,
            mapping=args.mapping,
            mode="strict" if args.strict else "clamp",
        )
    except (OSError, KeyError, ValueError) as error:
        # missing/unreadable input, unknown format or mapping, parse or
        # geometry errors (TraceGeometryError is a ValueError)
        print(f"ingest failed: {error}")
        return 1
    manifest = traceset.save(args.output, format=args.write_format,
                             compress=args.gzip)
    requests = sum(len(t) for t in traceset.traces)
    print(f"ingested {len(traceset.traces)} trace(s), {requests} requests "
          f"-> {manifest.parent}")
    return 0


def _cmd_traces_characterize(args) -> int:
    from pathlib import Path

    from repro.traces import (
        TraceSet,
        characterize_traceset,
        read_trace,
    )

    path = Path(args.path)
    try:
        if path.is_dir():
            traceset = TraceSet.load(path)
        else:
            trace = read_trace(path)
            traceset = TraceSet(name=trace.name, traces=[trace])
        aggregate, per_core = characterize_traceset(traceset)
    except (OSError, KeyError, ValueError) as error:
        print(f"cannot characterize {args.path}: {error}")
        return 1
    if args.json:
        payload = {"aggregate": aggregate.summary()}
        if args.per_core:
            payload["cores"] = [c.summary() for c in per_core]
        print(json.dumps(payload, indent=2))
        return 0
    _print_characterization(
        aggregate,
        heading=f"{aggregate.name} ({len(per_core)} core(s), merged):",
    )
    if args.per_core:
        for core in per_core:
            _print_characterization(core, heading=f"{core.name}:")
    return 0


def _cmd_traces_smoke(args) -> int:
    """Build one tiny instance of every registered kind (CI smoke)."""
    from repro.engine import build_workload, smoke_workload_specs
    from repro.traces import characterize_workload

    for kind, spec in smoke_workload_specs(args.scale).items():
        traces = build_workload(spec)
        char = characterize_workload(traces, name=kind)
        print(
            f"{kind:<26} cores={len(traces)} requests={char.requests} "
            f"act/acc={char.act_per_access:.2f} "
            f"imbalance={char.bank_imbalance:.2f}"
        )
    return 0


_ATTACKS = {
    "double-sided": lambda acts: double_sided_stream(1000, acts),
    "many-sided": lambda acts: many_sided_stream(33, acts),
    "round-robin": lambda acts: round_robin_stream(1024, acts),
}


def _cmd_safety(args) -> int:
    kwargs = {}
    if args.scheme in ("mithril", "mithril+"):
        from repro.core.config import paper_default_config

        config = paper_default_config(args.flip_th, adaptive_th=200)
        kwargs = dict(
            n_entries=config.n_entries,
            rfm_th=config.rfm_th,
            adaptive_th=config.adaptive_th,
        )
        rfm_th = config.rfm_th
    else:
        rfm_th = args.rfm_th
        for key in ("graphene", "twice", "cbt", "blockhammer", "para"):
            if args.scheme == key:
                kwargs = dict(flip_th=args.flip_th)
    scheme = build_scheme(args.scheme, **kwargs)
    report = run_safety_trace(
        scheme,
        _ATTACKS[args.attack](args.acts),
        flip_th=args.flip_th,
        rfm_th=rfm_th,
    )
    print(f"scheme:            {report.scheme_name}")
    print(f"attack:            {args.attack} ({report.acts_replayed} ACTs)")
    print(f"flips:             {len(report.flips)}")
    print(f"max disturbance:   {report.max_disturbance:.0f} "
          f"(FlipTH {report.flip_th})")
    print(f"headroom:          {report.headroom:.1%}")
    print(f"preventive rows:   {report.preventive_refresh_rows}")
    print(f"rfm commands:      {report.rfm_commands}")
    return 0 if report.safe else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mithril (HPCA 2022) reproduction toolkit",
    )
    parser.add_argument(
        "--log-level", choices=_LOG_LEVELS, default=None,
        help="enable stdlib logging at this level "
             f"(or set {LOG_ENV}; default: off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("schemes", help="list schemes").set_defaults(
        func=_cmd_schemes
    )

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--scale", type=float, default=1.0,
                       help="trace-length multiplier (default 1.0)")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="worker processes for simulation jobs "
                            "(default 1 = serial; results are identical "
                            "at any setting)")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk simulation result cache")
    p_exp.add_argument("--extra-workloads", nargs="+", metavar="KIND",
                       help="extra workload kinds evaluated as "
                            "per-kind panels (fig9/fig11; e.g. the "
                            "stress families)")
    p_exp.add_argument("--json", action="store_true",
                       help="emit raw JSON rows")
    p_exp.add_argument("--markdown", action="store_true",
                       help="emit a markdown table")
    p_exp.add_argument("--probes", metavar="DIR", default=None,
                       help="record scheme-internals probe streams "
                            "under DIR (sets REPRO_PROBES; render with "
                            "`repro probe report`)")
    p_exp.set_defaults(func=_cmd_experiment)

    p_fuzz = sub.add_parser(
        "fuzz", help="randomized adversary search against Mithril"
    )
    p_fuzz.add_argument("--flip-th", type=int, default=3_125)
    p_fuzz.add_argument("--iterations", type=int, default=20)
    p_fuzz.add_argument("--acts", type=int, default=60_000)
    p_fuzz.add_argument("--seed", type=int, default=1337)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_cfg = sub.add_parser("configure", help="search Mithril configs")
    p_cfg.add_argument("flip_th", type=int)
    p_cfg.add_argument("--adaptive-th", type=int, default=0)
    p_cfg.set_defaults(func=_cmd_configure)

    p_cache = sub.add_parser(
        "cache", help="show or clear the simulation result cache"
    )
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached result")
    p_cache.add_argument("--gc", metavar="VERSION",
                         help="delete one dead code-version generation "
                              "('stale' = every non-live generation)")
    p_cache.add_argument("--stats", action="store_true",
                         help="per-generation entry count, bytes, and "
                              "oldest/newest entry times")
    p_cache.add_argument("--query", metavar="KEY=VALUE[,KEY=VALUE]",
                         help="count entries in the live generation by "
                              "scheme/workload/experiment/flip_th "
                              "(served from the sharded index)")
    p_cache.add_argument("--migrate", action="store_true",
                         help="move flat legacy entries of the live "
                              "generation into sharded directories")
    p_cache.set_defaults(func=_cmd_cache)

    p_campaign = sub.add_parser(
        "campaign",
        help="declarative multi-experiment campaigns (docs/CAMPAIGNS.md)",
    )
    csub = p_campaign.add_subparsers(dest="campaign_command", required=True)

    c_list = csub.add_parser("list", help="list built-in campaigns")
    c_list.set_defaults(func=_cmd_campaign_list)

    def _campaign_common(parser, with_scale=False):
        parser.add_argument("name",
                            help="built-in campaign name or spec .json")
        parser.add_argument("--dir", default=None,
                            help="campaign state directory (default "
                                 "REPRO_CAMPAIGN_DIR or "
                                 "~/.cache/repro/campaigns)")
        if with_scale:
            parser.add_argument("--scale", type=float, default=None,
                                help="override every experiment's "
                                     "trace-length scale")

    c_plan = csub.add_parser(
        "plan", help="expand a campaign into its deduplicated job pool"
    )
    _campaign_common(c_plan, with_scale=True)
    c_plan.add_argument("--json", action="store_true")
    c_plan.set_defaults(func=_cmd_campaign_plan)

    c_run = csub.add_parser(
        "run", help="run (or resume) a campaign; checkpoints per batch"
    )
    _campaign_common(c_run, with_scale=True)
    c_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes per batch")
    c_run.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache (resume still "
                            "skips manifest-completed points)")
    c_run.add_argument("--batch-size", type=int, default=16,
                       help="points per manifest checkpoint "
                            "(default 16)")
    c_run.add_argument("--dry-run", action="store_true",
                       help="print the plan and pending-point count "
                            "without simulating")
    c_run.add_argument("--no-report", action="store_true",
                       help="skip writing report.md/report.json on "
                            "completion")
    c_run.add_argument("--max-retries", type=int, default=2,
                       help="retry budget per job before quarantine "
                            "(crash, exception, or timeout; default 2)")
    c_run.add_argument("--job-timeout", type=float, default=None,
                       help="per-job lease in seconds; a job past its "
                            "lease gets its worker killed and retries")
    c_run.add_argument("--retry-quarantined", action="store_true",
                       help="clear the manifest quarantine and retry "
                            "those points this run")
    c_run.add_argument("--probes", metavar="DIR", default=None,
                       help="record scheme-internals probe streams "
                            "under DIR (sets REPRO_PROBES; render with "
                            "`repro probe report`)")
    c_run.add_argument("--hosts", type=int, default=0,
                       help="distribute over N host agents (separate "
                            "processes; 0 = single-host in-process "
                            "executor).  --jobs becomes the per-host "
                            "worker count, --batch-size the assignment "
                            "chunk size")
    c_run.add_argument("--lease-timeout", type=float, default=5.0,
                       help="seconds without a heartbeat before a "
                            "host's lease expires and its outstanding "
                            "jobs reassign (default 5)")
    c_run.add_argument("--heartbeat", type=float, default=0.5,
                       help="host agent heartbeat interval in seconds "
                            "(default 0.5)")
    c_run.set_defaults(func=_cmd_campaign_run)

    c_agent = csub.add_parser(
        "agent",
        help="run one host agent (normally spawned by `campaign run "
             "--hosts`; same entry point an SSH launcher would exec)",
    )
    c_agent.add_argument("--host-id", required=True,
                         help="logical host id (mailbox host-<id>)")
    c_agent.add_argument("--cluster-dir", required=True,
                         help="cluster spool directory "
                              "(<campaign dir>/<name>/cluster)")
    c_agent.add_argument("--jobs", type=int, default=1,
                         help="worker processes on this host")
    c_agent.add_argument("--max-retries", type=int, default=2)
    c_agent.add_argument("--job-timeout", type=float, default=None)
    c_agent.add_argument("--heartbeat", type=float, default=0.5,
                         help="heartbeat interval in seconds")
    c_agent.add_argument("--parent-pid", type=int, default=None,
                         help="exit when this pid disappears "
                              "(orphan cleanup for local launches)")
    c_agent.add_argument("--cache-dir", default=None,
                         help="result store override (defaults to "
                              "REPRO_CACHE_DIR)")
    c_agent.set_defaults(func=_cmd_campaign_agent)

    c_status = csub.add_parser(
        "status", help="progress of a campaign from its manifest"
    )
    _campaign_common(c_status)
    c_status.add_argument("--json", action="store_true")
    c_status.add_argument(
        "--follow", action="store_true",
        help="poll progress live (done/inflight/retried/quarantined, "
             "EMA throughput, ETA) until the campaign settles",
    )
    c_status.add_argument(
        "--interval", type=float, default=2.0,
        help="--follow poll interval in seconds (default 2)",
    )
    c_status.add_argument(
        "--ticks", type=int, default=None,
        help="stop --follow after N polls (default: until settled)",
    )
    c_status.add_argument(
        "--telemetry-dir", default=None,
        help="telemetry dir for inflight/retried counts "
             "(default: REPRO_TELEMETRY)",
    )
    c_status.set_defaults(func=_cmd_campaign_status)

    c_verify = csub.add_parser(
        "verify",
        help="audit exactly-once result integrity against the store",
    )
    _campaign_common(c_verify, with_scale=True)
    c_verify.add_argument("--json", action="store_true")
    c_verify.add_argument("--strict", action="store_true",
                          help="also fail on quarantined points "
                               "(the chaos CI gate)")
    c_verify.set_defaults(func=_cmd_campaign_verify)

    c_report = csub.add_parser(
        "report", help="render the campaign report (markdown or JSON)"
    )
    _campaign_common(c_report)
    c_report.add_argument("--jobs", type=int, default=1)
    c_report.add_argument("--json", action="store_true")
    c_report.add_argument("--output", default=None,
                          help="write to a file instead of stdout")
    c_report.add_argument("--probes-dir", default=None,
                          help="summarize probe streams under this "
                               "directory (default: REPRO_PROBES)")
    c_report.set_defaults(func=_cmd_campaign_report)

    from repro.speed import preset_names

    p_bench = sub.add_parser(
        "bench-speed", help="time simulate() and record the trajectory"
    )
    p_bench.add_argument("--preset", choices=preset_names(),
                         default="tiny")
    p_bench.add_argument("--label", default="dev",
                         help="entry label (e.g. baseline / optimized)")
    p_bench.add_argument("--output", default="BENCH_SIM_SPEED.json",
                         help="trajectory file to append to ('-' = none)")
    p_bench.add_argument("--allow-uncontrolled", action="store_true",
                         help="record a *-controlled entry even without "
                              "its back-to-back baseline-controlled "
                              "partner (warns instead of refusing)")
    p_bench.add_argument("--backend", choices=["scalar", "turbo"],
                         default=None,
                         help="simulation backend to time (default: "
                              "REPRO_SIM_BACKEND or scalar); with "
                              "--pairs this is the candidate backend")
    p_bench.add_argument("--pairs", type=int, default=0,
                         help="run N back-to-back scalar-vs-candidate "
                              "pairs and record the median pair "
                              "(label must end in -controlled); this "
                              "machine's CPU phase swings >2x, so one "
                              "pair is not a measurement")
    p_bench.set_defaults(func=_cmd_bench_speed)

    p_prof = sub.add_parser(
        "profile", help="cProfile one workload x scheme simulation"
    )
    p_prof.add_argument("--workload", default="mix-high")
    p_prof.add_argument("--scheme", default="mithril")
    p_prof.add_argument("--scale", type=float, default=1.0)
    p_prof.add_argument("--flip-th", type=int, default=6_250)
    p_prof.add_argument("--backend", choices=["scalar", "turbo"],
                        default=None,
                        help="simulation backend to profile (default: "
                             "REPRO_SIM_BACKEND or scalar), so the "
                             "per-phase split can be compared across "
                             "backends")
    p_prof.add_argument("--sort", default="cumulative",
                        help="pstats sort key (cumulative/tottime/...)")
    p_prof.add_argument("--top", type=int, default=25,
                        help="number of rows to print")
    p_prof.set_defaults(func=_cmd_profile)

    p_traces = sub.add_parser(
        "traces", help="trace foundry: ingest, characterize, synth"
    )
    tsub = p_traces.add_subparsers(dest="traces_command", required=True)

    t_list = tsub.add_parser(
        "list", help="list workload kinds, readers, mapping policies"
    )
    t_list.set_defaults(func=_cmd_traces_list)

    t_synth = tsub.add_parser(
        "synth", help="generate a workload kind into a TraceSet"
    )
    t_synth.add_argument("kind", help="registered workload kind")
    t_synth.add_argument("-o", "--output", required=True,
                         help="TraceSet directory to write")
    t_synth.add_argument("--name", default=None,
                         help="TraceSet name (default: the kind)")
    t_synth.add_argument("--scale", type=float, default=1.0)
    t_synth.add_argument("--cores", type=int, default=4)
    t_synth.add_argument("--banks", type=int, default=16)
    t_synth.add_argument("--seed", type=int, default=None,
                         help="builder seed (default: the kind's)")
    t_synth.add_argument("--format", choices=("jsonl", "binary"),
                         default="jsonl")
    t_synth.add_argument("--gzip", action="store_true",
                         help="gzip the per-core trace files")
    t_synth.add_argument("--check", action="store_true",
                         help="assert the family's design targets")
    t_synth.set_defaults(func=_cmd_traces_synth)

    t_ingest = tsub.add_parser(
        "ingest", help="read external traces into a TraceSet"
    )
    t_ingest.add_argument("inputs", nargs="+",
                          help="one trace file per core")
    t_ingest.add_argument("-o", "--output", required=True,
                          help="TraceSet directory to write")
    t_ingest.add_argument("--name", default="ingested")
    t_ingest.add_argument("--format",
                          choices=("auto", "jsonl", "binary",
                                   "dramsim3-csv"),
                          default="auto",
                          help="input format (default: sniff per file)")
    t_ingest.add_argument("--mapping", default="row-bank-col",
                          help="address mapping policy for byte-addressed "
                               "formats (see `traces list`)")
    t_ingest.add_argument("--strict", action="store_true",
                          help="error on out-of-geometry entries instead "
                               "of clamping")
    t_ingest.add_argument("--write-format", choices=("jsonl", "binary"),
                          default="jsonl",
                          help="serialization for the written TraceSet")
    t_ingest.add_argument("--gzip", action="store_true",
                          help="gzip the written trace files")
    t_ingest.set_defaults(func=_cmd_traces_ingest)

    t_char = tsub.add_parser(
        "characterize", help="ACT-stream statistics of a TraceSet/file"
    )
    t_char.add_argument("path",
                        help="TraceSet directory or single trace file")
    t_char.add_argument("--json", action="store_true")
    t_char.add_argument("--per-core", action="store_true",
                        help="also characterize each core in isolation")
    t_char.set_defaults(func=_cmd_traces_characterize)

    t_smoke = tsub.add_parser(
        "smoke", help="build one tiny instance of every workload kind"
    )
    t_smoke.add_argument("--scale", type=float, default=0.1)
    t_smoke.set_defaults(func=_cmd_traces_smoke)

    p_trace = sub.add_parser(
        "trace",
        help="telemetry consumers: export / summarize a run timeline",
    )
    trsub = p_trace.add_subparsers(dest="trace_command", required=True)

    tr_export = trsub.add_parser(
        "export",
        help="merge event streams and export the run timeline",
    )
    tr_export.add_argument(
        "--format", choices=("perfetto", "merged"), default="perfetto",
        help="perfetto: Chrome trace-event JSON (Perfetto UI / "
             "chrome://tracing); merged: ordered newline-JSON",
    )
    tr_export.add_argument(
        "--telemetry-dir", default=None,
        help="telemetry dir to read (default: REPRO_TELEMETRY)",
    )
    tr_export.add_argument(
        "--output", default=None,
        help="write to this file instead of stdout",
    )
    tr_export.add_argument(
        "--probes-dir", default=None,
        help="also render probe streams under this directory as "
             "counter tracks (default: REPRO_PROBES)",
    )
    tr_export.set_defaults(func=_cmd_trace_export)

    tr_summary = trsub.add_parser(
        "summary", help="per-kind counts and span totals of a run"
    )
    tr_summary.add_argument("--telemetry-dir", default=None,
                            help="default: REPRO_TELEMETRY")
    tr_summary.add_argument("--json", action="store_true")
    tr_summary.add_argument("--top", type=int, default=10,
                            help="slowest individual spans to list "
                                 "(default 10)")
    tr_summary.set_defaults(func=_cmd_trace_summary)

    p_probe = sub.add_parser(
        "probe",
        help="scheme-internals probe streams (docs/OBSERVABILITY.md)",
    )
    psub = p_probe.add_subparsers(dest="probe_command", required=True)

    pr_report = psub.add_parser(
        "report",
        help="per-scheme p50/p95/p99 panels from recorded probe "
             "streams",
    )
    pr_report.add_argument("--probes-dir", default=None,
                           help="probe directory to read "
                                "(default: REPRO_PROBES)")
    pr_report.add_argument("--json", action="store_true")
    pr_report.add_argument("--output", default=None,
                           help="write to a file instead of stdout")
    pr_report.set_defaults(func=_cmd_probe_report)

    p_safe = sub.add_parser("safety", help="replay an attack")
    p_safe.add_argument("scheme", choices=scheme_names())
    p_safe.add_argument("--attack", choices=sorted(_ATTACKS),
                        default="double-sided")
    p_safe.add_argument("--flip-th", type=int, default=3_125)
    p_safe.add_argument("--rfm-th", type=int, default=64)
    p_safe.add_argument("--acts", type=int, default=200_000)
    p_safe.set_defaults(func=_cmd_safety)

    args = parser.parse_args(argv)
    _configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
