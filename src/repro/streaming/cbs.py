"""Counter-based Summary (CbS) algorithm (Misra-Gries / Space-Saving).

This is the tracking mechanism of both Graphene and Mithril (Table I of
the paper).  The table holds ``capacity`` (address, counter) entries:

* on-table address: its counter is incremented;
* off-table address: it *replaces* the address of a minimum-counter
  entry and that counter is incremented (Space-Saving replacement).

The resulting estimates obey the paper's inequalities (1) and (2):

    actual  <=  estimate                      (lower bound)
    estimate <= actual + table_minimum        (upper bound)

where the estimate of an off-table address is the table minimum.

The implementation keeps counters in count-indexed buckets so that every
operation — including minimum lookup — is amortized O(1), and the
maximum lookup (needed by Mithril's greedy selection) is amortized
O(log n) through a lazy max-heap.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.streaming.base import FrequencyEstimator


class CounterSummary(FrequencyEstimator):
    """Space-Saving summary with O(1) min and lazy-heap max tracking."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._counts: Dict[Hashable, int] = {}
        #: bucket structure: counter value -> set of addresses at that value
        self._buckets: Dict[int, Set[Hashable]] = {}
        self._min_count = 0
        #: lazy max-heap of (-count, addr); stale entries skipped on pop
        self._max_heap: List[Tuple[int, Hashable]] = []
        self._total_observed = 0
        #: cumulative Space-Saving replacements (off-table arrivals that
        #: evicted a minimum entry) — the "spillover" the probe layer
        #: reports.  Survives :meth:`reset` so it counts the whole run.
        self.evictions = 0

    # ------------------------------------------------------------------
    # core stream operations
    # ------------------------------------------------------------------

    def observe(self, element: Hashable, count: int = 1) -> None:
        """Record ``count`` occurrences of ``element`` (CbS update rule)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        for _ in range(count):
            self._observe_one(element)

    def _observe_one(self, element: Hashable) -> None:
        self._total_observed += 1
        counts = self._counts
        current = counts.get(element)
        if current is not None:
            self._move(element, current, current + 1)
            return
        if len(counts) < self.capacity:
            self._insert(element, 1)
            if len(counts) == self.capacity:
                self._min_count = min(self._buckets)
            return
        # Off-table replacement: evict one minimum-counter entry.
        self.evictions += 1
        victim = next(iter(self._buckets[self._min_count]))
        self._remove(victim, self._min_count)
        self._insert(element, self._min_count + 1)
        if not self._buckets.get(self._min_count):
            self._advance_min()

    def estimate(self, element: Hashable) -> int:
        """Estimated count: written counter if on-table, else table min."""
        found = self._counts.get(element)
        if found is not None:
            return found
        return self.min_count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, element: Hashable) -> bool:
        return element in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def total_observed(self) -> int:
        return self._total_observed

    @property
    def min_count(self) -> int:
        """Smallest counter in the table (0 while the table is not full)."""
        if len(self._counts) < self.capacity:
            return 0
        return self._min_count

    def max_entry(self) -> Optional[Tuple[Hashable, int]]:
        """The (address, counter) entry with the largest counter, if any."""
        while self._max_heap:
            neg_count, element = self._max_heap[0]
            if self._counts.get(element) == -neg_count:
                return element, -neg_count
            heapq.heappop(self._max_heap)
        return None

    def min_entry(self) -> Optional[Tuple[Hashable, int]]:
        """An (address, counter) entry with the smallest counter, if any."""
        if not self._counts:
            return None
        low = min(self._buckets) if len(self._counts) < self.capacity else self._min_count
        return next(iter(self._buckets[low])), low

    def items(self) -> Iterable[Tuple[Hashable, int]]:
        return self._counts.items()

    def entries_at_least(self, threshold: int) -> List[Tuple[Hashable, int]]:
        """All entries whose counter is >= ``threshold``."""
        return [(a, c) for a, c in self._counts.items() if c >= threshold]

    # ------------------------------------------------------------------
    # mutation beyond the classic algorithm (used by RH schemes)
    # ------------------------------------------------------------------

    def demote_to_min(self, element: Hashable) -> None:
        """Set ``element``'s counter down to the current table minimum.

        This is the Mithril post-refresh decrement: by inequality (2) the
        estimate may exceed the actual count by at most the table
        minimum, so after a preventive refresh (actual count = 0) the
        minimum remains a safe overestimate.
        """
        current = self._counts.get(element)
        if current is None:
            raise KeyError(element)
        target = self.min_count
        if target >= current:
            return
        self._move(element, current, target)

    def reset(self) -> None:
        """Clear the table (Graphene-style periodic reset)."""
        self._counts.clear()
        self._buckets.clear()
        self._max_heap.clear()
        self._min_count = 0

    # ------------------------------------------------------------------
    # internal bucket bookkeeping
    # ------------------------------------------------------------------

    def _insert(self, element: Hashable, count: int) -> None:
        self._counts[element] = count
        buckets = self._buckets
        bucket = buckets.get(count)
        if bucket is None:
            buckets[count] = {element}
        else:
            bucket.add(element)
        heapq.heappush(self._max_heap, (-count, element))

    def _remove(self, element: Hashable, count: int) -> None:
        del self._counts[element]
        bucket = self._buckets[count]
        bucket.discard(element)
        if not bucket:
            del self._buckets[count]

    def _move(self, element: Hashable, old: int, new: int) -> None:
        buckets = self._buckets
        bucket = buckets[old]
        bucket.discard(element)
        old_emptied = not bucket
        if old_emptied:
            del buckets[old]
        self._counts[element] = new
        bucket = buckets.get(new)
        if bucket is None:
            buckets[new] = {element}
        else:
            bucket.add(element)
        heapq.heappush(self._max_heap, (-new, element))
        if old_emptied and old == self._min_count:
            if new < old:
                self._min_count = new
            else:
                self._advance_min()
        elif new < self._min_count:
            self._min_count = new

    def _advance_min(self) -> None:
        if not self._buckets:
            self._min_count = 0
            return
        probe = self._min_count
        while probe not in self._buckets:
            probe += 1
        self._min_count = probe
