"""Lossy Counting (Manku & Motwani), the tracker behind TWiCe.

The stream is processed in windows of ``1 / epsilon`` items.  Each
tracked element carries a count and the maximum possible undercount
``delta`` frozen at insertion time.  At every window boundary, entries
whose ``count + delta`` falls at or below the window index are pruned.

Bounds (with ``n`` items seen so far):

    actual - epsilon * n  <=  estimate  <=  actual        (raw count)
    actual  <=  estimate + delta  <=  actual + epsilon * n

TWiCe uses the *overestimate* form ``count + delta`` so that acting on
the estimate is conservative; :meth:`estimate` returns that form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.streaming.base import FrequencyEstimator


@dataclass
class _Entry:
    count: int
    delta: int


class LossyCounter(FrequencyEstimator):
    """Lossy Counting summary with conservative (over-)estimates."""

    def __init__(self, epsilon: float):
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.window_size = int(math.ceil(1.0 / epsilon))
        self._entries: Dict[Hashable, _Entry] = {}
        self._items_seen = 0
        self._window_index = 0  #: floor(n / window_size), the max delta

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        for _ in range(count):
            self._observe_one(element)

    def _observe_one(self, element: Hashable) -> None:
        self._items_seen += 1
        entry = self._entries.get(element)
        if entry is not None:
            entry.count += 1
        else:
            self._entries[element] = _Entry(count=1, delta=self._window_index)
        if self._items_seen % self.window_size == 0:
            self._window_index += 1
            self._prune()

    def _prune(self) -> None:
        doomed = [
            element
            for element, entry in self._entries.items()
            if entry.count + entry.delta <= self._window_index
        ]
        for element in doomed:
            del self._entries[element]

    def estimate(self, element: Hashable) -> int:
        """Conservative overestimate: count + delta, or the max prune level."""
        entry = self._entries.get(element)
        if entry is None:
            return self._window_index
        return entry.count + entry.delta

    def raw_count(self, element: Hashable) -> int:
        """The tracked count alone (a lower bound on the actual count)."""
        entry = self._entries.get(element)
        return 0 if entry is None else entry.count

    def __contains__(self, element: Hashable) -> bool:
        return element in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def items_seen(self) -> int:
        return self._items_seen

    def items(self) -> Iterable[Tuple[Hashable, int]]:
        for element, entry in self._entries.items():
            yield element, entry.count + entry.delta

    def entries_at_least(self, threshold: int) -> List[Tuple[Hashable, int]]:
        return [(a, c) for a, c in self.items() if c >= threshold]

    def reset(self) -> None:
        self._entries.clear()
        self._items_seen = 0
        self._window_index = 0
