"""Common interface for the frequent-items estimators."""

from __future__ import annotations

import abc
from typing import Hashable, List


class FrequencyEstimator(abc.ABC):
    """Estimates per-element occurrence counts of a data stream.

    Subclasses document which of the two bounds they provide:

    * lower bound:  ``actual <= estimate``  (conservative overestimate),
      required for deterministic RowHammer safety;
    * upper bound:  ``estimate <= actual + slack`` for a known ``slack``,
      required to *decrement* an estimate safely after a refresh.
    """

    @abc.abstractmethod
    def observe(self, element: Hashable, count: int = 1) -> None:
        """Record ``count`` occurrences of ``element``."""

    @abc.abstractmethod
    def estimate(self, element: Hashable) -> int:
        """Estimated occurrence count of ``element`` so far."""

    def observe_many(self, elements, count: int = 1) -> None:
        """Record ``count`` occurrences of each element of an iterable.

        Semantically ``for e in elements: observe(e, count)``; batch
        engines (:mod:`repro.streaming.vectorized`) override this with
        one vectorized scatter — results are identical by contract
        (pinned by tests/property/test_vectorized_sketches.py).
        """
        for element in elements:
            self.observe(element, count)

    def estimate_many(self, elements) -> List[int]:
        """Estimates for each element, as a list.

        Semantically ``[estimate(e) for e in elements]``; batch
        engines override this with one vectorized gather.
        """
        return [self.estimate(element) for element in elements]
