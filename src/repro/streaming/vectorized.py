"""numpy-backed sketch engines: batch-probe twins of the scalar sketches.

The scalar sketches (:mod:`~repro.streaming.count_min`,
:mod:`~repro.streaming.counting_bloom`) pay k python-loop hash probes
per observation.  The engines here keep the *identical* hash family,
counter layout and estimates — same seed ⇒ same numbers, pinned by
tests/property/test_vectorized_sketches.py — but store counters in one
``numpy`` int64 array and precompute per-element probe-index vectors,
so an observation is a single gather/scatter and the batch APIs
(:meth:`observe_many` / :meth:`estimate_many`) amortize hashing across
a whole batch via one vectorized index matrix.

Per-element probe indices are cached as *(unique indices,
multiplicities)*: scatters through unique indices are plain fancy
assignments (no ``np.add.at`` needed), and aliasing probes (two hashes
of one element landing on the same counter) still add their full
weight, exactly like the scalar probe loop.

This module imports only when numpy is present; the simulation
backends guard the import (:mod:`repro.sim.backend`) and fall back to
the scalar sketches otherwise.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

import numpy as np

from repro.streaming.base import FrequencyEstimator
from repro.streaming.count_min import _MASK64, premix_seeds

#: Same probe-index cache bound as the scalar filters.
_INDEX_CACHE_LIMIT = 8192

_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)


def _finalize(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (same bits as ``count_min._mix``)."""
    x = (x ^ (x >> np.uint64(30))) * _C1
    x = (x ^ (x >> np.uint64(27))) * _C2
    return x ^ (x >> np.uint64(31))


def _element_bases(elements: Sequence[Hashable]) -> np.ndarray:
    return np.fromiter(
        (hash(element) & _MASK64 for element in elements),
        dtype=np.uint64,
        count=len(elements),
    )


class _ProbeTable:
    """Precomputed probe machinery shared by the engines.

    ``seeds`` are the premixed per-probe seed products; ``modulus`` is
    the per-probe counter-space size; ``offsets`` shifts each probe
    into its region of the flat counter array (row-major rows for the
    count-min sketch, all-zero for a Bloom filter's shared region).
    """

    def __init__(self, seed: int, probes: int, modulus: int,
                 offsets: Sequence[int]):
        self.seeds = np.array(premix_seeds(seed, probes), dtype=np.uint64)
        self.modulus = np.uint64(modulus)
        self.offsets = np.array(offsets, dtype=np.int64)
        self._cache: dict = {}

    def index_matrix(self, elements: Sequence[Hashable]) -> np.ndarray:
        """(n, probes) int64 matrix of flat counter indices."""
        bases = _element_bases(elements)
        mixed = _finalize(bases[:, None] ^ self.seeds[None, :])
        return (mixed % self.modulus).astype(np.int64) + self.offsets

    def cached(self, element: Hashable) -> Tuple[np.ndarray, np.ndarray]:
        """(unique indices, multiplicities) for one element."""
        entry = self._cache.get(element)
        if entry is None:
            row = self.index_matrix([element])[0]
            unique, mult = np.unique(row, return_counts=True)
            entry = (unique, mult)
            if len(self._cache) < _INDEX_CACHE_LIMIT:
                self._cache[element] = entry
        return entry


class NumpyCountMinSketch(FrequencyEstimator):
    """Drop-in :class:`~repro.streaming.count_min.CountMinSketch` twin."""

    def __init__(self, width: int, depth: int = 4, seed: int = 0x5EED):
        if width <= 0 or depth <= 0:
            raise ValueError(
                f"width and depth must be positive, got {width}x{depth}"
            )
        self.width = width
        self.depth = depth
        self._seed = seed
        self._cells = np.zeros(width * depth, dtype=np.int64)
        self._probes = _ProbeTable(
            seed, depth, width,
            [row * width for row in range(depth)],
        )
        self._total = 0

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._total += count
        unique, mult = self._probes.cached(element)
        self._cells[unique] += mult * count

    def observe_many(self, elements, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        elements = list(elements)
        if not elements:
            return
        self._total += count * len(elements)
        np.add.at(self._cells, self._probes.index_matrix(elements), count)

    def estimate(self, element: Hashable) -> int:
        unique, _ = self._probes.cached(element)
        return int(self._cells[unique].min())

    def estimate_many(self, elements) -> List[int]:
        elements = list(elements)
        if not elements:
            return []
        matrix = self._probes.index_matrix(elements)
        return self._cells[matrix].min(axis=1).tolist()

    @property
    def total_observed(self) -> int:
        return self._total

    def nonzero_cells(self) -> int:
        """Occupied cells — equals the scalar sketch's value exactly."""
        return int(np.count_nonzero(self._cells))

    def saturation(self) -> float:
        """Fraction of cells that are non-zero, in [0, 1]."""
        return self.nonzero_cells() / (self.width * self.depth)

    def reset(self) -> None:
        self._cells[:] = 0
        self._total = 0


class NumpyCountingBloomFilter(FrequencyEstimator):
    """Drop-in :class:`~repro.streaming.counting_bloom.CountingBloomFilter`
    twin (same seed ⇒ same probe indices, counters and estimates)."""

    def __init__(self, size: int, num_hashes: int = 4, seed: int = 0xB10F):
        if size <= 0 or num_hashes <= 0:
            raise ValueError(
                f"size and num_hashes must be positive, "
                f"got {size}/{num_hashes}"
            )
        self.size = size
        self.num_hashes = num_hashes
        self._seed = seed
        self._counters = np.zeros(size, dtype=np.int64)
        self._probes = _ProbeTable(seed, num_hashes, size, [0] * num_hashes)
        self._total = 0

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._total += count
        unique, mult = self._probes.cached(element)
        self._counters[unique] += mult * count

    def observe_many(self, elements, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        elements = list(elements)
        if not elements:
            return
        self._total += count * len(elements)
        np.add.at(
            self._counters, self._probes.index_matrix(elements), count
        )

    def estimate(self, element: Hashable) -> int:
        unique, _ = self._probes.cached(element)
        return int(self._counters[unique].min())

    def estimate_many(self, elements) -> List[int]:
        elements = list(elements)
        if not elements:
            return []
        matrix = self._probes.index_matrix(elements)
        return self._counters[matrix].min(axis=1).tolist()

    def probe_indices_many(self, elements) -> np.ndarray:
        """(n, num_hashes) probe-index matrix, one vectorized pass.

        Row ``i`` equals the scalar filter's ``_indices(elements[i])``
        for the same (size, num_hashes, seed).
        """
        return self._probes.index_matrix(list(elements))

    def decrement(self, element: Hashable, count: int = 1) -> None:
        """Clamped deletion, bit-identical to the scalar filter.

        The scalar loop clamps each probe counter at zero per
        subtraction; with per-element multiplicities that collapses to
        ``max(0, counter - mult * count)`` (a clamped intermediate
        stays clamped under further positive subtraction).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        unique, mult = self._probes.cached(element)
        self._counters[unique] = np.maximum(
            self._counters[unique] - mult * count, 0
        )
        self._total -= count
        if self._total < 0:
            self._total = 0

    @property
    def total_observed(self) -> int:
        return self._total

    def nonzero_counters(self) -> int:
        """Occupied counters — equals the scalar filter's value exactly."""
        return int(np.count_nonzero(self._counters))

    def saturation(self) -> float:
        """Fraction of counters that are non-zero, in [0, 1]."""
        return self.nonzero_counters() / self.size

    def reset(self) -> None:
        self._counters[:] = 0
        self._total = 0


class NumpyDualCountingBloomFilter(FrequencyEstimator):
    """Drop-in
    :class:`~repro.streaming.counting_bloom.DualCountingBloomFilter`
    twin: same staggered-lifetime rotation, same estimates."""

    def __init__(
        self,
        size: int,
        epoch_length: int,
        num_hashes: int = 4,
        seed: int = 0xB10F,
    ):
        if epoch_length <= 1:
            raise ValueError(
                f"epoch_length must be > 1, got {epoch_length}"
            )
        self.epoch_length = epoch_length
        self.half_epoch = max(1, epoch_length // 2)
        self._filters = [
            NumpyCountingBloomFilter(size, num_hashes, seed),
            NumpyCountingBloomFilter(size, num_hashes, seed + 1),
        ]
        self._active = 0
        self._since_swap = 0

    def _observe_chunk(self, element: Hashable, repetitions: int) -> None:
        for cbf in self._filters:
            unique, mult = cbf._probes.cached(element)
            cbf._counters[unique] += mult * repetitions
            cbf._total += repetitions

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        while count:
            chunk = min(count, self.half_epoch - self._since_swap)
            self._observe_chunk(element, chunk)
            count -= chunk
            self._since_swap += chunk
            if self._since_swap >= self.half_epoch:
                self._rotate()

    def observe_many(self, elements, count: int = 1) -> None:
        """One vectorized scatter per rotation-free run of the batch."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        elements = list(elements)
        if count != 1:
            for element in elements:  # rotation may interleave per element
                self.observe(element, count)
            return
        start = 0
        while start < len(elements):
            run = min(
                len(elements) - start, self.half_epoch - self._since_swap
            )
            chunk = elements[start:start + run]
            for cbf in self._filters:
                np.add.at(
                    cbf._counters, cbf._probes.index_matrix(chunk), 1
                )
                cbf._total += run
            start += run
            self._since_swap += run
            if self._since_swap >= self.half_epoch:
                self._rotate()

    def observe_and_estimate(self, element: Hashable) -> int:
        """One observation plus the post-observation estimate."""
        first, second = self._filters
        unique_first, mult_first = first._probes.cached(element)
        unique_second, mult_second = second._probes.cached(element)
        first._counters[unique_first] += mult_first
        first._total += 1
        second._counters[unique_second] += mult_second
        second._total += 1
        self._since_swap += 1
        if self._since_swap >= self.half_epoch:
            self._rotate()
        if self._active == 0:
            return int(first._counters[unique_first].min())
        return int(second._counters[unique_second].min())

    def _rotate(self) -> None:
        self._since_swap = 0
        young = 1 - self._active
        self._filters[self._active].reset()
        self._active = young

    def estimate(self, element: Hashable) -> int:
        return self._filters[self._active].estimate(element)

    def estimate_many(self, elements) -> List[int]:
        return self._filters[self._active].estimate_many(elements)

    def nonzero_counters(self) -> List[int]:
        """Per-filter occupied-counter counts, filter-pair order."""
        return [cbf.nonzero_counters() for cbf in self._filters]

    def reset(self) -> None:
        for cbf in self._filters:
            cbf.reset()
        self._active = 0
        self._since_swap = 0
