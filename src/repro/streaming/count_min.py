"""Count-Min Sketch (Cormode & Muthukrishnan).

Provides only the *lower* bound ``actual <= estimate`` (never
underestimates), which is why the paper notes it suits throttling-based
schemes (BlockHammer) but cannot support Mithril's post-refresh
decrement: there is no per-element upper bound, so an estimate cannot
be safely reduced.

Counter storage is one flat ``array('q')`` of ``depth * width`` cells
(row-major) rather than a list of per-row Python lists: per-ACT
updates touch one contiguous machine-typed buffer, and the per-row
seed multiplications of the hash are precomputed so the hot loops run
only the splitmix finalizer.
"""

from __future__ import annotations

from array import array
from typing import Hashable, List

from repro.streaming.base import FrequencyEstimator

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(value: int, seed: int) -> int:
    """Cheap 64-bit hash mix (splitmix64 finalizer variant)."""
    x = (value ^ (seed * _GOLDEN)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def premix_seeds(seed: int, count: int) -> List[int]:
    """``seed * golden-ratio`` products for ``count`` consecutive seeds.

    ``_mix(value, seed + i)`` equals the splitmix finalizer applied to
    ``value ^ premix_seeds(seed, n)[i]``; precomputing the products
    hoists one multiply out of every per-ACT probe.
    """
    return [((seed + i) * _GOLDEN) & _MASK64 for i in range(count)]


class CountMinSketch(FrequencyEstimator):
    """``depth`` rows of ``width`` counters; estimate = min over rows."""

    def __init__(self, width: int, depth: int = 4, seed: int = 0x5EED):
        if width <= 0 or depth <= 0:
            raise ValueError(f"width and depth must be positive, got {width}x{depth}")
        self.width = width
        self.depth = depth
        self._seed = seed
        #: flat row-major counters: row ``r`` occupies cells
        #: ``[r * width, (r + 1) * width)``.
        self._cells = array("q", bytes(8 * width * depth))
        self._row_seeds = premix_seeds(seed, depth)
        self._total = 0

    def _index(self, element: Hashable, row: int) -> int:
        return _mix(hash(element) & _MASK64, self._seed + row) % self.width

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._total += count
        base = hash(element) & _MASK64
        cells = self._cells
        width = self.width
        offset = 0
        for premixed in self._row_seeds:
            x = base ^ premixed
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            x ^= x >> 31
            cells[offset + x % width] += count
            offset += width

    def estimate(self, element: Hashable) -> int:
        base = hash(element) & _MASK64
        cells = self._cells
        width = self.width
        offset = 0
        lowest = None
        for premixed in self._row_seeds:
            x = base ^ premixed
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            x ^= x >> 31
            value = cells[offset + x % width]
            if lowest is None or value < lowest:
                lowest = value
            offset += width
        return lowest if lowest is not None else 0

    @property
    def total_observed(self) -> int:
        return self._total

    def nonzero_cells(self) -> int:
        """Occupied (non-zero) cells across all rows — the saturation
        numerator the probe layer samples."""
        return self.width * self.depth - self._cells.count(0)

    def saturation(self) -> float:
        """Fraction of cells that are non-zero, in [0, 1]."""
        return self.nonzero_cells() / (self.width * self.depth)

    def reset(self) -> None:
        self._cells = array("q", bytes(8 * self.width * self.depth))
        self._total = 0
