"""Count-Min Sketch (Cormode & Muthukrishnan).

Provides only the *lower* bound ``actual <= estimate`` (never
underestimates), which is why the paper notes it suits throttling-based
schemes (BlockHammer) but cannot support Mithril's post-refresh
decrement: there is no per-element upper bound, so an estimate cannot
be safely reduced.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.streaming.base import FrequencyEstimator


def _mix(value: int, seed: int) -> int:
    """Cheap 64-bit hash mix (splitmix64 finalizer variant)."""
    x = (value ^ (seed * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class CountMinSketch(FrequencyEstimator):
    """``depth`` rows of ``width`` counters; estimate = min over rows."""

    def __init__(self, width: int, depth: int = 4, seed: int = 0x5EED):
        if width <= 0 or depth <= 0:
            raise ValueError(f"width and depth must be positive, got {width}x{depth}")
        self.width = width
        self.depth = depth
        self._seed = seed
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self._total = 0

    def _index(self, element: Hashable, row: int) -> int:
        return _mix(hash(element) & 0xFFFFFFFFFFFFFFFF, self._seed + row) % self.width

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._total += count
        for row in range(self.depth):
            self._rows[row][self._index(element, row)] += count

    def estimate(self, element: Hashable) -> int:
        return min(
            self._rows[row][self._index(element, row)] for row in range(self.depth)
        )

    @property
    def total_observed(self) -> int:
        return self._total

    def reset(self) -> None:
        for row in self._rows:
            for i in range(self.width):
                row[i] = 0
        self._total = 0
