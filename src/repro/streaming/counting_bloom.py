"""Counting Bloom filters, including BlockHammer's dual interleaved pair.

BlockHammer tracks per-row activation counts with two counting Bloom
filters (CBFs) whose lifetimes are staggered by half an epoch: at any
moment one filter is "active" (its content covers at least the last
half epoch) while the other warms up.  Estimates are taken from the
older filter, so a row's estimate covers the window relevant to the
blacklist decision, and a full reset never forgets recent history.

This is the single hottest tracker in the repo — BlockHammer probes
both filters on *every* ACT — so the counters live in one flat
``array('q')``, the per-probe seed products are precomputed, and the
splitmix finalizer is inlined into the observe/estimate loops.  The
dual filter additionally hashes each element once and reuses the probe
indices across both filters and the estimate
(:meth:`DualCountingBloomFilter.observe_and_estimate`).
"""

from __future__ import annotations

from array import array
from typing import Hashable, List

from repro.streaming.base import FrequencyEstimator
from repro.streaming.count_min import _MASK64, premix_seeds

#: Probe-index cache bound per filter.  Hot rows (the ones BlockHammer
#: exists to catch) are re-probed constantly and win the cache; a
#: scan-heavy workload past the bound just computes indices inline,
#: capping worst-case memory at a few hundred KB per filter.
_INDEX_CACHE_LIMIT = 8192


class CountingBloomFilter(FrequencyEstimator):
    """A single counting Bloom filter: k hashed counters per element.

    The estimate is the minimum of the element's counters, identical in
    spirit to a Count-Min sketch with ``k`` probes into one shared row.
    Provides the lower bound ``actual <= estimate`` only.
    """

    def __init__(self, size: int, num_hashes: int = 4, seed: int = 0xB10F):
        if size <= 0 or num_hashes <= 0:
            raise ValueError(
                f"size and num_hashes must be positive, got {size}/{num_hashes}"
            )
        self.size = size
        self.num_hashes = num_hashes
        self._seed = seed
        self._counters = array("q", bytes(8 * size))
        self._probe_seeds = premix_seeds(seed, num_hashes)
        #: element -> probe indices.  Indices depend only on (element,
        #: seed), never on counter state, so entries survive resets;
        #: growth is capped at :data:`_INDEX_CACHE_LIMIT` entries.
        self._index_cache: dict = {}
        self._total = 0

    def _indices(self, element: Hashable) -> List[int]:
        cache = self._index_cache
        indices = cache.get(element)
        if indices is None:
            base = hash(element) & _MASK64
            size = self.size
            indices = []
            for premixed in self._probe_seeds:
                x = base ^ premixed
                x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
                x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
                x ^= x >> 31
                indices.append(x % size)
            if len(cache) < _INDEX_CACHE_LIMIT:
                cache[element] = indices
        return indices

    def probe_indices_many(self, elements) -> List[List[int]]:
        """Probe indices per element (the batch-probe profiling API).

        The vectorized twin
        (:class:`repro.streaming.vectorized.NumpyCountingBloomFilter`)
        computes the same matrix with one vectorized hash pass.
        """
        return [self._indices(element) for element in elements]

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._total += count
        counters = self._counters
        for index in self._indices(element):
            counters[index] += count

    def estimate(self, element: Hashable) -> int:
        counters = self._counters
        return min(counters[index] for index in self._indices(element))

    def decrement(self, element: Hashable, count: int = 1) -> None:
        """Remove ``count`` occurrences (counting-Bloom deletion).

        Each probe counter is reduced and clamped at zero, so deleting
        an element that aliased with heavier ones cannot drive a
        counter negative — but deleting occurrences that were never
        observed *does* forfeit the ``actual <= estimate`` bound for
        other elements sharing those counters; callers own that
        invariant (mirrored exactly by the vectorized engine).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        counters = self._counters
        for index in self._indices(element):
            value = counters[index] - count
            counters[index] = value if value > 0 else 0
        self._total -= count
        if self._total < 0:
            self._total = 0

    @property
    def total_observed(self) -> int:
        return self._total

    def nonzero_counters(self) -> int:
        """Occupied (non-zero) counters — the probe layer's saturation
        numerator for this filter."""
        return self.size - self._counters.count(0)

    def saturation(self) -> float:
        """Fraction of counters that are non-zero, in [0, 1]."""
        return self.nonzero_counters() / self.size

    def reset(self) -> None:
        self._counters = array("q", bytes(8 * self.size))
        self._total = 0


class DualCountingBloomFilter(FrequencyEstimator):
    """BlockHammer's pair of interleaved CBFs.

    ``epoch_length`` observations make up one filter lifetime (tCBF in
    ACT terms).  Both filters are updated; every half epoch the older
    one is cleared and the roles swap.  Estimates come from the filter
    that has been accumulating longer, guaranteeing coverage of at
    least the last half epoch.
    """

    def __init__(
        self,
        size: int,
        epoch_length: int,
        num_hashes: int = 4,
        seed: int = 0xB10F,
    ):
        if epoch_length <= 1:
            raise ValueError(f"epoch_length must be > 1, got {epoch_length}")
        self.epoch_length = epoch_length
        self.half_epoch = max(1, epoch_length // 2)
        self._filters = [
            CountingBloomFilter(size, num_hashes, seed),
            CountingBloomFilter(size, num_hashes, seed + 1),
        ]
        self._active = 0  #: index of the older (authoritative) filter
        self._since_swap = 0

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        first, second = self._filters
        # The probe indices depend only on the element, so hash once
        # and reuse them for every repetition and both filters (a
        # rotation clears counters but never moves cells).
        indices_first = first._indices(element)
        indices_second = second._indices(element)
        for _ in range(count):
            counters = first._counters
            for index in indices_first:
                counters[index] += 1
            first._total += 1
            counters = second._counters
            for index in indices_second:
                counters[index] += 1
            second._total += 1
            self._since_swap += 1
            if self._since_swap >= self.half_epoch:
                self._rotate()

    def observe_and_estimate(self, element: Hashable) -> int:
        """One observation plus the post-observation estimate.

        Semantically ``observe(element); return estimate(element)``,
        but the element is hashed once instead of three times — this
        is BlockHammer's per-ACT hot path.
        """
        first, second = self._filters
        indices_first = first._indices(element)
        indices_second = second._indices(element)
        counters = first._counters
        for index in indices_first:
            counters[index] += 1
        first._total += 1
        counters = second._counters
        for index in indices_second:
            counters[index] += 1
        second._total += 1
        self._since_swap += 1
        if self._since_swap >= self.half_epoch:
            self._rotate()
        if self._active == 0:
            counters, indices = first._counters, indices_first
        else:
            counters, indices = second._counters, indices_second
        return min(counters[index] for index in indices)

    def _rotate(self) -> None:
        self._since_swap = 0
        young = 1 - self._active
        self._filters[self._active].reset()
        self._active = young

    def estimate(self, element: Hashable) -> int:
        return self._filters[self._active].estimate(element)

    def nonzero_counters(self) -> List[int]:
        """Per-filter occupied-counter counts, index-aligned with the
        internal filter pair (not active-first)."""
        return [cbf.nonzero_counters() for cbf in self._filters]

    def reset(self) -> None:
        for cbf in self._filters:
            cbf.reset()
        self._active = 0
        self._since_swap = 0
