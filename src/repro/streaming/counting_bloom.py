"""Counting Bloom filters, including BlockHammer's dual interleaved pair.

BlockHammer tracks per-row activation counts with two counting Bloom
filters (CBFs) whose lifetimes are staggered by half an epoch: at any
moment one filter is "active" (its content covers at least the last
half epoch) while the other warms up.  Estimates are taken from the
older filter, so a row's estimate covers the window relevant to the
blacklist decision, and a full reset never forgets recent history.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.streaming.base import FrequencyEstimator
from repro.streaming.count_min import _mix


class CountingBloomFilter(FrequencyEstimator):
    """A single counting Bloom filter: k hashed counters per element.

    The estimate is the minimum of the element's counters, identical in
    spirit to a Count-Min sketch with ``k`` probes into one shared row.
    Provides the lower bound ``actual <= estimate`` only.
    """

    def __init__(self, size: int, num_hashes: int = 4, seed: int = 0xB10F):
        if size <= 0 or num_hashes <= 0:
            raise ValueError(
                f"size and num_hashes must be positive, got {size}/{num_hashes}"
            )
        self.size = size
        self.num_hashes = num_hashes
        self._seed = seed
        self._counters: List[int] = [0] * size
        self._total = 0

    def _indices(self, element: Hashable) -> List[int]:
        base = hash(element) & 0xFFFFFFFFFFFFFFFF
        return [
            _mix(base, self._seed + probe) % self.size
            for probe in range(self.num_hashes)
        ]

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._total += count
        for index in self._indices(element):
            self._counters[index] += count

    def estimate(self, element: Hashable) -> int:
        return min(self._counters[index] for index in self._indices(element))

    @property
    def total_observed(self) -> int:
        return self._total

    def reset(self) -> None:
        self._counters = [0] * self.size
        self._total = 0


class DualCountingBloomFilter(FrequencyEstimator):
    """BlockHammer's pair of interleaved CBFs.

    ``epoch_length`` observations make up one filter lifetime (tCBF in
    ACT terms).  Both filters are updated; every half epoch the older
    one is cleared and the roles swap.  Estimates come from the filter
    that has been accumulating longer, guaranteeing coverage of at
    least the last half epoch.
    """

    def __init__(
        self,
        size: int,
        epoch_length: int,
        num_hashes: int = 4,
        seed: int = 0xB10F,
    ):
        if epoch_length <= 1:
            raise ValueError(f"epoch_length must be > 1, got {epoch_length}")
        self.epoch_length = epoch_length
        self.half_epoch = max(1, epoch_length // 2)
        self._filters = [
            CountingBloomFilter(size, num_hashes, seed),
            CountingBloomFilter(size, num_hashes, seed + 1),
        ]
        self._active = 0  #: index of the older (authoritative) filter
        self._since_swap = 0

    def observe(self, element: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        for _ in range(count):
            self._filters[0].observe(element)
            self._filters[1].observe(element)
            self._since_swap += 1
            if self._since_swap >= self.half_epoch:
                self._rotate()

    def _rotate(self) -> None:
        self._since_swap = 0
        young = 1 - self._active
        self._filters[self._active].reset()
        self._active = young

    def estimate(self, element: Hashable) -> int:
        return self._filters[self._active].estimate(element)

    def reset(self) -> None:
        for cbf in self._filters:
            cbf.reset()
        self._active = 0
        self._since_swap = 0
