"""Streaming (frequent-items) algorithms used as RowHammer trackers.

The Mithril paper classifies deterministic RH trackers by the streaming
algorithm they build on (Table I):

* Counter-based Summary (Misra-Gries / Space-Saving) — Graphene, Mithril
* Lossy Counting — TWiCe
* Count-Min Sketch / counting Bloom filters — BlockHammer

This package implements all of them from scratch, each documenting the
estimated-count bounds it guarantees.
"""

from repro.streaming.base import FrequencyEstimator
from repro.streaming.cbs import CounterSummary
from repro.streaming.count_min import CountMinSketch
from repro.streaming.counting_bloom import CountingBloomFilter, DualCountingBloomFilter
from repro.streaming.lossy_counting import LossyCounter

__all__ = [
    "FrequencyEstimator",
    "CounterSummary",
    "CountMinSketch",
    "CountingBloomFilter",
    "DualCountingBloomFilter",
    "LossyCounter",
]
