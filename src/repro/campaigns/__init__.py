"""Declarative multi-experiment campaigns (docs/CAMPAIGNS.md).

The orchestration layer over the experiment engine: a
:class:`~repro.campaigns.spec.CampaignSpec` names a set of experiments
with per-experiment overrides, the planner expands it into one
deduplicated job pool with provenance, the executor runs that pool
resumably (manifest checkpoints per batch — a killed campaign restarts
with zero re-simulated completed points), and the report layer renders
per-experiment slowdown tables, stress-family panels, and cache-hit
stats in markdown or JSON.

    from repro.campaigns import get_campaign, plan_campaign, run_campaign

    spec = get_campaign("stress-panel")
    print(plan_campaign(spec).summary())     # no simulation
    result = run_campaign(spec, n_jobs=4)    # resumable
"""

from repro.campaigns.executor import (
    DEFAULT_BATCH_SIZE,
    CampaignManifest,
    CampaignRunResult,
    CampaignRunStats,
    manifest_path,
    run_campaign,
    verify_campaign,
)
from repro.campaigns.planner import (
    CampaignPlan,
    PlannedExperiment,
    plan_campaign,
)
from repro.campaigns.report import build_report, format_report
from repro.campaigns.spec import (
    STRESS_FAMILIES,
    CampaignError,
    CampaignSpec,
    ExperimentSpec,
    builtin_campaigns,
    campaign_dir,
    get_campaign,
)

__all__ = [
    "CampaignSpec",
    "ExperimentSpec",
    "CampaignError",
    "CampaignPlan",
    "PlannedExperiment",
    "CampaignManifest",
    "CampaignRunResult",
    "CampaignRunStats",
    "DEFAULT_BATCH_SIZE",
    "STRESS_FAMILIES",
    "builtin_campaigns",
    "get_campaign",
    "campaign_dir",
    "plan_campaign",
    "run_campaign",
    "verify_campaign",
    "manifest_path",
    "build_report",
    "format_report",
]
