"""Resumable, fault-tolerant campaign execution on top of
:func:`run_jobs`.

A campaign's deduplicated job pool runs in batches; after every batch
the **campaign manifest** (``<campaign dir>/<name>/manifest.json``) is
rewritten atomically with the set of completed job hashes.  A killed
campaign therefore restarts exactly where it died: completed points
are never resubmitted (the manifest skips them before
:func:`run_jobs` is even called), and points the result cache already
holds cost a cache hit, not a simulation — ``simulated == 0`` for
every already-completed point is the invariant the resumability tests
pin down.

The manifest is only trusted for the code version that wrote it.  Any
source change mints a new :func:`~repro.engine.cache.code_version`,
which both strands the old cache generation and resets the manifest's
completion set — a resumed campaign can never mix results from two
simulator versions.

On top of resumability, this layer carries the campaign through real
faults (docs/FAULTS.md):

* batches run with ``on_failure="skip"`` — jobs that exhaust the
  executor's retry budget (crashing, hanging, or raising workers) are
  **quarantined** in the manifest with their full
  :class:`~repro.engine.supervisor.JobFailure` diagnostics instead of
  aborting the campaign;
* manifest writes rotate the previous good copy to
  ``manifest.json.prev`` before the atomic replace, and
  :meth:`CampaignManifest.load` falls back to it (quarantining the
  torn file) when the primary is corrupt — a ``kill -9`` mid-
  checkpoint costs at most one batch of completion records, never the
  campaign;
* once every point is accounted for, a **store audit** re-reads every
  completed entry through the cache's verified-read path; entries
  that went missing or corrupt on disk are demoted and re-simulated
  in the same invocation (the corrupt files land in the store's
  ``quarantine/``);
* ``SIGTERM``/``SIGINT`` request a **graceful drain**: the in-flight
  batch finishes, the manifest checkpoints, and the run returns
  resumable (a second signal aborts the old-fashioned way).

Completed batches also annotate the result-cache index with
per-experiment provenance (``experiments`` field), so
``repro cache --query experiment=<name>`` works after a campaign run.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.campaigns.planner import CampaignPlan, plan_campaign
from repro.campaigns.spec import CampaignSpec, campaign_dir
from repro.engine.cache import ResultCache, code_version
from repro.engine.durable import atomic_write_json, quarantine_file
from repro.engine.executor import DEFAULT_MAX_RETRIES, run_jobs

MANIFEST_NAME = "manifest.json"

log = logging.getLogger("repro.campaigns.executor")

#: Previous good manifest, kept one rotation deep for torn-write
#: recovery.
MANIFEST_PREV_SUFFIX = ".prev"

#: Points per checkpoint batch.  Small enough that a kill loses
#: minutes, large enough that manifest rewrites are noise.
DEFAULT_BATCH_SIZE = 16

#: Bound on demote-and-resimulate audit rounds per invocation (a
#: persistently failing disk must not loop forever).
MAX_AUDIT_ROUNDS = 3


@dataclass
class CampaignRunStats:
    """Accounting for one :func:`run_campaign` invocation."""

    total_points: int = 0          #: distinct points in the plan
    previously_complete: int = 0   #: skipped via the manifest
    submitted: int = 0             #: points handed to run_jobs
    simulated: int = 0             #: points actually simulated
    cache_hits: int = 0            #: points served by the result cache
    batches: int = 0               #: checkpoint batches executed
    retried: int = 0               #: executor attempts re-queued
    quarantined: int = 0           #: points quarantined this run
    audited_bad: int = 0           #: completed entries demoted by audit
    drained: bool = False          #: stopped early by SIGTERM/SIGINT

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_points": self.total_points,
            "previously_complete": self.previously_complete,
            "submitted": self.submitted,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "audited_bad": self.audited_bad,
            "drained": self.drained,
        }


@dataclass
class CampaignRunResult:
    """What one :func:`run_campaign` call accomplished."""

    plan: CampaignPlan
    manifest_path: Path
    stats: CampaignRunStats
    complete: bool
    drained: bool = False
    quarantined: Dict[str, Dict[str, Any]] = field(default_factory=dict)


class CampaignManifest:
    """The on-disk checkpoint of one campaign's progress."""

    def __init__(self, path: Path, data: Dict[str, Any]):
        self.path = Path(path)
        self.data = data

    # -- construction --------------------------------------------------

    @classmethod
    def fresh(cls, path: Path, plan: CampaignPlan) -> "CampaignManifest":
        return cls(
            path,
            {
                "campaign": plan.spec.name,
                "description": plan.spec.description,
                "code_version": code_version(),
                "created": _utc_now(),
                "experiments": [
                    {
                        "name": exp.name,
                        "kind": exp.kind,
                        "params": exp.params,
                        "points": exp.points,
                        "job_hashes": exp.job_hashes,
                    }
                    for exp in plan.experiments
                ],
                "total_points": plan.total_points,
                "completed": [],
                "quarantined": {},
                "runs": [],
                "status": "planned",
            },
        )

    @classmethod
    def load(cls, path: Path) -> Optional["CampaignManifest"]:
        """Load a manifest, recovering from a torn primary.

        A corrupt ``manifest.json`` (truncated JSON, non-manifest
        payload) is quarantined next to the campaign state and the
        previous rotation (``manifest.json.prev``) is tried; only when
        neither is usable does the campaign restart from scratch —
        and even then the result cache still turns completed points
        into cache hits, not re-simulations.
        """
        path = Path(path)
        primary = cls._read(path)
        if primary is not None:
            return cls(path, primary)
        if path.exists():
            quarantine_file(path, "corrupt campaign manifest")
        prev = cls._read(Path(str(path) + MANIFEST_PREV_SUFFIX))
        if prev is not None:
            notes = prev.setdefault("notes", [])
            notes.append(
                "recovered from manifest.json.prev after a torn/corrupt "
                "primary manifest"
            )
            return cls(path, prev)
        return None

    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or "completed" not in data:
            return None
        return data

    @classmethod
    def for_plan(cls, path: Path, plan: CampaignPlan) -> "CampaignManifest":
        """Load-or-create, reconciled against the current plan.

        An existing manifest keeps its completion set (and quarantine
        records) only where they are still meaningful: hashes that the
        current plan still wants, written by the current code version.
        A plan change (different grids, new experiments) keeps the
        overlap; a code-version change resets completion entirely —
        the cache generation those points lived in is stranded anyway.
        """
        existing = cls.load(path)
        manifest = cls.fresh(path, plan)
        if existing is None:
            return manifest
        if existing.data.get("code_version") != code_version():
            manifest.data["runs"] = list(existing.data.get("runs") or [])
            manifest.data["notes"] = [
                "completion reset: manifest was written by code version "
                f"{existing.data.get('code_version')!r}"
            ]
            return manifest
        wanted = set(plan.jobs)
        manifest.data["runs"] = list(existing.data.get("runs") or [])
        if existing.data.get("notes"):
            manifest.data["notes"] = list(existing.data["notes"])
        manifest.data["created"] = existing.data.get(
            "created", manifest.data["created"]
        )
        manifest.data["completed"] = sorted(
            h for h in existing.data.get("completed") or [] if h in wanted
        )
        manifest.data["quarantined"] = {
            h: record
            for h, record in (existing.data.get("quarantined") or {}).items()
            if h in wanted
        }
        manifest.refresh_status()
        return manifest

    # -- state ---------------------------------------------------------

    @property
    def completed(self) -> List[str]:
        return list(self.data.get("completed") or [])

    @property
    def quarantined(self) -> Dict[str, Dict[str, Any]]:
        return dict(self.data.get("quarantined") or {})

    @property
    def status(self) -> str:
        return self.data.get("status", "planned")

    def refresh_status(self) -> None:
        done = len(self.data.get("completed") or [])
        bad = len(self.data.get("quarantined") or {})
        total = self.data.get("total_points") or 0
        if total > 0 and done >= total:
            self.data["status"] = "complete"
        elif total > 0 and bad and done + bad >= total:
            self.data["status"] = "quarantined"
        elif done > 0 or bad > 0:
            self.data["status"] = "running"
        else:
            self.data["status"] = "planned"

    def mark_completed(self, job_hashes: List[str]) -> None:
        completed = set(self.data.get("completed") or [])
        completed.update(job_hashes)
        self.data["completed"] = sorted(completed)
        quarantined = self.data.get("quarantined") or {}
        for job_hash in job_hashes:
            quarantined.pop(job_hash, None)
        self.data["quarantined"] = quarantined
        self.refresh_status()

    def unmark_completed(self, job_hashes: List[str]) -> None:
        """Demote points whose store entries failed the audit."""
        drop = set(job_hashes)
        self.data["completed"] = sorted(
            h for h in self.data.get("completed") or [] if h not in drop
        )
        self.refresh_status()

    def mark_quarantined(self, failures) -> None:
        """Record terminal job failures (keyed by hash, diagnostics
        kept verbatim from the executor's ``JobFailure`` records)."""
        quarantined = self.data.get("quarantined") or {}
        for failure in failures:
            record = failure.as_dict()
            record["quarantined_at"] = _utc_now()
            quarantined[failure.job_hash] = record
        self.data["quarantined"] = quarantined
        self.refresh_status()

    def clear_quarantine(self, job_hashes=None) -> List[str]:
        """Forget quarantine records (all, or the given hashes) so the
        next run retries them; returns the cleared hashes."""
        quarantined = self.data.get("quarantined") or {}
        cleared = (
            list(quarantined)
            if job_hashes is None
            else [h for h in job_hashes if h in quarantined]
        )
        for job_hash in cleared:
            quarantined.pop(job_hash, None)
        self.data["quarantined"] = quarantined
        self.refresh_status()
        return cleared

    def record_run(self, stats: CampaignRunStats) -> None:
        self.data.setdefault("runs", []).append(
            {"finished": _utc_now(), **stats.as_dict()}
        )

    def experiment_progress(self) -> List[Dict[str, Any]]:
        """Per-experiment completion counts (for ``campaign status``)."""
        completed = set(self.completed)
        quarantined = set(self.data.get("quarantined") or {})
        progress = []
        for experiment in self.data.get("experiments") or []:
            hashes = set(experiment.get("job_hashes") or [])
            progress.append(
                {
                    "name": experiment.get("name"),
                    "kind": experiment.get("kind"),
                    "points": len(hashes),
                    "completed": len(hashes & completed),
                    "quarantined": len(hashes & quarantined),
                }
            )
        return progress

    def save(self) -> None:
        """Checkpoint atomically, rotating the previous good copy.

        The rotation only happens when the current primary parses as a
        manifest — a torn primary (injected or real) must never
        overwrite the last good ``.prev`` with garbage.
        """
        prev = Path(str(self.path) + MANIFEST_PREV_SUFFIX)
        if self._read(self.path) is not None:
            try:
                os.replace(self.path, prev)
            except OSError:
                pass
        atomic_write_json(
            self.path, self.data, indent=2,
            fault_site="manifest.write",
            fault_key=str(self.data.get("campaign") or ""),
        )


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def manifest_path(name: str, directory=None) -> Path:
    return campaign_dir(directory) / name / MANIFEST_NAME


class _DrainGuard:
    """Turn the first SIGTERM/SIGINT into a graceful-drain request.

    The batch in flight finishes, the manifest checkpoints, and
    :func:`run_campaign` returns a resumable result.  A second signal
    falls back to an immediate ``KeyboardInterrupt`` (the manifest is
    still no worse than the last checkpoint).  Outside the main
    thread, signal handlers cannot be installed; the guard degrades to
    a no-op.
    """

    def __init__(self):
        self.requested = False
        self._signal_name: Optional[str] = None
        self._previous = []

    def __enter__(self) -> "_DrainGuard":
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous = signal.signal(signum, self._handle)
                except (ValueError, OSError):
                    continue
                self._previous.append((signum, previous))
        return self

    def __exit__(self, *_exc) -> None:
        for signum, previous in self._previous:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous = []

    def _handle(self, signum, _frame) -> None:
        if self.requested:
            raise KeyboardInterrupt(
                f"second {signal.Signals(signum).name}: aborting drain"
            )
        self.requested = True
        self._signal_name = signal.Signals(signum).name


def run_campaign(
    spec: CampaignSpec,
    directory=None,
    scale: Optional[float] = None,
    n_jobs: int = 1,
    use_cache: bool = True,
    cache_dir=None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    progress=None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_timeout: Optional[float] = None,
    retry_quarantined: bool = False,
) -> CampaignRunResult:
    """Run (or resume) a campaign to completion.

    Interrupting mid-run is safe at any point: the manifest checkpoints
    after every batch, so the next invocation resubmits only the
    points that were not yet complete.  ``progress`` is an optional
    ``callable(str)`` for per-batch status lines (the CLI passes
    ``print``).

    ``max_retries``/``job_timeout`` go straight to the supervised
    executor; jobs that exhaust the budget are quarantined in the
    manifest (with diagnostics) rather than aborting the campaign, and
    stay skipped on resume until ``retry_quarantined=True`` clears
    them for another try.
    """
    from repro import telemetry

    plan = plan_campaign(spec, scale=scale)
    manifest = CampaignManifest.for_plan(
        manifest_path(spec.name, directory), plan
    )
    stats = CampaignRunStats(total_points=plan.total_points)
    cache = ResultCache(cache_dir) if use_cache else None
    tel = telemetry.get()
    if tel is not None:
        tel.set_role("campaign")
        tel.event(
            "campaign.start", campaign=spec.name,
            total_points=plan.total_points, n_jobs=n_jobs,
        )
    log.info(
        "campaign %s: %d point(s), n_jobs=%d, batch_size=%d",
        spec.name, plan.total_points, n_jobs, batch_size,
    )

    if retry_quarantined:
        cleared = manifest.clear_quarantine()
        if cleared and progress is not None:
            progress(
                f"[{plan.spec.name}] retrying {len(cleared)} "
                "quarantined point(s)"
            )

    completed = set(manifest.completed)
    skip = completed | set(manifest.quarantined)
    pending = [h for h in plan.jobs if h not in skip]
    stats.previously_complete = len(completed & set(plan.jobs))

    batch_size = max(1, int(batch_size))
    audit_rounds = 0
    try:
        with _DrainGuard() as drain:
            while True:
                for start in range(0, len(pending), batch_size):
                    batch = pending[start:start + batch_size]
                    span = (
                        tel.span(
                            "campaign.batch", campaign=spec.name,
                            batch=stats.batches + 1, points=len(batch),
                        )
                        if tel is not None else telemetry.NOOP_SPAN
                    )
                    with span:
                        run_jobs(
                            [plan.jobs[job_hash] for job_hash in batch],
                            n_jobs=n_jobs,
                            use_cache=use_cache,
                            cache_dir=cache_dir,
                            max_retries=max_retries,
                            job_timeout=job_timeout,
                            on_failure="skip",
                        )
                    batch_stats = run_jobs.last_stats
                    failed = {f.job_hash for f in batch_stats.failures}
                    stats.batches += 1
                    stats.submitted += len(batch)
                    stats.simulated += batch_stats.simulated
                    stats.cache_hits += batch_stats.cache_hits
                    stats.retried += batch_stats.retried
                    stats.quarantined += len(failed)
                    manifest.mark_completed(
                        [h for h in batch if h not in failed]
                    )
                    manifest.mark_quarantined(batch_stats.failures)
                    manifest.save()
                    log.debug(
                        "campaign %s batch %d: %d simulated, %d cached, "
                        "%d quarantined", spec.name, stats.batches,
                        batch_stats.simulated, batch_stats.cache_hits,
                        len(failed),
                    )
                    if tel is not None:
                        tel.event(
                            "campaign.batch.done", campaign=spec.name,
                            batch=stats.batches,
                            done=len(manifest.completed),
                            total=plan.total_points,
                            simulated=batch_stats.simulated,
                            cache_hits=batch_stats.cache_hits,
                            retried=batch_stats.retried,
                            quarantined=len(failed),
                        )
                    if progress is not None:
                        done = len(manifest.completed)
                        line = (
                            f"[{plan.spec.name}] {done}/"
                            f"{plan.total_points} points "
                            f"({batch_stats.simulated} simulated, "
                            f"{batch_stats.cache_hits} cached this batch)"
                        )
                        if failed:
                            line += f", {len(failed)} quarantined"
                        progress(line)
                    if drain.requested:
                        break
                if drain.requested:
                    stats.drained = True
                    manifest.data.setdefault("notes", []).append(
                        f"graceful drain ({drain._signal_name}) at "
                        f"{_utc_now()}: in-flight batch checkpointed, "
                        "resume with the same command"
                    )
                    break
                # -- store audit: completed points must really be on
                # disk and readable; demote + re-simulate what is not.
                if cache is None:
                    break
                bad = [
                    job_hash
                    for job_hash in manifest.completed
                    if job_hash in plan.jobs
                    and cache.verify(plan.jobs[job_hash]) != "ok"
                ]
                if not bad:
                    break
                audit_rounds += 1
                stats.audited_bad += len(bad)
                manifest.unmark_completed(bad)
                manifest.save()
                log.warning(
                    "campaign %s store audit round %d: %d bad entr(ies)",
                    spec.name, audit_rounds, len(bad),
                )
                if tel is not None:
                    tel.event(
                        "campaign.audit", campaign=spec.name,
                        round=audit_rounds, bad=len(bad),
                    )
                if progress is not None:
                    progress(
                        f"[{plan.spec.name}] store audit: {len(bad)} "
                        "completed entr(ies) missing or corrupt — "
                        "quarantined on disk, re-simulating"
                    )
                if audit_rounds >= MAX_AUDIT_ROUNDS:
                    manifest.data.setdefault("notes", []).append(
                        f"store audit gave up after {audit_rounds} "
                        f"rounds with {len(bad)} bad entr(ies)"
                    )
                    break
                pending = bad
    finally:
        manifest.record_run(stats)
        manifest.refresh_status()
        manifest.save()
        log.info(
            "campaign %s: %s (%d simulated, %d cached, %d quarantined)",
            spec.name, manifest.status, stats.simulated,
            stats.cache_hits, stats.quarantined,
        )
        if tel is not None:
            tel.event(
                "campaign.done", campaign=spec.name,
                status=manifest.status, simulated=stats.simulated,
                cache_hits=stats.cache_hits, retried=stats.retried,
                quarantined=stats.quarantined, drained=stats.drained,
            )

    # Annotate only when this run did work: a zero-submission resume
    # (status checks, the CI resume-noop step) must not append another
    # full copy of the annotation set to the generation's index.
    if use_cache and stats.submitted:
        _annotate_provenance(plan, cache_dir)
    return CampaignRunResult(
        plan=plan,
        manifest_path=manifest.path,
        stats=stats,
        complete=manifest.status == "complete",
        drained=stats.drained,
        quarantined=manifest.quarantined,
    )


def verify_campaign(
    spec: CampaignSpec,
    directory=None,
    scale: Optional[float] = None,
    cache_dir=None,
) -> Dict[str, Any]:
    """Exactly-once audit of a campaign's results in the store.

    Re-plans the campaign and checks, without simulating anything,
    that every planned job hash resolves to exactly one verified store
    entry (or a manifest quarantine record).  The payload backs
    ``repro campaign verify`` and the chaos CI gate:

    * ``missing`` — planned, marked complete, but no entry on disk;
    * ``corrupt`` — entry present but unreadable/seal-failed (the
      check quarantines it as a side effect);
    * ``unaccounted`` — planned but neither completed nor quarantined;
    * ``duplicates`` — hashes with entries in both store layouts;
    * ``quarantined`` — the manifest's quarantine records.

    ``ok`` is True when the store holds exactly the planned results:
    no missing/corrupt/unaccounted/duplicate entries (quarantined
    points are accounted for, but reported for the strict gate).
    """
    plan = plan_campaign(spec, scale=scale)
    manifest = CampaignManifest.load(manifest_path(spec.name, directory))
    cache = ResultCache(cache_dir)
    completed = set(manifest.completed) if manifest else set()
    quarantined = manifest.quarantined if manifest else {}
    missing: List[str] = []
    corrupt: List[str] = []
    unaccounted: List[str] = []
    verified = 0
    for job_hash, job in plan.jobs.items():
        if job_hash in completed:
            state = cache.verify(job)
            if state == "ok":
                verified += 1
            elif state == "missing":
                missing.append(job_hash)
            else:
                corrupt.append(job_hash)
        elif job_hash not in quarantined:
            unaccounted.append(job_hash)
    duplicates = [
        h for h in cache.duplicate_hashes() if h in plan.jobs
    ]
    return {
        "campaign": plan.spec.name,
        "planned": plan.total_points,
        "completed": len(completed & set(plan.jobs)),
        "verified": verified,
        "missing": sorted(missing),
        "corrupt": sorted(corrupt),
        "unaccounted": sorted(unaccounted),
        "duplicates": duplicates,
        "quarantined": quarantined,
        "store_quarantine_log": cache.quarantine_records(),
        "ok": not (missing or corrupt or unaccounted or duplicates),
    }


def _annotate_provenance(plan: CampaignPlan, cache_dir=None) -> None:
    """Tag the result-cache index with experiment attributions."""
    cache = ResultCache(cache_dir)
    for experiment in plan.experiments:
        cache.annotate(sorted(set(experiment.job_hashes)), experiment.name)
