"""Resumable campaign execution on top of :func:`run_jobs`.

A campaign's deduplicated job pool runs in batches; after every batch
the **campaign manifest** (``<campaign dir>/<name>/manifest.json``) is
rewritten atomically with the set of completed job hashes.  A killed
campaign therefore restarts exactly where it died: completed points
are never resubmitted (the manifest skips them before
:func:`run_jobs` is even called), and points the result cache already
holds cost a cache hit, not a simulation — ``simulated == 0`` for
every already-completed point is the invariant the resumability tests
pin down.

The manifest is only trusted for the code version that wrote it.  Any
source change mints a new :func:`~repro.engine.cache.code_version`,
which both strands the old cache generation and resets the manifest's
completion set — a resumed campaign can never mix results from two
simulator versions.

Completed batches also annotate the result-cache index with
per-experiment provenance (``experiments`` field), so
``repro cache --query experiment=<name>`` works after a campaign run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.campaigns.planner import CampaignPlan, plan_campaign
from repro.campaigns.spec import CampaignSpec, campaign_dir
from repro.engine.cache import ResultCache, code_version
from repro.engine.executor import run_jobs

MANIFEST_NAME = "manifest.json"

#: Points per checkpoint batch.  Small enough that a kill loses
#: minutes, large enough that manifest rewrites are noise.
DEFAULT_BATCH_SIZE = 16


@dataclass
class CampaignRunStats:
    """Accounting for one :func:`run_campaign` invocation."""

    total_points: int = 0          #: distinct points in the plan
    previously_complete: int = 0   #: skipped via the manifest
    submitted: int = 0             #: points handed to run_jobs
    simulated: int = 0             #: points actually simulated
    cache_hits: int = 0            #: points served by the result cache
    batches: int = 0               #: checkpoint batches executed

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_points": self.total_points,
            "previously_complete": self.previously_complete,
            "submitted": self.submitted,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
        }


@dataclass
class CampaignRunResult:
    """What one :func:`run_campaign` call accomplished."""

    plan: CampaignPlan
    manifest_path: Path
    stats: CampaignRunStats
    complete: bool


class CampaignManifest:
    """The on-disk checkpoint of one campaign's progress."""

    def __init__(self, path: Path, data: Dict[str, Any]):
        self.path = Path(path)
        self.data = data

    # -- construction --------------------------------------------------

    @classmethod
    def fresh(cls, path: Path, plan: CampaignPlan) -> "CampaignManifest":
        return cls(
            path,
            {
                "campaign": plan.spec.name,
                "description": plan.spec.description,
                "code_version": code_version(),
                "created": _utc_now(),
                "experiments": [
                    {
                        "name": exp.name,
                        "kind": exp.kind,
                        "params": exp.params,
                        "points": exp.points,
                        "job_hashes": exp.job_hashes,
                    }
                    for exp in plan.experiments
                ],
                "total_points": plan.total_points,
                "completed": [],
                "runs": [],
                "status": "planned",
            },
        )

    @classmethod
    def load(cls, path: Path) -> Optional["CampaignManifest"]:
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or "completed" not in data:
            return None
        return cls(Path(path), data)

    @classmethod
    def for_plan(cls, path: Path, plan: CampaignPlan) -> "CampaignManifest":
        """Load-or-create, reconciled against the current plan.

        An existing manifest keeps its completion set only where it is
        still meaningful: hashes that the current plan still wants,
        written by the current code version.  A plan change (different
        grids, new experiments) keeps the overlap; a code-version
        change resets completion entirely — the cache generation those
        points lived in is stranded anyway.
        """
        existing = cls.load(path)
        manifest = cls.fresh(path, plan)
        if existing is None:
            return manifest
        if existing.data.get("code_version") != code_version():
            manifest.data["runs"] = list(existing.data.get("runs") or [])
            manifest.data["notes"] = [
                "completion reset: manifest was written by code version "
                f"{existing.data.get('code_version')!r}"
            ]
            return manifest
        wanted = set(plan.jobs)
        manifest.data["runs"] = list(existing.data.get("runs") or [])
        manifest.data["created"] = existing.data.get(
            "created", manifest.data["created"]
        )
        manifest.data["completed"] = sorted(
            h for h in existing.data.get("completed") or [] if h in wanted
        )
        manifest.refresh_status()
        return manifest

    # -- state ---------------------------------------------------------

    @property
    def completed(self) -> List[str]:
        return list(self.data.get("completed") or [])

    @property
    def status(self) -> str:
        return self.data.get("status", "planned")

    def refresh_status(self) -> None:
        done = len(self.data.get("completed") or [])
        total = self.data.get("total_points") or 0
        if done >= total and total > 0:
            self.data["status"] = "complete"
        elif done > 0:
            self.data["status"] = "running"
        else:
            self.data["status"] = "planned"

    def mark_completed(self, job_hashes: List[str]) -> None:
        completed = set(self.data.get("completed") or [])
        completed.update(job_hashes)
        self.data["completed"] = sorted(completed)
        self.refresh_status()

    def record_run(self, stats: CampaignRunStats) -> None:
        self.data.setdefault("runs", []).append(
            {"finished": _utc_now(), **stats.as_dict()}
        )

    def experiment_progress(self) -> List[Dict[str, Any]]:
        """Per-experiment completion counts (for ``campaign status``)."""
        completed = set(self.completed)
        progress = []
        for experiment in self.data.get("experiments") or []:
            hashes = set(experiment.get("job_hashes") or [])
            progress.append(
                {
                    "name": experiment.get("name"),
                    "kind": experiment.get("kind"),
                    "points": len(hashes),
                    "completed": len(hashes & completed),
                }
            )
        return progress

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.data, indent=2) + "\n")
        os.replace(tmp, self.path)


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def manifest_path(name: str, directory=None) -> Path:
    return campaign_dir(directory) / name / MANIFEST_NAME


def run_campaign(
    spec: CampaignSpec,
    directory=None,
    scale: Optional[float] = None,
    n_jobs: int = 1,
    use_cache: bool = True,
    cache_dir=None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    progress=None,
) -> CampaignRunResult:
    """Run (or resume) a campaign to completion.

    Interrupting mid-run is safe at any point: the manifest checkpoints
    after every batch, so the next invocation resubmits only the
    points that were not yet complete.  ``progress`` is an optional
    ``callable(str)`` for per-batch status lines (the CLI passes
    ``print``).
    """
    plan = plan_campaign(spec, scale=scale)
    manifest = CampaignManifest.for_plan(
        manifest_path(spec.name, directory), plan
    )
    stats = CampaignRunStats(total_points=plan.total_points)

    completed = set(manifest.completed)
    pending = [h for h in plan.jobs if h not in completed]
    stats.previously_complete = plan.total_points - len(pending)

    batch_size = max(1, int(batch_size))
    try:
        for start in range(0, len(pending), batch_size):
            batch = pending[start:start + batch_size]
            run_jobs(
                [plan.jobs[job_hash] for job_hash in batch],
                n_jobs=n_jobs,
                use_cache=use_cache,
                cache_dir=cache_dir,
            )
            batch_stats = run_jobs.last_stats
            stats.batches += 1
            stats.submitted += len(batch)
            stats.simulated += batch_stats.simulated
            stats.cache_hits += batch_stats.cache_hits
            manifest.mark_completed(batch)
            manifest.save()
            if progress is not None:
                done = len(manifest.completed)
                progress(
                    f"[{plan.spec.name}] {done}/{plan.total_points} points "
                    f"({batch_stats.simulated} simulated, "
                    f"{batch_stats.cache_hits} cached this batch)"
                )
    finally:
        manifest.record_run(stats)
        manifest.refresh_status()
        manifest.save()

    # Annotate only when this run did work: a zero-submission resume
    # (status checks, the CI resume-noop step) must not append another
    # full copy of the annotation set to the generation's index.
    if use_cache and stats.submitted:
        _annotate_provenance(plan, cache_dir)
    return CampaignRunResult(
        plan=plan,
        manifest_path=manifest.path,
        stats=stats,
        complete=manifest.status == "complete",
    )


def _annotate_provenance(plan: CampaignPlan, cache_dir=None) -> None:
    """Tag the result-cache index with experiment attributions."""
    cache = ResultCache(cache_dir)
    for experiment in plan.experiments:
        cache.annotate(sorted(set(experiment.job_hashes)), experiment.name)
