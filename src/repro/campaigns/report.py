"""Campaign reports: per-experiment rows, slowdown panels, cache stats.

A report is assembled *from the drivers*, not from raw cache entries:
each experiment's ``run()`` is re-invoked with the campaign's exact
parameters, which on a completed campaign is a pure warm-cache replay
(``simulated == 0``) — the report generator proves its own freshness
by recording the executor stats of every replay.

The JSON form is the full structure; the markdown form renders each
experiment's main rows, one table per stress-family panel (rows tagged
``"panel"``), and a worst-case slowdown summary per experiment
(relative performance < 100 means the scheme slowed the workload
down).
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, List

from repro.analysis.report import markdown_table
from repro.campaigns.executor import CampaignManifest, manifest_path
from repro.campaigns.spec import CampaignError, CampaignSpec
from repro.engine.executor import run_jobs


def _rel_perf_keys(row: Dict[str, Any]) -> List[str]:
    return [
        key for key, value in row.items()
        if key.endswith("rel_perf_pct") and isinstance(value, (int, float))
    ]


def _slowdown_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Worst relative performance per metric across ``rows``."""
    worst: Dict[str, float] = {}
    for row in rows:
        for key in _rel_perf_keys(row):
            value = float(row[key])
            if key not in worst or value < worst[key]:
                worst[key] = value
    return {
        key: {
            "worst_rel_perf_pct": round(value, 3),
            "max_slowdown_pct": round(100.0 - value, 3),
        }
        for key, value in sorted(worst.items())
    }


def _probe_stream_rows(paths) -> List[Dict[str, Any]]:
    """Compact per-stream summaries (file, scheme, samples, sealed)."""
    from repro.sim.probes import read_probe_stream

    rows = []
    for path in paths:
        records, sealed = read_probe_stream(path)
        header = next(
            (r for r in records if r.get("k") == "header"), {}
        )
        rows.append({
            "file": path.name,
            "scheme": header.get("scheme", "?"),
            "samples": sum(
                1 for r in records if r.get("k") == "sample"
            ),
            "sealed": sealed,
        })
    return rows


def build_report(
    spec: CampaignSpec,
    directory=None,
    n_jobs: int = 1,
    use_cache: bool = True,
    probes_dir=None,
) -> Dict[str, Any]:
    """Assemble the report dict for a campaign.

    Requires the campaign's manifest to exist (``campaign run`` first;
    an incomplete campaign reports, but the replay simulates whatever
    is missing).

    With ``probes_dir`` the report also summarizes the probe streams
    (:mod:`repro.sim.probes`) under that directory: streams recorded
    *during* an experiment's replay (a warm-cache replay simulates
    nothing and records nothing) are attributed to that experiment,
    and every stream appears in the top-level ``probes`` panel.
    """
    manifest = CampaignManifest.load(manifest_path(spec.name, directory))
    if manifest is None:
        raise CampaignError(
            f"campaign {spec.name!r} has no manifest yet — "
            "run `repro campaign run` (or `plan`) first"
        )
    from repro.experiments.runner import EXPERIMENTS

    if probes_dir is not None:
        from repro.sim.probes import probe_files

    experiments = []
    for experiment in manifest.data.get("experiments") or []:
        kind = experiment["kind"]
        module = importlib.import_module(EXPERIMENTS[kind][0])
        seen_streams = (
            {p.name for p in probe_files(probes_dir)}
            if probes_dir is not None else set()
        )
        rows = module.run(
            n_jobs=n_jobs, use_cache=use_cache,
            **{k: v for k, v in (experiment.get("params") or {}).items()},
        )
        replay_stats = run_jobs.last_stats
        main_rows = [row for row in rows if "panel" not in row]
        panels: Dict[str, List[Dict[str, Any]]] = {}
        for row in rows:
            if "panel" in row:
                panels.setdefault(row["panel"], []).append(row)
        experiments.append(
            {
                "name": experiment["name"],
                "kind": kind,
                "params": experiment.get("params") or {},
                "rows": main_rows,
                "panels": panels,
                "slowdowns": _slowdown_summary(main_rows),
                "panel_slowdowns": {
                    family: _slowdown_summary(panel_rows)
                    for family, panel_rows in panels.items()
                },
                "replay": {
                    "simulated": replay_stats.simulated,
                    "cache_hits": replay_stats.cache_hits,
                    "unique_points": replay_stats.unique,
                },
            }
        )
        if probes_dir is not None:
            experiments[-1]["probes"] = _probe_stream_rows([
                p for p in probe_files(probes_dir)
                if p.name not in seen_streams
            ])
    report_probes = None
    if probes_dir is not None:
        report_probes = {
            "directory": str(probes_dir),
            "streams": _probe_stream_rows(probe_files(probes_dir)),
        }
    return {
        "campaign": spec.name,
        "description": manifest.data.get("description", spec.description),
        "status": manifest.status,
        "code_version": manifest.data.get("code_version"),
        "total_points": manifest.data.get("total_points"),
        "completed_points": len(manifest.completed),
        "quarantined_points": len(manifest.quarantined),
        "quarantined": manifest.quarantined,
        "runs": manifest.data.get("runs") or [],
        "experiments": experiments,
        "probes": report_probes,
    }


def format_report(report: Dict[str, Any]) -> str:
    """Render a report dict as markdown."""
    lines = [
        f"# Campaign report: {report['campaign']}",
        "",
        report.get("description") or "",
        "",
        f"- status: **{report['status']}** "
        f"({report['completed_points']}/{report['total_points']} points)",
        f"- code version: `{report.get('code_version')}`",
    ]
    runs = report.get("runs") or []
    if runs:
        total_sim = sum(r.get("simulated", 0) for r in runs)
        total_hits = sum(r.get("cache_hits", 0) for r in runs)
        lines.append(
            f"- executor history: {len(runs)} run(s), "
            f"{total_sim} point(s) simulated, "
            f"{total_hits} served from cache"
        )
    quarantined = report.get("quarantined") or {}
    if quarantined:
        lines += [
            "",
            f"## Quarantined points ({len(quarantined)})",
            "",
            "These points exhausted their retry budget and were "
            "skipped; rerun with `--retry-quarantined` once the cause "
            "is fixed.",
            "",
        ]
        for job_hash, record in sorted(quarantined.items()):
            lines.append(
                f"- `{job_hash[:12]}` {record.get('scheme')}/"
                f"{record.get('workload')}: {record.get('reason')} "
                f"after {record.get('attempts')} attempt(s) — "
                f"{record.get('message')}"
            )
    probes = report.get("probes")
    if probes:
        streams = probes.get("streams") or []
        sealed = sum(1 for s in streams if s.get("sealed"))
        lines += [
            "",
            f"## Probe streams ({probes.get('directory')})",
            "",
            f"{len(streams)} stream(s), {sealed} sealed — render with "
            "`repro probe report --probes-dir "
            f"{probes.get('directory')}`",
        ]
        if streams:
            lines += ["", markdown_table(streams)]
    for experiment in report.get("experiments") or []:
        replay = experiment.get("replay") or {}
        lines += [
            "",
            f"## {experiment['name']} ({experiment['kind']})",
            "",
            f"report replay: {replay.get('simulated', '?')} simulated, "
            f"{replay.get('cache_hits', '?')} cache hits over "
            f"{replay.get('unique_points', '?')} unique points",
            "",
            markdown_table(experiment.get("rows") or []),
        ]
        experiment_probes = experiment.get("probes")
        if experiment_probes:
            sealed = sum(
                1 for s in experiment_probes if s.get("sealed")
            )
            lines.append(
                f"- probe streams recorded during replay: "
                f"{len(experiment_probes)} ({sealed} sealed)"
            )
        for metric, summary in (experiment.get("slowdowns") or {}).items():
            lines.append(
                f"- worst `{metric}`: {summary['worst_rel_perf_pct']} "
                f"(slowdown {summary['max_slowdown_pct']}%)"
            )
        for family, rows in (experiment.get("panels") or {}).items():
            lines += [
                "",
                f"### panel: {family}",
                "",
                markdown_table(rows),
            ]
            family_summary = (
                experiment.get("panel_slowdowns") or {}
            ).get(family) or {}
            for metric, summary in family_summary.items():
                lines.append(
                    f"- worst `{metric}`: "
                    f"{summary['worst_rel_perf_pct']} "
                    f"(slowdown {summary['max_slowdown_pct']}%)"
                )
    return "\n".join(lines) + "\n"
