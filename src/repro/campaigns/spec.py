"""Declarative campaign specifications.

A **campaign** is a named set of experiments — figure drivers with
per-experiment parameter overrides (scale, seed batteries, FlipTH or
scheme grids, extra stress-family panels) — that is planned,
deduplicated, executed resumably, and reported as one unit.  The spec
layer is pure data: JSON-serializable, with no knowledge of jobs or
execution (the planner expands specs, the executor runs them).

Built-in campaigns:

``smoke``
    A minutes-long end-to-end exercise of the whole pipeline (CI's
    campaign-smoke job and the test suite use it).
``stress-panel``
    The three PR-3 stress families (capacity-pressure,
    row-conflict-heavy, multi-channel-imbalanced) run through the
    legacy-scheme figure (fig11) and the Mithril-tradeoff figure
    (fig9) as extra per-family panels.
``paper-scale``
    fig7/fig9/fig10/fig11 at ``scale=2.0`` with the full FlipTH grids
    and an extended attack-seed battery — the ROADMAP's
    "scale the sweeps" target, sized for an overnight run that the
    resumable executor can survive in pieces.

Custom campaigns load from JSON files with the same shape as
:meth:`CampaignSpec.to_dict` (see docs/CAMPAIGNS.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: The PR-3 stress families (registered workload kinds).
STRESS_FAMILIES = (
    "capacity-pressure",
    "row-conflict-heavy",
    "multi-channel-imbalanced",
)

#: Extended attack-seed battery for paper-scale runs (the CI default
#: is the first three; short closed-loop attack traces are
#: interleaving-phase sensitive, so more seeds tighten the average).
PAPER_SCALE_ATTACK_SEEDS = (31, 41, 51, 61, 71)


class CampaignError(ValueError):
    """A campaign spec or plan that cannot be satisfied."""


@dataclass
class ExperimentSpec:
    """One experiment of a campaign: a driver plus its overrides.

    ``kind`` names a registered experiment driver
    (:data:`repro.experiments.runner.EXPERIMENTS`) that exports
    ``plan_jobs``; ``params`` are keyword arguments passed verbatim to
    the driver's ``build_plan``/``run`` (so anything the driver sweeps
    — scale, flip_thresholds, schemes, attack_seeds, sweep,
    extra_workloads — is overridable per experiment).
    """

    name: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            params=dict(data.get("params") or {}),
        )


@dataclass
class CampaignSpec:
    """A named, ordered set of experiments run as one unit."""

    name: str
    description: str = ""
    experiments: List[ExperimentSpec] = field(default_factory=list)

    def validate(self) -> None:
        from repro.experiments.runner import EXPERIMENTS

        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        if not self.experiments:
            raise CampaignError(
                f"campaign {self.name!r} declares no experiments"
            )
        seen = set()
        for experiment in self.experiments:
            if experiment.name in seen:
                raise CampaignError(
                    f"campaign {self.name!r} has duplicate experiment "
                    f"name {experiment.name!r}"
                )
            seen.add(experiment.name)
            if experiment.kind not in EXPERIMENTS:
                raise CampaignError(
                    f"experiment {experiment.name!r} references unknown "
                    f"driver {experiment.kind!r}; known: "
                    f"{', '.join(EXPERIMENTS)}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "experiments": [e.to_dict() for e in self.experiments],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        spec = cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            experiments=[
                ExperimentSpec.from_dict(entry)
                for entry in data.get("experiments") or []
            ],
        )
        spec.validate()
        return spec


def builtin_campaigns() -> Dict[str, CampaignSpec]:
    """The shipped campaigns, keyed by name."""
    stress = list(STRESS_FAMILIES)
    seeds = list(PAPER_SCALE_ATTACK_SEEDS)
    campaigns = [
        CampaignSpec(
            name="smoke",
            description=(
                "Tiny end-to-end pipeline exercise: one fig9 point and "
                "one fig11 point with a stress panel each, CI-sized"
            ),
            experiments=[
                ExperimentSpec(
                    name="fig9-smoke",
                    kind="fig9",
                    params={
                        "scale": 0.1,
                        "sweep": [[6_250, 64]],
                        "extra_workloads": ["capacity-pressure"],
                    },
                ),
                ExperimentSpec(
                    name="fig11-smoke",
                    kind="fig11",
                    params={
                        "scale": 0.1,
                        "flip_thresholds": [6_250],
                        "schemes": ["mithril"],
                        "attack_seeds": [31],
                        "extra_workloads": ["row-conflict-heavy"],
                    },
                ),
            ],
        ),
        CampaignSpec(
            name="stress-panel",
            description=(
                "The three trace-foundry stress families through the "
                "legacy-scheme figure (fig11) and the Mithril-tradeoff "
                "figure (fig9) as per-family panels"
            ),
            experiments=[
                ExperimentSpec(
                    name="fig11-stress",
                    kind="fig11",
                    params={
                        "scale": 1.0,
                        "flip_thresholds": [6_250, 3_125],
                        "attack_seeds": [31],
                        "extra_workloads": stress,
                    },
                ),
                ExperimentSpec(
                    name="fig9-stress",
                    kind="fig9",
                    params={
                        "scale": 1.0,
                        "sweep": [[6_250, 256], [6_250, 128], [6_250, 64]],
                        "extra_workloads": stress,
                    },
                ),
            ],
        ),
        CampaignSpec(
            name="paper-scale",
            description=(
                "fig7/fig9/fig10/fig11 at scale 2.0 with the full "
                "FlipTH grids and the extended attack-seed battery — "
                "the precision run the result cache and resumable "
                "executor exist for"
            ),
            experiments=[
                ExperimentSpec(
                    name="fig7-paper", kind="fig7", params={"scale": 2.0}
                ),
                ExperimentSpec(
                    name="fig9-paper", kind="fig9", params={"scale": 2.0}
                ),
                ExperimentSpec(
                    name="fig10-paper",
                    kind="fig10",
                    params={"scale": 2.0, "attack_seeds": seeds},
                ),
                ExperimentSpec(
                    name="fig11-paper",
                    kind="fig11",
                    params={"scale": 2.0, "attack_seeds": seeds},
                ),
            ],
        ),
    ]
    return {campaign.name: campaign for campaign in campaigns}


def get_campaign(name_or_path: str) -> CampaignSpec:
    """Resolve a campaign by built-in name or JSON spec file path."""
    campaigns = builtin_campaigns()
    if name_or_path in campaigns:
        return campaigns[name_or_path]
    path = Path(name_or_path)
    if path.suffix == ".json" or path.exists():
        try:
            return CampaignSpec.from_dict(json.loads(path.read_text()))
        except OSError as error:
            raise CampaignError(
                f"cannot read campaign spec {name_or_path!r}: {error}"
            ) from error
        except (ValueError, KeyError, TypeError) as error:
            if isinstance(error, CampaignError):
                raise
            raise CampaignError(
                f"malformed campaign spec {name_or_path!r}: {error}"
            ) from error
    raise CampaignError(
        f"unknown campaign {name_or_path!r}; built-ins: "
        f"{', '.join(sorted(campaigns))} (or a path to a spec .json)"
    )


def campaign_dir(override: Optional[str] = None) -> Path:
    """The root directory holding campaign manifests and reports.

    ``REPRO_CAMPAIGN_DIR`` overrides the default
    ``~/.cache/repro/campaigns`` (tests point it at a tmpdir).
    """
    import os

    if override:
        return Path(override)
    env = os.environ.get("REPRO_CAMPAIGN_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "campaigns"
