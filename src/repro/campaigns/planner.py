"""Campaign planning: spec → deduplicated job list with provenance.

The planner asks each experiment's driver for its exact job list
(every simulation-bound driver exports ``plan_jobs()``), hashes the
jobs, and merges them into one deduplicated pool.  Provenance is kept
both ways: each planned experiment records the hashes it needs, and
the pool records which experiments want each hash — unprotected
baselines shared between figures (fig9/fig10/fig11 all run the benign
suite) plan once and simulate once.

Planning never simulates anything; ``repro campaign plan`` and
``repro campaign run --dry-run`` are pure expansions of this module.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.campaigns.spec import CampaignError, CampaignSpec
from repro.engine.job import SimJob


@dataclass
class PlannedExperiment:
    """One experiment, expanded: its params and the job hashes it needs."""

    name: str
    kind: str
    params: Dict[str, Any]
    job_hashes: List[str]

    @property
    def points(self) -> int:
        return len(self.job_hashes)


@dataclass
class CampaignPlan:
    """A fully expanded campaign: deduplicated jobs + provenance."""

    spec: CampaignSpec
    experiments: List[PlannedExperiment]
    #: hash -> job, first registration wins (jobs hashing alike are
    #: identical by construction).
    jobs: Dict[str, SimJob] = field(default_factory=dict)
    #: hash -> experiment names needing it (the provenance map).
    wanted_by: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def total_points(self) -> int:
        """Distinct simulation points across the whole campaign."""
        return len(self.jobs)

    @property
    def requested_points(self) -> int:
        """Points summed per experiment, before deduplication."""
        return sum(exp.points for exp in self.experiments)

    @property
    def shared_points(self) -> int:
        """Points needed by more than one experiment."""
        return sum(1 for names in self.wanted_by.values()
                   if len(names) > 1)

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly plan overview (the --dry-run payload)."""
        return {
            "campaign": self.spec.name,
            "description": self.spec.description,
            "experiments": [
                {
                    "name": exp.name,
                    "kind": exp.kind,
                    "params": exp.params,
                    "points": exp.points,
                    "unique_points": len(set(exp.job_hashes)),
                }
                for exp in self.experiments
            ],
            "requested_points": self.requested_points,
            "total_points": self.total_points,
            "shared_points": self.shared_points,
        }


def _driver_module(kind: str):
    from repro.experiments.runner import EXPERIMENTS

    return importlib.import_module(EXPERIMENTS[kind][0])


def plan_campaign(
    spec: CampaignSpec, scale: Optional[float] = None
) -> CampaignPlan:
    """Expand a campaign spec into a deduplicated plan.

    ``scale`` overrides every experiment's trace-length scale in one
    stroke — how CI and the tests shrink the built-in campaigns
    without forking their specs.
    """
    spec.validate()
    experiments: List[PlannedExperiment] = []
    jobs: Dict[str, SimJob] = {}
    wanted_by: Dict[str, List[str]] = {}
    for experiment in spec.experiments:
        module = _driver_module(experiment.kind)
        if not hasattr(module, "plan_jobs"):
            raise CampaignError(
                f"experiment {experiment.name!r}: driver "
                f"{experiment.kind!r} does not export plan_jobs() and "
                "cannot join a campaign (only the simulation-bound "
                "drivers can)"
            )
        params = dict(experiment.params)
        if scale is not None:
            params["scale"] = scale
        try:
            exp_jobs = module.plan_jobs(**params)
        except (TypeError, KeyError, ValueError) as error:
            raise CampaignError(
                f"experiment {experiment.name!r} ({experiment.kind}) "
                f"failed to plan with params {params}: {error}"
            ) from error
        hashes = []
        for job in exp_jobs:
            job_hash = job.job_hash()
            hashes.append(job_hash)
            jobs.setdefault(job_hash, job)
            wants = wanted_by.setdefault(job_hash, [])
            if experiment.name not in wants:
                wants.append(experiment.name)
        experiments.append(
            PlannedExperiment(
                name=experiment.name,
                kind=experiment.kind,
                params=params,
                job_hashes=hashes,
            )
        )
    return CampaignPlan(
        spec=spec, experiments=experiments, jobs=jobs, wanted_by=wanted_by
    )
