"""Render probe streams (:mod:`repro.sim.probes`) into per-scheme panels.

``build_probe_report`` reads every sealed (or torn) probe stream under
a directory and reduces each run's time-series into summary panels:
per-interval ACT throughput, RFM cadence and RAA trajectory, CbS
occupancy / spillover for Mithril and Graphene, BlockHammer blacklist
backlog and throttle-latency percentiles (power-of-two buckets from
:mod:`repro.sim.metrics`), dual-CBF saturation, and the tracker's
estimated-vs-true error on each bank's hottest row.  All percentiles
are exact (nearest-rank) over the recorded samples — no fitting.

``format_probe_report`` renders the same structure as markdown tables
(`repro probe report`); the JSON form is the dict itself.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.report import markdown_table
from repro.sim.metrics import (
    merge_counts,
    percentile_from_counts,
    percentile_summary,
    pow2_bucket_bounds,
)
from repro.sim.probes import probe_files, read_probe_stream


def _series_deltas(values: List[int]) -> List[int]:
    """Per-interval increments of a cumulative per-sample series."""
    return [
        after - before for before, after in zip(values, values[1:])
    ]


def _sum_over_banks(samples: List[Dict[str, Any]], key: str,
                    block: Optional[str] = None) -> List[int]:
    """Per-sample sum across banks of one vector field."""
    out = []
    for sample in samples:
        record = sample.get(block) if block else sample
        if not isinstance(record, dict):
            return []
        vector = record.get(key)
        if not isinstance(vector, list):
            return []
        out.append(sum(vector))
    return out


def _bucket_percentiles(counts: List[int]) -> Dict[str, Any]:
    """p50/p95/p99 bucket *bounds* of a pow2 histogram."""
    out: Dict[str, Any] = {"total": sum(counts)}
    for q in (50, 95, 99):
        index = percentile_from_counts(counts, q)
        if index is None:
            out[f"p{q}"] = None
            continue
        lower, upper = pow2_bucket_bounds(index, len(counts))
        out[f"p{q}"] = (
            f"[{lower}, inf)" if upper is None else f"[{lower}, {upper})"
        )
    return out


def _mithril_panel(samples: List[Dict[str, Any]], block: str,
                   extra_key: str) -> Optional[Dict[str, Any]]:
    entries = _sum_over_banks(samples, "entries", block)
    if not entries:
        return None
    last = samples[-1][block]
    return {
        "entries": percentile_summary(entries),
        "max_counter": percentile_summary(
            _sum_over_banks(samples, "max", block)
        ),
        "evictions": sum(last["evictions"]),
        "observed": sum(last["observed"]),
        extra_key: sum(last[extra_key]),
    }


def _blockhammer_panel(
    samples: List[Dict[str, Any]], table_entries: int
) -> Optional[Dict[str, Any]]:
    backlog = _sum_over_banks(samples, "backlog", "blockhammer")
    if not backlog:
        return None
    last = samples[-1]["blockhammer"]
    lat = merge_counts(
        [s["blockhammer"]["lat_hist"] for s in samples]
    )
    # header table_entries is both filters' counters; saturation is
    # per filter.
    filter_size = table_entries // 2 if table_entries else 0
    saturation = []
    for sample in samples:
        for pair in sample["blockhammer"]["cbf_nonzero"]:
            for value in pair:
                saturation.append(value)
    return {
        "backlog": percentile_summary(backlog),
        "pending": percentile_summary(
            _sum_over_banks(samples, "pending", "blockhammer")
        ),
        "throttle_latency_cycles": _bucket_percentiles(lat),
        "cbf_nonzero": percentile_summary(saturation),
        "cbf_filter_size": filter_size,
        "throttle_events": sum(last["throttle_events"]),
        "blacklisted_seen": sum(last["blacklisted_seen"]),
    }


def _run_summary(path: Path) -> Dict[str, Any]:
    records, sealed = read_probe_stream(path)
    header = next(
        (r for r in records if r.get("k") == "header"), {}
    )
    samples = [r for r in records if r.get("k") == "sample"]
    final = next((r for r in records if r.get("k") == "final"), None)
    run: Dict[str, Any] = {
        "file": path.name,
        "sealed": sealed,
        "scheme": header.get("scheme", "?"),
        "banks": header.get("banks", 0),
        "interval": header.get("interval", 0),
        "samples": len(samples),
        "final": final,
    }
    if not samples:
        return run
    acts = _sum_over_banks(samples, "acts")
    run["acts_per_interval"] = percentile_summary(_series_deltas(acts))
    if "raa" in samples[0]:
        issued = _sum_over_banks(samples, "rfm_issued")
        run["rfm"] = {
            "raa": percentile_summary(_sum_over_banks(samples, "raa")),
            "issued_per_interval": percentile_summary(
                _series_deltas(issued)
            ),
            "issued": issued[-1] if issued else 0,
            "elided": _sum_over_banks(samples, "rfm_elided")[-1],
            "mrr_reads": _sum_over_banks(samples, "mrr_reads")[-1],
        }
    if "mithril" in samples[0]:
        run["mithril"] = _mithril_panel(
            samples, "mithril", "spread_seen"
        )
    if "graphene" in samples[0]:
        run["graphene"] = _mithril_panel(samples, "graphene", "resets")
    if "blockhammer" in samples[0]:
        run["blockhammer"] = _blockhammer_panel(
            samples, int(header.get("table_entries") or 0)
        )
    errors = []
    for sample in samples:
        top = sample.get("top") or {}
        for row, true, est in zip(
            top.get("row", []), top.get("true", []), top.get("est", [])
        ):
            if row >= 0:
                errors.append(est - true)
    run["top_row_error"] = percentile_summary(errors)
    return run


def build_probe_report(directory) -> Dict[str, Any]:
    """Summarize every probe stream under ``directory``."""
    files = probe_files(directory)
    return {
        "directory": str(directory),
        "streams": len(files),
        "runs": [_run_summary(path) for path in files],
    }


def _percentile_row(label: str, summary) -> Optional[Dict[str, Any]]:
    if not isinstance(summary, dict) or not summary.get("count"):
        return None
    return {
        "series": label,
        "count": summary["count"],
        "min": summary["min"],
        "p50": summary["p50"],
        "p95": summary["p95"],
        "p99": summary["p99"],
        "max": summary["max"],
        "mean": summary["mean"],
    }


def format_probe_report(report: Dict[str, Any]) -> str:
    """Render a probe report dict as markdown."""
    lines = [
        f"# Probe report: {report['directory']}",
        "",
        f"{report['streams']} stream(s)",
    ]
    for run in report.get("runs") or []:
        lines += [
            "",
            f"## {run['file']} — {run['scheme']}",
            "",
            f"- banks: {run['banks']}, interval: {run['interval']} "
            f"cycles, samples: {run['samples']}, sealed: "
            f"{'yes' if run['sealed'] else 'NO (torn or unsealed)'}",
        ]
        final = run.get("final")
        if final:
            lines.append(
                f"- final: cycle {final.get('cycle')}, "
                f"{final.get('acts')} ACTs, "
                f"{final.get('rfm_commands')} RFMs, "
                f"{final.get('throttle_events')} throttle events, "
                f"{final.get('flips')} flips"
            )
        rows = []
        for label, key in (
            ("acts/interval", "acts_per_interval"),
            ("top-row est-true error", "top_row_error"),
        ):
            row = _percentile_row(label, run.get(key))
            if row:
                rows.append(row)
        rfm = run.get("rfm")
        if rfm:
            for label, summary in (
                ("RAA counter", rfm.get("raa")),
                ("RFMs/interval", rfm.get("issued_per_interval")),
            ):
                row = _percentile_row(label, summary)
                if row:
                    rows.append(row)
            lines.append(
                f"- RFM: {rfm.get('issued')} issued, "
                f"{rfm.get('elided')} elided, "
                f"{rfm.get('mrr_reads')} MRR reads"
            )
        for scheme_key, labels in (
            ("mithril", (("CbS entries", "entries"),
                         ("CbS max counter", "max_counter"))),
            ("graphene", (("CbS entries", "entries"),
                          ("CbS max counter", "max_counter"))),
            ("blockhammer", (("blacklist backlog", "backlog"),
                             ("blacklist pending", "pending"),
                             ("CBF nonzero counters", "cbf_nonzero"))),
        ):
            panel = run.get(scheme_key)
            if not panel:
                continue
            for label, key in labels:
                row = _percentile_row(label, panel.get(key))
                if row:
                    rows.append(row)
            if scheme_key in ("mithril", "graphene"):
                extra = "spread_seen" if scheme_key == "mithril" else "resets"
                lines.append(
                    f"- CbS: {panel.get('observed')} observed, "
                    f"{panel.get('evictions')} spillover evictions, "
                    f"{extra}={panel.get(extra)}"
                )
            else:
                lat = panel.get("throttle_latency_cycles") or {}
                lines.append(
                    f"- throttle latency (pending, cycles): "
                    f"p50 {lat.get('p50')}, p95 {lat.get('p95')}, "
                    f"p99 {lat.get('p99')} over {lat.get('total')} "
                    f"snapshot entries; {panel.get('throttle_events')} "
                    f"throttle events, {panel.get('blacklisted_seen')} "
                    f"rows blacklisted"
                )
        if rows:
            lines += ["", markdown_table(rows)]
    return "\n".join(lines) + "\n"
