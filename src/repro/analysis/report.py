"""Reporting helpers: markdown tables and terminal charts.

The experiment drivers return lists of plain dicts; these helpers turn
them into markdown (for EXPERIMENTS.md-style records) and quick ASCII
charts (for the CLI), with no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def markdown_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 3,
) -> str:
    """Render dict rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(fmt(row.get(col)) for col in columns) + " |"
        )
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart, scaled to the largest value."""
    if not values:
        return "(no data)"
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / peak)))
        lines.append(f"{str(key):>{label_width}} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: Optional[int] = None,
) -> str:
    """Multi-series ASCII line chart (one glyph per series).

    Series are sampled/stretched onto a common x-grid; y is scaled to
    the global min/max.  Useful for the Figure-6-style curves in a
    terminal.
    """
    if not series:
        return "(no data)"
    glyphs = "*o+x#@%&"
    longest = max(len(points) for points in series.values())
    if longest == 0:
        return "(no data)"
    width = width or max(longest, 16)
    all_values = [v for points in series.values() for v in points
                  if v is not None]
    if not all_values:
        return "(no data)"
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        clean = [p for p in points if p is not None]
        if not clean:
            continue
        for x in range(width):
            source = min(
                len(clean) - 1, int(x * len(clean) / width)
            )
            value = clean[source]
            y = int((value - lo) / span * (height - 1))
            grid[height - 1 - y][x] = glyph
    lines = ["".join(row) for row in grid]
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}"
        for i, name in enumerate(series)
    )
    footer = f"y: [{lo:g} .. {hi:g}]   {legend}"
    return "\n".join(lines + [footer])


def format_experiment(name: str, result) -> str:
    """Best-effort markdown rendering for any experiment result."""
    if isinstance(result, dict):
        first = next(iter(result.values()), None)
        if isinstance(first, dict):
            # nested mapping (table4 style): scheme -> column -> value
            columns = sorted(
                {key for row in result.values() for key in row},
                reverse=True,
            )
            rows = [
                {"scheme": scheme, **{str(c): row.get(c) for c in columns}}
                for scheme, row in result.items()
            ]
            return f"### {name}\n\n" + markdown_table(
                rows, ["scheme"] + [str(c) for c in columns]
            )
        rows = [{"key": k, "value": v} for k, v in result.items()
                if not isinstance(v, (list, tuple))]
        return f"### {name}\n\n" + markdown_table(rows)
    return f"### {name}\n\n" + markdown_table(list(result))
