"""Physical cost model: from table bits to mm² and nJ (Section VI-A).

The paper synthesizes the Mithril module with a TSMC 40 nm standard-cell
library, scales the area to a 20 nm DRAM node, then multiplies by 10x
(Devaux, HotChips'19) to account for the DRAM process's inferior logic
density.  This module reproduces that methodology with published
scaling constants so the headline claim — 0.024 mm² at FlipTH = 6.25K,
about 1% of a DDR5 chip when replicated over 32 banks — can be checked.

Constants are ballpark-public figures; as with the energy model, the
evaluation only consumes ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.config import MithrilConfig
from repro.params import DramOrganization


#: CAM bit cell in a 40nm logic process (um^2), incl. match-line logic.
CAM_BIT_UM2_40NM = 0.58
#: SRAM bit cell for non-CAM storage (um^2) at 40nm.
SRAM_BIT_UM2_40NM = 0.30
#: control logic overhead as a fraction of storage area
CONTROL_OVERHEAD = 0.35
#: linear-dimension scale factor from 40nm to 20nm (area scales ^2)
LINEAR_SCALE_40_TO_20 = 0.5
#: DRAM-process logic density penalty (Devaux, HotChips 2019)
DRAM_PROCESS_PENALTY = 10.0
#: die area of a 16Gb DDR5 chip (mm^2), ISSCC'19-scale part
DDR5_CHIP_AREA_MM2 = 76.0


@dataclass(frozen=True)
class ModuleCost:
    """Physical cost of one per-bank protection module."""

    storage_bits: int
    cam_bits: int
    area_mm2: float
    per_chip_area_mm2: float
    chip_fraction: float

    def summary(self) -> dict:
        return {
            "storage_bits": self.storage_bits,
            "area_mm2": round(self.area_mm2, 5),
            "per_chip_area_mm2": round(self.per_chip_area_mm2, 4),
            "chip_fraction_pct": round(100 * self.chip_fraction, 2),
        }


def logic_area_mm2(
    cam_bits: int,
    sram_bits: int = 0,
    control_overhead: float = CONTROL_OVERHEAD,
) -> float:
    """Area of a tracker module on the DRAM die, via the paper's route:
    40 nm synthesis -> 20 nm scaling -> 10x DRAM-process penalty."""
    um2_40 = cam_bits * CAM_BIT_UM2_40NM + sram_bits * SRAM_BIT_UM2_40NM
    um2_40 *= 1.0 + control_overhead
    um2_20 = um2_40 * (LINEAR_SCALE_40_TO_20 ** 2)
    um2_dram = um2_20 * DRAM_PROCESS_PENALTY
    return um2_dram / 1e6


def mithril_module_cost(
    config: MithrilConfig,
    organization: Optional[DramOrganization] = None,
) -> ModuleCost:
    """Physical cost of the Mithril module of Figure 4.

    Both the address and the counter fields sit in CAMs (the address
    CAM is searched on every ACT; the counter CAM supports the MaxPtr /
    MinPtr updates), so all table bits are CAM bits.
    """
    organization = organization or DramOrganization()
    bits = config.table_bits(organization)
    area = logic_area_mm2(cam_bits=bits)
    per_chip = area * organization.banks_per_rank
    return ModuleCost(
        storage_bits=bits,
        cam_bits=bits,
        area_mm2=area,
        per_chip_area_mm2=per_chip,
        chip_fraction=per_chip / DDR5_CHIP_AREA_MM2,
    )


def mc_table_cost(
    table_bits: int,
    organization: Optional[DramOrganization] = None,
) -> ModuleCost:
    """Cost of an MC-side table (SRAM-dominated, logic process).

    MC-side schemes skip the DRAM-process penalty but must provision
    for the worst-case bank count (the paper's 1,024-bank argument is
    reported by the caller through ``table_bits``).
    """
    organization = organization or DramOrganization()
    um2 = table_bits * SRAM_BIT_UM2_40NM * (1.0 + CONTROL_OVERHEAD)
    um2 *= LINEAR_SCALE_40_TO_20 ** 2  # a modern logic node
    area = um2 / 1e6
    return ModuleCost(
        storage_bits=table_bits,
        cam_bits=0,
        area_mm2=area,
        per_chip_area_mm2=area,
        chip_fraction=0.0,
    )


def paper_headline_check(flip_th: int = 6_250) -> dict:
    """The Section VI-E claim: ~0.024 mm² per bank, ~1% of the chip."""
    from repro.core.config import paper_default_config

    config = paper_default_config(flip_th)
    cost = mithril_module_cost(config)
    return {
        "flip_th": flip_th,
        "rfm_th": config.rfm_th,
        "n_entries": config.n_entries,
        "module_mm2": round(cost.area_mm2, 4),
        "paper_module_mm2": 0.024,
        "chip_fraction_pct": round(100 * cost.chip_fraction, 2),
        "paper_chip_fraction_pct": 1.0,
    }
