"""Per-bank tracker table sizes (Table IV of the paper).

Each function returns KB per bank.  The accounting follows each
scheme's published structure:

* **Mithril** — Nentry x (row address + wrapping counter).  The counter
  only needs to express the bounded spread (Section IV-E), and no
  duplicate/reset table is needed.
* **Graphene** — entries sized so no row reaches FlipTH/4 untracked in
  one reset window; counters must count up to the full window's ACTs.
* **TWiCe** — lossy-counting entries with act-count and life fields;
  the pruning analysis yields the (1 + ln(intervals)) blow-up.
* **CBT** — 2x the leaf budget in tree nodes.
* **BlockHammer** — two interleaved CBFs of ceil(log2(N_BL))-bit
  counters.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.core.bounds import wrapping_counter_bits
from repro.core.config import MithrilConfig, min_entries_for
from repro.mitigations.blockhammer import blockhammer_config
from repro.params import (
    DramOrganization,
    DramTimings,
    MITHRIL_DEFAULT_RFM_TH,
    PAPER_FLIP_THRESHOLDS,
)


def _row_address_bits(organization: Optional[DramOrganization] = None) -> int:
    organization = organization or DramOrganization()
    return max(1, math.ceil(math.log2(organization.rows_per_bank)))


def _bits_to_kb(bits: int) -> float:
    return bits / 8.0 / 1024.0


def mithril_table_kb(
    flip_th: int,
    rfm_th: Optional[int] = None,
    adaptive_th: int = 0,
    timings: Optional[DramTimings] = None,
    organization: Optional[DramOrganization] = None,
) -> Optional[float]:
    """Mithril table size; None when (FlipTH, RFM_TH) is infeasible."""
    rfm_th = rfm_th or MITHRIL_DEFAULT_RFM_TH.get(flip_th, 64)
    n = min_entries_for(flip_th, rfm_th, adaptive_th, timings=timings)
    if n is None:
        return None
    config = MithrilConfig(
        flip_th=flip_th, rfm_th=rfm_th, n_entries=n, adaptive_th=adaptive_th
    )
    return config.table_kilobytes(organization)


def graphene_table_kb(
    flip_th: int,
    timings: Optional[DramTimings] = None,
    organization: Optional[DramOrganization] = None,
) -> float:
    timings = timings or DramTimings()
    threshold = max(1, flip_th // 4)
    acts_per_window = timings.acts_per_trefw() // 2  # reset every tREFW/2
    entries = max(1, math.ceil(acts_per_window / threshold))
    counter_bits = math.ceil(math.log2(max(2, acts_per_window)))
    bits = entries * (_row_address_bits(organization) + counter_bits)
    return _bits_to_kb(bits)


def twice_table_kb(
    flip_th: int,
    timings: Optional[DramTimings] = None,
    organization: Optional[DramOrganization] = None,
) -> float:
    timings = timings or DramTimings()
    threshold = max(1, flip_th // 4)
    acts = timings.acts_per_trefw()
    intervals = max(2, int(timings.trefw / timings.trefi))
    # Pruning keeps entries alive at progressively higher rates; the
    # worst-case occupancy integrates to a harmonic-series blow-up.
    entries = math.ceil((acts / threshold) * (1.0 + math.log(intervals)))
    act_bits = math.ceil(math.log2(max(2, threshold)))
    life_bits = math.ceil(math.log2(intervals))
    valid_bits = 1
    bits = entries * (
        _row_address_bits(organization) + act_bits + life_bits + valid_bits
    )
    return _bits_to_kb(bits)


def cbt_table_kb(
    flip_th: int,
    timings: Optional[DramTimings] = None,
    organization: Optional[DramOrganization] = None,
    node_bits: int = 40,
) -> float:
    timings = timings or DramTimings()
    threshold = max(1, flip_th // 4)
    leaves = max(1, math.ceil(timings.acts_per_trefw() / threshold))
    nodes = 2 * leaves
    return _bits_to_kb(nodes * node_bits)


def blockhammer_table_kb(flip_th: int) -> float:
    cbf_size, n_bl = blockhammer_config(flip_th)
    counter_bits = math.ceil(math.log2(max(2, n_bl)))
    return _bits_to_kb(cbf_size * 2 * counter_bits)


def table_size_comparison(
    flip_thresholds: Sequence[int] = PAPER_FLIP_THRESHOLDS,
    mithril_rfm_ths: Sequence[int] = (256, 128, 64, 32),
    timings: Optional[DramTimings] = None,
) -> Dict[str, Dict[int, Optional[float]]]:
    """The full Table IV: scheme -> FlipTH -> KB per bank (or None)."""
    rows: Dict[str, Dict[int, Optional[float]]] = {}
    rows["CBT @ MC"] = {
        f: round(cbt_table_kb(f, timings), 3) for f in flip_thresholds
    }
    rows["Graphene @ MC"] = {
        f: round(graphene_table_kb(f, timings), 3) for f in flip_thresholds
    }
    rows["BlockHammer @ MC"] = {
        f: round(blockhammer_table_kb(f), 3) for f in flip_thresholds
    }
    rows["TWiCe @ buffer chip"] = {
        f: round(twice_table_kb(f, timings), 3) for f in flip_thresholds
    }
    for rfm_th in mithril_rfm_ths:
        label = f"Mithril-{rfm_th} @ DRAM"
        rows[label] = {}
        for flip_th in flip_thresholds:
            kb = mithril_table_kb(flip_th, rfm_th, timings=timings)
            rows[label][flip_th] = round(kb, 3) if kb is not None else None
    return rows
