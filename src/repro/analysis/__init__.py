"""Analytic models: table area (Table IV), dynamic energy, PARFM failure."""

from repro.analysis.area import (
    blockhammer_table_kb,
    cbt_table_kb,
    graphene_table_kb,
    mithril_table_kb,
    table_size_comparison,
    twice_table_kb,
)
from repro.analysis.energy import (
    EnergyModel,
    dynamic_energy_nj,
    energy_overhead_percent,
)
from repro.analysis.cost_model import (
    ModuleCost,
    mc_table_cost,
    mithril_module_cost,
    paper_headline_check,
)
from repro.analysis.report import bar_chart, line_chart, markdown_table
from repro.analysis.sensitivity import (
    act_rate_sensitivity,
    refresh_window_sensitivity,
    rfm_window_sensitivity,
)
from repro.analysis.parfm_failure import (
    parfm_bank_failure_probability,
    parfm_rfm_th_for,
    parfm_system_failure_probability,
)

__all__ = [
    "mithril_table_kb",
    "graphene_table_kb",
    "twice_table_kb",
    "cbt_table_kb",
    "blockhammer_table_kb",
    "table_size_comparison",
    "EnergyModel",
    "dynamic_energy_nj",
    "energy_overhead_percent",
    "parfm_bank_failure_probability",
    "parfm_system_failure_probability",
    "parfm_rfm_th_for",
    "ModuleCost",
    "mithril_module_cost",
    "mc_table_cost",
    "paper_headline_check",
    "markdown_table",
    "bar_chart",
    "line_chart",
    "refresh_window_sensitivity",
    "rfm_window_sensitivity",
    "act_rate_sensitivity",
]
