"""PARFM failure probability (Appendix C of the paper).

The worst-case attacker activates RFM_TH distinct rows once per RFM
interval (the cost-effectiveness argument of Equation (5)).  A single
row fails when it accumulates FlipTH/2 ACTs (= FlipTH/2 intervals at
one ACT per interval) without ever being the sampled row.

The paper's recurrence for the single-row failure probability at the
i-th RFM command (R = RFM_TH, F = FlipTH):

    P[i] = P[i-1] + (1/R) * (1 - 1/R)^(F/2) * (1 - P[i - F/2 - 1])
    P[i] = 0                          for 0 <= i <= F/2 - 1
    P[F/2] = (1 - 1/R)^(F/2)

Bank failure is upper-bounded by R * Fail(1); the system failure with
``n_banks`` simultaneously attackable banks is 1 - (1 - bank)^n_banks.
:func:`parfm_rfm_th_for` finds the largest RFM_TH meeting a target.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.params import DramTimings


def _single_row_failure(rfm_th: int, flip_th: int, intervals: int) -> float:
    """Fail(1): recurrence over ``intervals`` RFM commands.

    The paper's recurrence assumes the attacker's most cost-effective
    pattern of one ACT per RFM interval (Equation (5)), which needs
    FlipTH/2 intervals.  When fewer intervals fit in tREFW the attacker
    must spend ``j = ceil((FlipTH/2) / W)`` ACTs per interval, raising
    its per-interval selection probability to ``j / RFM_TH`` — the
    generalized recurrence below covers both regimes.
    """
    half = flip_th // 2
    acts_per_interval = max(1, math.ceil(half / max(1, intervals)))
    if acts_per_interval >= rfm_th:
        return 0.0  # the row is certain to be sampled every interval
    streak = math.ceil(half / acts_per_interval)
    if intervals < streak:
        return 0.0
    select_p = acts_per_interval / rfm_th
    survive = (1.0 - select_p) ** streak
    p = [0.0] * (intervals + 1)
    p[streak] = survive
    step = select_p * survive
    for i in range(streak + 1, intervals + 1):
        p[i] = p[i - 1] + step * (1.0 - p[i - streak - 1])
    return min(1.0, p[intervals])


def parfm_bank_failure_probability(
    rfm_th: int,
    flip_th: int,
    timings: Optional[DramTimings] = None,
) -> float:
    """Upper bound on one bank's failure probability within tREFW."""
    if rfm_th <= 1:
        raise ValueError(f"rfm_th must be > 1, got {rfm_th}")
    if flip_th <= 2:
        raise ValueError(f"flip_th must be > 2, got {flip_th}")
    timings = timings or DramTimings()
    intervals = timings.rfm_intervals_per_trefw(rfm_th)
    fail_one = _single_row_failure(rfm_th, flip_th, intervals)
    # First (dominant) inclusion-exclusion term: RFM_TH choose 1 rows.
    return min(1.0, rfm_th * fail_one)


def parfm_system_failure_probability(
    rfm_th: int,
    flip_th: int,
    n_banks: int = 22,
    timings: Optional[DramTimings] = None,
) -> float:
    """System failure with ``n_banks`` simultaneously attackable banks.

    22 is the paper's count of banks activatable under tFAW in its
    2-rank, 64-bank system.
    """
    bank = parfm_bank_failure_probability(rfm_th, flip_th, timings)
    if bank >= 1.0:
        return 1.0
    if bank < 1e-8:
        # Union bound, exact to first order and conservative; avoids
        # the catastrophic cancellation of 1 - (1 - p)^n for tiny p.
        return n_banks * bank
    return 1.0 - (1.0 - bank) ** n_banks


def parfm_rfm_th_for(
    flip_th: int,
    target: float = 1e-15,
    n_banks: int = 22,
    timings: Optional[DramTimings] = None,
    max_rfm_th: int = 1024,
) -> Optional[int]:
    """Largest RFM_TH whose system failure probability stays below target.

    Returns None when even RFM_TH = 2 cannot meet the target.
    """
    best = None
    lo, hi = 2, max_rfm_th
    while lo <= hi:
        mid = (lo + hi) // 2
        failure = parfm_system_failure_probability(
            mid, flip_th, n_banks, timings
        )
        if failure < target:
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best
