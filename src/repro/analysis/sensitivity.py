"""Sensitivity of the Theorem-1 configuration to DRAM parameters.

The bound M depends on the DRAM generation through W — the number of
RFM intervals in a refresh window — which in turn depends on tREFW,
tREFI, tRFC, tRC and tRFM.  These helpers quantify how the required
table size moves as those parameters move, answering the deployment
questions a DRAM vendor faces:

* What if my part uses a 64 ms refresh window (DDR4-style) instead of
  32 ms?
* What does halving tRFM (faster in-DRAM refresh) buy?
* How much margin does the table need if tRC shrinks a step?
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.config import MithrilConfig, min_entries_for
from repro.params import DramTimings


def _with(timings: DramTimings, **kwargs) -> DramTimings:
    if "trefw" in kwargs and "trefi" not in kwargs:
        # Keep the 8192-group structure: tREFI scales with tREFW.
        kwargs["trefi"] = kwargs["trefw"] / 8192.0
    return dataclasses.replace(timings, **kwargs)


def table_size_kb(
    flip_th: int,
    rfm_th: int,
    timings: DramTimings,
    adaptive_th: int = 0,
) -> Optional[float]:
    n = min_entries_for(flip_th, rfm_th, adaptive_th, timings=timings)
    if n is None:
        return None
    config = MithrilConfig(
        flip_th=flip_th, rfm_th=rfm_th, n_entries=n, adaptive_th=adaptive_th
    )
    return config.table_kilobytes()


def sweep_parameter(
    parameter: str,
    values: Sequence[float],
    flip_th: int = 6_250,
    rfm_th: int = 128,
    base: Optional[DramTimings] = None,
) -> List[Dict]:
    """Table size across values of one timing parameter."""
    base = base or DramTimings()
    rows = []
    for value in values:
        timings = _with(base, **{parameter: value})
        n = min_entries_for(flip_th, rfm_th, timings=timings)
        rows.append(
            {
                "parameter": parameter,
                "value": value,
                "flip_th": flip_th,
                "rfm_th": rfm_th,
                "n_entries": n,
                "table_kb": table_size_kb(flip_th, rfm_th, timings),
            }
        )
    return rows


def refresh_window_sensitivity(
    flip_th: int = 6_250, rfm_th: int = 128
) -> List[Dict]:
    """32 ms (DDR5) vs 64 ms (DDR4-style) vs 16 ms (hot-temperature)."""
    return sweep_parameter(
        "trefw", [16e6, 32e6, 64e6], flip_th=flip_th, rfm_th=rfm_th
    )


def rfm_window_sensitivity(
    flip_th: int = 6_250, rfm_th: int = 128
) -> List[Dict]:
    """Shorter tRFM leaves more ACT slots per window (larger W)."""
    base = DramTimings()
    return sweep_parameter(
        "trfm",
        [base.trfm / 2, base.trfm, base.trfm * 2],
        flip_th=flip_th,
        rfm_th=rfm_th,
    )


def act_rate_sensitivity(
    flip_th: int = 6_250, rfm_th: int = 128
) -> List[Dict]:
    """Faster tRC lets attackers issue more ACTs per window."""
    base = DramTimings()
    return sweep_parameter(
        "trc",
        [base.trc * 0.75, base.trc, base.trc * 1.5],
        flip_th=flip_th,
        rfm_th=rfm_th,
    )
