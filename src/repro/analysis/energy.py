"""DRAM dynamic-energy model.

The paper derives dynamic energy from ACT/PRE/RD/WR/refresh event
counts (Section VI-A).  Our per-operation constants are public DDR5
ballpark figures; every evaluation reports *relative* overheads, which
only depend on the ratios between operations, not their absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.params import DramOrganization
from repro.sim.metrics import SimulationResult
from repro.types import EnergyCounts


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation dynamic energies, in nanojoules."""

    act_pre_nj: float = 2.0       #: one ACT + eventual PRE pair
    read_nj: float = 1.6          #: one 64B read burst
    write_nj: float = 1.7         #: one 64B write burst
    refresh_row_nj: float = 2.2   #: restoring one row during REF/ARR/RFM
    rfm_command_nj: float = 0.4   #: RFM command decode overhead
    mrr_nj: float = 0.3           #: one mode-register read (Mithril+)
    tracker_lookup_nj: float = 0.01  #: CAM lookup/update per ACT

    def energy_nj(
        self,
        counts: EnergyCounts,
        organization: Optional[DramOrganization] = None,
        tracked_acts: int = 0,
    ) -> float:
        organization = organization or DramOrganization()
        rows_per_tick = organization.rows_per_refresh_group
        total = counts.acts * self.act_pre_nj
        total += counts.reads * self.read_nj
        total += counts.writes * self.write_nj
        total += counts.auto_refreshes * rows_per_tick * self.refresh_row_nj
        total += counts.preventive_refresh_rows * self.refresh_row_nj
        total += counts.rfm_commands * self.rfm_command_nj
        total += counts.mrr_commands * self.mrr_nj
        total += tracked_acts * self.tracker_lookup_nj
        return total


DEFAULT_ENERGY_MODEL = EnergyModel()


def dynamic_energy_nj(
    result: SimulationResult,
    model: EnergyModel = DEFAULT_ENERGY_MODEL,
    organization: Optional[DramOrganization] = None,
) -> float:
    """Total dynamic energy of a simulation run."""
    return model.energy_nj(
        result.energy, organization, tracked_acts=result.acts
    )


def energy_overhead_percent(
    result: SimulationResult,
    baseline: SimulationResult,
    model: EnergyModel = DEFAULT_ENERGY_MODEL,
    organization: Optional[DramOrganization] = None,
) -> float:
    """Extra dynamic energy relative to the unprotected baseline (%)."""
    base = dynamic_energy_nj(baseline, model, organization)
    if base == 0:
        return 0.0
    return 100.0 * (dynamic_energy_nj(result, model, organization) - base) / base
