"""Per-bank controller: ties timing, refresh, RowHammer model and scheme.

This is the piece of the simulator where the MC-DRAM cooperation of the
paper actually happens:

* every ACT updates the protection scheme's tracker and the RowHammer
  fault model, and bumps the MC's RAA counter;
* when the RAA counter saturates, the MC issues RFM (possibly gated by
  the Mithril+ MRR flag) and the bank is blocked for tRFM while the
  scheme performs its preventive refreshes;
* ARR-based legacy schemes instead demand immediate victim refreshes
  after a hazardous ACT, blocking the bank for tRC per victim row;
* auto-refresh ticks restore one row group per tREFI and block the
  bank for tRFC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dram.bank import BankServiceResult, BankTimingModel, FawTracker
from repro.dram.hammer import HammerModel
from repro.dram.refresh import AutoRefreshEngine
from repro.mc.rfm import RfmIssueLogic
from repro.params import SystemConfig
from repro.protection import NoProtection, ProtectionScheme
from repro.types import EnergyCounts, MemoryRequest


@dataclass
class ChannelState:
    """Shared per-channel resources: data bus and rank ACT window."""

    bus_free_cycle: int = 0
    faw: Optional[FawTracker] = None


class BankController:
    """All state needed to serve requests on one DRAM bank."""

    def __init__(
        self,
        config: SystemConfig,
        scheme: Optional[ProtectionScheme] = None,
        rfm_th: int = 0,
        flip_th: int = 10_000,
        channel_state: Optional[ChannelState] = None,
        page_policy=None,
        track_hammer: bool = True,
    ):
        timings = config.timings
        organization = config.organization
        self.config = config
        self.scheme = scheme or NoProtection()
        self.channel_state = channel_state or ChannelState(
            faw=FawTracker(timings.cycles(timings.tfaw))
        )
        self.bank = BankTimingModel(timings, faw=self.channel_state.faw)
        self.refresh = AutoRefreshEngine(timings, organization)
        self.hammer: Optional[HammerModel] = (
            HammerModel(flip_th, organization.rows_per_bank)
            if track_hammer
            else None
        )
        self.page_policy = page_policy
        self.queue: List[MemoryRequest] = []
        self._consecutive_hits = 0
        self._trc_cycles = timings.trc_cycles
        self._trfm_cycles = timings.trfm_cycles
        self._trfc_cycles = timings.trfc_cycles
        self.rfm_logic = (
            RfmIssueLogic(rfm_th, mrr_gated=self.scheme.uses_mrr_gating)
            if (self.scheme.uses_rfm and rfm_th > 0)
            else None
        )
        self.energy = EnergyCounts()
        self.arr_stall_cycles = 0
        self.rfm_stall_cycles = 0
        self.refresh_stall_cycles = 0

    def never_throttles(self) -> bool:
        """True when ``throttle_release`` is the inherited no-op.

        The event loop then skips release bookkeeping entirely.
        Evaluated live (not cached at construction) so that a
        ``throttle_release`` override installed anywhere — a
        BankController subclass or class-level patch, this controller
        instance, the scheme class, or the scheme instance — is
        always honored.
        """
        return (
            type(self).throttle_release is BankController.throttle_release
            and type(self.scheme).throttle_release
            is ProtectionScheme.throttle_release
            and "throttle_release" not in self.scheme.__dict__
            and "throttle_release" not in self.__dict__
        )

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------

    def advance_refresh(self, cycle: int) -> None:
        """Apply every auto-refresh tick due at or before ``cycle``."""
        if cycle < self.refresh.next_tick_cycle:
            return  # fast path: this runs once per served request
        for tick_cycle, first_row, last_row in self.refresh.drain_due(cycle):
            before = self.bank.ready_cycle
            self.bank.block_for(tick_cycle, self._trfc_cycles)
            self.refresh_stall_cycles += self.bank.ready_cycle - max(
                before, tick_cycle
            )
            if self.hammer is not None:
                self.hammer.on_refresh_range(first_row, last_row)
            self.scheme.on_autorefresh(first_row, last_row, tick_cycle)
            self.energy.auto_refreshes += 1

    # ------------------------------------------------------------------
    # the ACT/RD/WR path
    # ------------------------------------------------------------------

    def throttle_release(self, request: MemoryRequest, cycle: int) -> int:
        """Earliest cycle the request's ACT may occur (throttling)."""
        if self.bank.open_row == request.address.row:
            return cycle  # row hit: no ACT involved
        return self.scheme.throttle_release(request.address.row, cycle)

    def serve(self, request: MemoryRequest, cycle: int) -> BankServiceResult:
        """Serve one request; updates every cooperating component."""
        self.advance_refresh(cycle)
        row = request.address.row
        act_not_before = self.scheme.throttle_release(row, cycle)
        close_after = False
        if self.page_policy is not None:
            hits = self._consecutive_hits if self.bank.open_row == row else 0
            close_after = self.page_policy.should_close(row, hits, self.queue)
        result = self.bank.serve_access(
            row,
            cycle,
            bus_free_cycle=self.channel_state.bus_free_cycle,
            close_after=close_after,
            act_not_before=act_not_before,
        )
        self.channel_state.bus_free_cycle = result.data_cycle
        if result.row_hit:
            self._consecutive_hits += 1
        else:
            self._consecutive_hits = 1
        if request.is_write:
            self.energy.writes += 1
        else:
            self.energy.reads += 1
        if result.activated:
            self._on_activated(row, result)
        request.completion_cycle = result.data_cycle
        return result

    def _on_activated(self, row: int, result: BankServiceResult) -> None:
        cycle = result.start_cycle
        self.energy.acts += 1
        if result.precharged:
            self.energy.pres += 1
        if self.hammer is not None:
            self.hammer.on_activate(row, cycle)
        arr_victims = self.scheme.on_activate(row, cycle)
        if arr_victims:
            self._apply_arr(arr_victims, cycle)
        if self.rfm_logic is not None and self.rfm_logic.on_activate(
            flag_reader=self.scheme.rfm_needed_flag
        ):
            self._apply_rfm(cycle)
        if self.rfm_logic is not None and self.rfm_logic.mrr_reads:
            # Energy for MRR reads is accounted once per read.
            delta = self.rfm_logic.mrr_reads - self.energy.mrr_commands
            if delta > 0:
                self.energy.mrr_commands += delta

    def _apply_arr(self, victims: List[int], cycle: int) -> None:
        """Legacy ARR: refresh the victims now, stalling the bank."""
        self.scheme.stats.arr_requests += 1
        before = self.bank.ready_cycle
        self.bank.block_for(
            self.bank.ready_cycle, self._trc_cycles * len(victims)
        )
        self.arr_stall_cycles += self.bank.ready_cycle - before
        self.energy.preventive_refresh_rows += len(victims)
        if self.hammer is not None:
            for victim in victims:
                self.hammer.on_refresh_row(victim)

    def _apply_rfm(self, cycle: int) -> None:
        """Issue RFM: block tRFM and let the scheme refresh victims."""
        self.energy.rfm_commands += 1
        victims = self.scheme.on_rfm(cycle)
        before = self.bank.ready_cycle
        self.bank.block_for(self.bank.ready_cycle, self._trfm_cycles)
        self.rfm_stall_cycles += self.bank.ready_cycle - before
        self.energy.preventive_refresh_rows += len(victims)
        if self.hammer is not None:
            for victim in victims:
                self.hammer.on_refresh_row(victim)

    # ------------------------------------------------------------------

    @property
    def flip_count(self) -> int:
        return 0 if self.hammer is None else self.hammer.flip_count
