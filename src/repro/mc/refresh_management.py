"""DDR5-faithful Refresh Management state (JESD79-5 RAA counters).

The DDR5 specification defines RFM through three per-bank quantities
the simplified :class:`~repro.mc.rfm.RaaCounter` abstracts away:

* **RAAIMT** (initial management threshold) — the RAA count at which
  the MC must start issuing RFM commands; the paper's ``RFM_TH``.
* **RAAMMT** (maximum management threshold) — a hard cap on the RAA
  count, expressed as a multiple of RAAIMT; the MC must stop issuing
  ACTs to a bank whose RAA would exceed it (modelled as a forced RFM).
* **REF credit** — every all-bank or same-bank REF decrements the RAA
  counter by ``raa_refresh_decrement`` (the spec allows RAAIMT/2 per
  REF), acknowledging that auto-refresh also restores victim charge.

This module gives the spec-complete version used by the DDR5-fidelity
tests and the REF-credit ablation; the performance experiments keep the
paper's simpler periodic model (they are equivalent when REF credit is
zero and ACT bursts never outrun the RFM issue slot).

.. warning::
   REF credit stretches the effective RFM cadence: between RFMs a bank
   may now absorb more than RAAIMT ACTs.  Mithril's wrapping-counter
   sizing (spread < AdTH + 2 * RFM_TH, Section IV-E) assumes the
   no-credit cadence; deployments enabling credit must size the counter
   field for the stretched interval ``RAAIMT / (1 - credit_rate)`` —
   the device-level integration test demonstrates the overflow
   otherwise.  Safety itself is unaffected (auto-refresh restores the
   victims the credit accounts for).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class RfmAction(enum.Enum):
    """What the MC must do after an ACT, per the DDR5 RAA rules."""

    NONE = "none"                  #: keep going
    RFM_DUE = "rfm-due"            #: at/above RAAIMT: issue RFM soon
    ACT_BLOCKED = "act-blocked"    #: at RAAMMT: no ACT until RFM/REF


@dataclass
class Ddr5RaaState:
    """Per-bank Rolling Accumulated ACT counter with DDR5 semantics."""

    raaimt: int
    raammt_multiplier: int = 3
    raa_refresh_decrement: Optional[int] = None
    value: int = 0
    rfm_issued: int = 0
    acts_blocked: int = 0

    def __post_init__(self) -> None:
        if self.raaimt <= 0:
            raise ValueError(f"raaimt must be positive, got {self.raaimt}")
        if self.raammt_multiplier < 1:
            raise ValueError(
                f"raammt_multiplier must be >= 1, got {self.raammt_multiplier}"
            )
        if self.raa_refresh_decrement is None:
            # JESD79-5 default: one REF pays back RAAIMT / 2.
            self.raa_refresh_decrement = max(1, self.raaimt // 2)

    @property
    def raammt(self) -> int:
        return self.raaimt * self.raammt_multiplier

    def can_activate(self) -> bool:
        """False when the RAA counter sits at RAAMMT (ACTs forbidden)."""
        return self.value < self.raammt

    def on_activate(self) -> RfmAction:
        """Count one ACT and report the required management action."""
        if not self.can_activate():
            self.acts_blocked += 1
            return RfmAction.ACT_BLOCKED
        self.value += 1
        if self.value >= self.raammt:
            return RfmAction.ACT_BLOCKED
        if self.value >= self.raaimt:
            return RfmAction.RFM_DUE
        return RfmAction.NONE

    def on_rfm(self) -> None:
        """RFM issued: the RAA counter pays down one RAAIMT."""
        self.rfm_issued += 1
        self.value = max(0, self.value - self.raaimt)

    def on_refresh(self) -> None:
        """REF issued: the spec's refresh credit."""
        self.value = max(0, self.value - self.raa_refresh_decrement)


@dataclass
class Ddr5RfmPolicy:
    """MC-side policy draining RAA state: issue RFM at the earliest
    scheduling slot once RAAIMT is crossed, immediately at RAAMMT.

    ``lazy_slots`` models the spec freedom to defer the RFM for a few
    ACT slots (batching with other commands); the deterministic safety
    analysis of the paper assumes 0 (issue at the threshold).
    """

    raa: Ddr5RaaState
    lazy_slots: int = 0
    _pending_slots: int = field(default=0, init=False)
    _rfm_pending: bool = field(default=False, init=False)

    def on_activate(self) -> bool:
        """Register an ACT; True when an RFM command goes out now."""
        action = self.raa.on_activate()
        if action is RfmAction.ACT_BLOCKED:
            # The spec forbids further ACTs: the MC must issue the RFM
            # right away (we model the forced slot as immediate).
            self._rfm_pending = False
            self._pending_slots = 0
            self.raa.on_rfm()
            return True
        if action is RfmAction.RFM_DUE and not self._rfm_pending:
            self._rfm_pending = True
            self._pending_slots = self.lazy_slots
        if self._rfm_pending:
            if self._pending_slots <= 0:
                self._rfm_pending = False
                self.raa.on_rfm()
                return True
            self._pending_slots -= 1
        return False

    def on_refresh(self) -> None:
        self.raa.on_refresh()
        if self.raa.value < self.raa.raaimt:
            self._rfm_pending = False
