"""Request schedulers: FR-FCFS and BLISS.

The scheduler picks which queued request a newly free bank serves.

* FR-FCFS: row hits first, then oldest-first — maximal row-buffer
  locality but unfair under interference.
* BLISS (Subramanian et al.): cores that get served many times in a
  row are blacklisted for an interval and deprioritized, bounding the
  slowdown that streaming cores (or attackers) inflict on others.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.types import MemoryRequest


class FrFcfsScheduler:
    """First-Ready, First-Come-First-Served."""

    name = "frfcfs"

    def pick(
        self,
        queue: List[MemoryRequest],
        open_row: Optional[int],
        cycle: int,
        release_of,
    ) -> Optional[int]:
        """Index of the request to serve, or None if all are throttled.

        ``release_of(request)`` gives the earliest cycle the request's
        ACT may happen (RowHammer throttling); requests not yet released
        are skipped while any released request exists.  ``release_of``
        may be None, meaning every request is released (the event loop
        passes None for schemes that cannot throttle).

        Selection order — released first, then row hits, then oldest —
        is implemented as a two-tier scan (hit / miss among released
        candidates) rather than a per-request sort key: throttled
        requests never beat released ones, so they are simply skipped,
        and ties on arrival keep the lowest index, exactly as the
        historical lexicographic tuple compare did.
        """
        best_hit = None
        best_hit_arrival = 0
        best_miss = None
        best_miss_arrival = 0
        match_row = open_row is not None
        for index, request in enumerate(queue):
            if release_of is not None and release_of(request) > cycle:
                continue
            arrival = request.arrival_cycle
            if match_row and request.address.row == open_row:
                if best_hit is None or arrival < best_hit_arrival:
                    best_hit = index
                    best_hit_arrival = arrival
            elif best_miss is None or arrival < best_miss_arrival:
                best_miss = index
                best_miss_arrival = arrival
        if best_hit is not None:
            return best_hit
        return best_miss  # None when every candidate is throttled

    def on_served(
        self, core: int, cycle: int, contended: bool = True
    ) -> None:  # pragma: no cover
        pass


class BlissScheduler:
    """BLISS: blacklist cores served too many times consecutively."""

    name = "bliss"

    def __init__(
        self,
        blacklist_threshold: int = 4,
        blacklist_cycles: int = 24_000,  # ~10us of DDR5-4800 command clock
    ):
        self.blacklist_threshold = blacklist_threshold
        self.blacklist_cycles = blacklist_cycles
        self._last_core: Optional[int] = None
        self._streak = 0
        self._blacklist_until: Dict[int, int] = {}

    def _blacklisted(self, core: int, cycle: int) -> bool:
        return self._blacklist_until.get(core, -1) > cycle

    def pick(
        self,
        queue: List[MemoryRequest],
        open_row: Optional[int],
        cycle: int,
        release_of,
    ) -> Optional[int]:
        # Priority among released candidates: (blacklisted, row miss)
        # packs into a 4-level tier — non-blacklisted row hit (0) down
        # to blacklisted row miss (3) — then oldest-first within a
        # tier; throttled requests are skipped entirely (they never
        # beat a released one).  Equivalent to the historical
        # (not released, listed, not hit, arrival) tuple compare.
        best_index = None
        best_tier = 4
        best_arrival = 0
        match_row = open_row is not None
        blacklist = self._blacklist_until
        for index, request in enumerate(queue):
            if release_of is not None and release_of(request) > cycle:
                continue
            tier = 2 if blacklist.get(request.core, -1) > cycle else 0
            if not (match_row and request.address.row == open_row):
                tier += 1
            arrival = request.arrival_cycle
            if tier < best_tier or (
                tier == best_tier and arrival < best_arrival
            ):
                best_index = index
                best_tier = tier
                best_arrival = arrival
        return best_index  # None when every candidate is throttled

    def on_served(
        self, core: int, cycle: int, contended: bool = True
    ) -> None:
        """Track service streaks; only contended serves build a streak.

        BLISS exists to bound inter-application interference: a core
        monopolizing a bank *while others wait* gets blacklisted.
        Serving a core that is alone in the queue harms nobody, so it
        must not feed the streak (otherwise every streaming core ends
        up starved even on an idle memory system).
        """
        if not contended:
            return
        if core == self._last_core:
            self._streak += 1
        else:
            self._last_core = core
            self._streak = 1
        if self._streak >= self.blacklist_threshold:
            self._blacklist_until[core] = cycle + self.blacklist_cycles
            self._streak = 0


def make_scheduler(name: str):
    """Factory for the schedulers named in the system configuration."""
    if name == "frfcfs":
        return FrFcfsScheduler()
    if name == "bliss":
        return BlissScheduler()
    raise ValueError(f"unknown scheduler {name!r}; use 'frfcfs' or 'bliss'")
