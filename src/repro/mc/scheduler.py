"""Request schedulers: FR-FCFS and BLISS.

The scheduler picks which queued request a newly free bank serves.

* FR-FCFS: row hits first, then oldest-first — maximal row-buffer
  locality but unfair under interference.
* BLISS (Subramanian et al.): cores that get served many times in a
  row are blacklisted for an interval and deprioritized, bounding the
  slowdown that streaming cores (or attackers) inflict on others.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.types import MemoryRequest


class FrFcfsScheduler:
    """First-Ready, First-Come-First-Served."""

    name = "frfcfs"

    def pick(
        self,
        queue: List[MemoryRequest],
        open_row: Optional[int],
        cycle: int,
        release_of,
    ) -> Optional[int]:
        """Index of the request to serve, or None if all are throttled.

        ``release_of(request)`` gives the earliest cycle the request's
        ACT may happen (RowHammer throttling); requests not yet released
        are skipped while any released request exists.
        """
        best_index = None
        best_key = None
        for index, request in enumerate(queue):
            released = release_of(request) <= cycle
            row_hit = open_row is not None and request.address.row == open_row
            # released first, then row hits, then oldest
            key = (not released, not row_hit, request.arrival_cycle)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        if best_key is not None and best_key[0]:
            return None  # every candidate is throttled
        return best_index

    def on_served(
        self, core: int, cycle: int, contended: bool = True
    ) -> None:  # pragma: no cover
        pass


class BlissScheduler:
    """BLISS: blacklist cores served too many times consecutively."""

    name = "bliss"

    def __init__(
        self,
        blacklist_threshold: int = 4,
        blacklist_cycles: int = 24_000,  # ~10us of DDR5-4800 command clock
    ):
        self.blacklist_threshold = blacklist_threshold
        self.blacklist_cycles = blacklist_cycles
        self._last_core: Optional[int] = None
        self._streak = 0
        self._blacklist_until: Dict[int, int] = {}

    def _blacklisted(self, core: int, cycle: int) -> bool:
        return self._blacklist_until.get(core, -1) > cycle

    def pick(
        self,
        queue: List[MemoryRequest],
        open_row: Optional[int],
        cycle: int,
        release_of,
    ) -> Optional[int]:
        best_index = None
        best_key = None
        for index, request in enumerate(queue):
            released = release_of(request) <= cycle
            row_hit = open_row is not None and request.address.row == open_row
            listed = self._blacklisted(request.core, cycle)
            key = (not released, listed, not row_hit, request.arrival_cycle)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        if best_key is not None and best_key[0]:
            return None  # every candidate is throttled
        return best_index

    def on_served(
        self, core: int, cycle: int, contended: bool = True
    ) -> None:
        """Track service streaks; only contended serves build a streak.

        BLISS exists to bound inter-application interference: a core
        monopolizing a bank *while others wait* gets blacklisted.
        Serving a core that is alone in the queue harms nobody, so it
        must not feed the streak (otherwise every streaming core ends
        up starved even on an idle memory system).
        """
        if not contended:
            return
        if core == self._last_core:
            self._streak += 1
        else:
            self._last_core = core
            self._streak = 1
        if self._streak >= self.blacklist_threshold:
            self._blacklist_until[core] = cycle + self.blacklist_cycles
            self._streak = 0


def make_scheduler(name: str):
    """Factory for the schedulers named in the system configuration."""
    if name == "frfcfs":
        return FrFcfsScheduler()
    if name == "bliss":
        return BlissScheduler()
    raise ValueError(f"unknown scheduler {name!r}; use 'frfcfs' or 'bliss'")
