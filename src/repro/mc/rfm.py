"""RFM issue logic of the memory controller (Figure 1 of the paper).

The MC keeps one Rolling Accumulated ACT (RAA) counter per bank.  Every
ACT increments the bank's counter; when it reaches RFM_TH the MC issues
an RFM command to that bank and resets the counter.  The command gives
the in-DRAM protection scheme a tRFM time margin, row-agnostic and
periodic in ACT count — it cannot be issued in a bursty way, which is
exactly why threshold-triggered prior schemes fail on this interface
(Section III-A).

With Mithril+ the MC first reads the DRAM mode register (MRR); when the
DRAM reports a small table spread, the RFM is skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RaaCounter:
    """Rolling Accumulated ACT counter for one bank."""

    rfm_th: int
    value: int = 0

    def on_activate(self) -> bool:
        """Count one ACT; True when the RFM threshold is reached."""
        if self.rfm_th <= 0:
            return False
        self.value += 1
        return self.value >= self.rfm_th

    def reset(self) -> None:
        self.value = 0

    def decay(self, amount: int) -> None:
        """RAA decrement on REF, as DDR5 allows (RAA 'refresh credit')."""
        self.value = max(0, self.value - amount)


@dataclass
class RfmIssueLogic:
    """Per-bank RFM decision state, including the Mithril+ MRR gate."""

    rfm_th: int
    mrr_gated: bool = False
    raa: RaaCounter = field(init=False)
    rfm_issued: int = 0
    rfm_elided: int = 0
    mrr_reads: int = 0

    def __post_init__(self) -> None:
        self.raa = RaaCounter(self.rfm_th)

    def on_activate(self, flag_reader=None) -> bool:
        """Register an ACT; True when an RFM command must go out now.

        ``flag_reader`` is the Mithril+ mode-register read callback; it
        is only consulted at the RAA threshold and only when MRR gating
        is enabled.
        """
        if not self.raa.on_activate():
            return False
        self.raa.reset()
        if self.mrr_gated and flag_reader is not None:
            self.mrr_reads += 1
            if not flag_reader():
                self.rfm_elided += 1
                return False
        self.rfm_issued += 1
        return True
