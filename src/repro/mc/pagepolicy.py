"""DRAM page (row-buffer) policies.

* open: keep the row open until a conflicting request arrives.
* closed: precharge after every access.
* minimalist-open (Kaseridis et al.): keep the row open just long
  enough to capture a small burst of spatial locality (default 4
  accesses), then close — which is why it pairs well with streaming
  workloads and caps the ACT amplification that RowHammer trackers see.
"""

from __future__ import annotations

from typing import List, Optional

from repro.types import MemoryRequest


class OpenPagePolicy:
    name = "open"

    def should_close(
        self,
        row: int,
        consecutive_hits: int,
        queue: List[MemoryRequest],
    ) -> bool:
        return False


class ClosedPagePolicy:
    name = "closed"

    def should_close(
        self,
        row: int,
        consecutive_hits: int,
        queue: List[MemoryRequest],
    ) -> bool:
        return True


class MinimalistOpenPolicy:
    """Close after a bounded burst, or when no same-row request waits."""

    name = "minimalist-open"

    def __init__(self, burst_limit: int = 4):
        self.burst_limit = burst_limit

    def should_close(
        self,
        row: int,
        consecutive_hits: int,
        queue: List[MemoryRequest],
    ) -> bool:
        if consecutive_hits >= self.burst_limit:
            return True
        for request in queue:  # plain loop: runs once per served request
            if request.address.row == row:
                return False
        return True


def make_page_policy(name: str):
    if name == "open":
        return OpenPagePolicy()
    if name == "closed":
        return ClosedPagePolicy()
    if name == "minimalist-open":
        return MinimalistOpenPolicy()
    raise ValueError(
        f"unknown page policy {name!r}; use 'open', 'closed' or 'minimalist-open'"
    )
