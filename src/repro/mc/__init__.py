"""Memory-controller substrate: scheduling, page policy, RFM issue logic."""

from repro.mc.refresh_management import Ddr5RaaState, Ddr5RfmPolicy, RfmAction
from repro.mc.rfm import RaaCounter, RfmIssueLogic
from repro.mc.scheduler import BlissScheduler, FrFcfsScheduler, make_scheduler
from repro.mc.pagepolicy import make_page_policy
from repro.mc.controller import BankController, ChannelState

__all__ = [
    "RaaCounter",
    "RfmIssueLogic",
    "Ddr5RaaState",
    "Ddr5RfmPolicy",
    "RfmAction",
    "BlissScheduler",
    "FrFcfsScheduler",
    "make_scheduler",
    "make_page_policy",
    "BankController",
    "ChannelState",
]
