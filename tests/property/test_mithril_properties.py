"""Property tests for Mithril's core invariants.

These validate the machinery behind Theorem 1 empirically:

* the greedy + demote policy keeps the counter spread bounded (the
  wrapping-counter implementability invariant of Section IV-E);
* the estimated count remains an upper bound on the actual ACT count
  between preventive refreshes;
* applying RFM every RFM_TH ACTs keeps every row's estimated-count
  *growth* within the bound M.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import estimated_growth_bound
from repro.core.mithril import MithrilScheme

row_streams = st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                       max_size=600)


def _drive(scheme, stream, rfm_th):
    """Feed a stream with an RFM every rfm_th ACTs, like the MC would."""
    for i, row in enumerate(stream):
        scheme.on_activate(row, cycle=i)
        if (i + 1) % rfm_th == 0:
            scheme.on_rfm(cycle=i)


@given(row_streams, st.integers(min_value=2, max_value=16),
       st.integers(min_value=2, max_value=32))
@settings(max_examples=150, deadline=None)
def test_spread_stays_bounded(stream, n_entries, rfm_th):
    """max - min never exceeds AdTH + 2 * RFM_TH (with AdTH = 0 here)."""
    scheme = MithrilScheme(n_entries=n_entries, rfm_th=rfm_th,
                           counter_bits=62)
    _drive(scheme, stream, rfm_th)
    assert scheme.table.max_spread_seen <= 2 * rfm_th


@given(row_streams, st.integers(min_value=2, max_value=16),
       st.integers(min_value=2, max_value=32),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_spread_bounded_with_adaptive(stream, n_entries, rfm_th, adth):
    scheme = MithrilScheme(n_entries=n_entries, rfm_th=rfm_th,
                           adaptive_th=adth, counter_bits=62)
    _drive(scheme, stream, rfm_th)
    assert scheme.table.max_spread_seen <= adth + 2 * rfm_th


@given(row_streams, st.integers(min_value=2, max_value=16),
       st.integers(min_value=2, max_value=32))
@settings(max_examples=150, deadline=None)
def test_estimate_upper_bounds_acts_since_refresh(stream, n_entries, rfm_th):
    """Safety invariant: estimate >= actual ACTs since the row's last
    preventive refresh, so greedy selection can never miss a hazard."""
    scheme = MithrilScheme(n_entries=n_entries, rfm_th=rfm_th,
                           counter_bits=62)
    actual = Counter()
    for i, row in enumerate(stream):
        scheme.on_activate(row, cycle=i)
        actual[row] += 1
        if (i + 1) % rfm_th == 0:
            selected = scheme.table.greedy_select()
            victims = scheme.on_rfm(cycle=i)
            if victims and selected is not None:
                actual[selected[0]] = 0
        for row_id, count in actual.items():
            assert scheme.table.estimate(row_id) >= count


@given(st.integers(min_value=4, max_value=24),
       st.integers(min_value=4, max_value=24),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=50, deadline=None)
def test_growth_bounded_by_M_round_robin(n_entries, rfm_th, extra_rows):
    """Round-robin over n_entries + extra rows: every row's estimate
    growth over the run stays below the Theorem-1 bound M (checked with
    the run-length standing in for the tREFW window)."""
    scheme = MithrilScheme(n_entries=n_entries, rfm_th=rfm_th,
                           counter_bits=62)
    num_rows = n_entries + extra_rows
    total_acts = rfm_th * 200
    start = {row: None for row in range(num_rows)}
    worst_growth = 0
    for i in range(total_acts):
        row = i % num_rows
        if start[row] is None:
            start[row] = scheme.table.estimate(row)
        scheme.on_activate(row, cycle=i)
        growth = scheme.table.estimate(row) - start[row]
        worst_growth = max(worst_growth, growth)
        if (i + 1) % rfm_th == 0:
            scheme.on_rfm(cycle=i)
    w_run = total_acts // rfm_th
    from repro.core.bounds import harmonic

    m_run = rfm_th * harmonic(min(n_entries, w_run))
    m_run += rfm_th * max(w_run - n_entries, 0) / n_entries
    m_run += rfm_th * max(n_entries - 2, 0) / n_entries
    assert worst_growth <= m_run + rfm_th
