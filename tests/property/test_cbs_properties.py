"""Property tests: the CbS bounds the Mithril proof depends on.

Inequalities (1) and (2) of the paper, for every prefix of every stream:

    actual <= estimate                      (1)
    estimate <= actual + table_minimum      (2)
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.cbs import CounterSummary

streams = st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                   max_size=400)
capacities = st.integers(min_value=1, max_value=16)


@given(streams, capacities)
@settings(max_examples=200)
def test_inequality_1_lower_bound(stream, capacity):
    """The estimate never undercounts: actual <= estimate."""
    summary = CounterSummary(capacity)
    truth = Counter()
    for element in stream:
        summary.observe(element)
        truth[element] += 1
        for row, actual in truth.items():
            assert summary.estimate(row) >= actual


@given(streams, capacities)
@settings(max_examples=200)
def test_inequality_2_upper_bound(stream, capacity):
    """The overcount is bounded by the table minimum:
    estimate <= actual + min."""
    summary = CounterSummary(capacity)
    truth = Counter()
    for element in stream:
        summary.observe(element)
        truth[element] += 1
        minimum = summary.min_count
        for row, actual in truth.items():
            assert summary.estimate(row) <= actual + minimum


@given(streams, capacities)
@settings(max_examples=200)
def test_total_mass_conserved(stream, capacity):
    """Space-Saving conserves the stream length in its counters once
    the table is full; before that, counts sum to items observed."""
    summary = CounterSummary(capacity)
    for element in stream:
        summary.observe(element)
    table_sum = sum(count for _, count in summary.items())
    assert table_sum == summary.total_observed or len(summary) == capacity
    if len(summary) == capacity:
        assert table_sum >= summary.total_observed


@given(streams, capacities)
@settings(max_examples=100)
def test_min_max_consistency(stream, capacity):
    summary = CounterSummary(capacity)
    for element in stream:
        summary.observe(element)
        top = summary.max_entry()
        assert top is not None
        counts = [count for _, count in summary.items()]
        assert top[1] == max(counts)
        if len(summary) == capacity:
            assert summary.min_count == min(counts)
        else:
            assert summary.min_count == 0


@given(streams, st.integers(min_value=2, max_value=8))
@settings(max_examples=100)
def test_demote_preserves_lower_bound_after_refresh(stream, capacity):
    """After demote-to-min (preventive refresh), the demoted row's
    estimate still upper-bounds its *new* actual count (zero)."""
    summary = CounterSummary(capacity)
    truth = Counter()
    for i, element in enumerate(stream):
        summary.observe(element)
        truth[element] += 1
        if i % 7 == 6:
            row, _ = summary.max_entry()
            summary.demote_to_min(row)
            truth[row] = 0  # the refresh zeroes the actual hazard
        for row, actual in truth.items():
            assert summary.estimate(row) >= actual
