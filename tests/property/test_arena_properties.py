"""Cross-bank tracker arenas agree exactly with their scalar twins.

The turbo drain routes per-ACT scheme work through
:mod:`repro.sim.arena` whenever all banks run the same stock scheme;
golden byte-identity across backends rests on the arena replaying the
per-bank tracker semantics *exactly* — not statistically.  Hypothesis
drives randomized ACT streams (plus decrements, resets, and the RFM
demotes that mutate CbS state behind the arena's back) through an
arena and through untouched per-bank scheme objects, requiring
identical state at every observable point, including rows on bank
boundaries and both arena flush paths (scalar replay vs numpy
scatter).
"""

import pytest

pytest.importorskip("numpy", reason="arenas need numpy")

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mithril import MithrilScheme
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.sim.arena import BlockHammerArena, CbsArena, RaaArena
from repro.streaming.counting_bloom import DualCountingBloomFilter

BANKS = 3
#: rows_per_bank for graphene; rows drawn over the full range so the
#: victim clipping at both bank boundaries (row 0, row max) is hit.
ROWS_PER_BANK = 16

FLATS = st.integers(min_value=0, max_value=BANKS - 1)
ROWS = st.integers(min_value=0, max_value=ROWS_PER_BANK - 1)


# ----------------------------------------------------------------------
# BlockHammer: dual-CBF tensor
# ----------------------------------------------------------------------


def _bh_schemes():
    """One small-geometry BlockHammer scheme per bank.

    A tiny CBF maximizes probe aliasing and a tiny epoch forces
    rotations inside short random streams — the regimes where an arena
    bug would diverge from the scalar filters.
    """
    schemes = []
    for _ in range(BANKS):
        scheme = BlockHammerScheme(
            flip_th=100, cbf_size=16, n_bl=3, num_hashes=2
        )
        scheme.cbf = DualCountingBloomFilter(
            16, epoch_length=8, num_hashes=2, seed=0xB10F
        )
        schemes.append(scheme)
    return schemes


def _assert_bh_state_equal(arena, twins):
    """Arena write-back state must equal the scalar twins', field for
    field (filters, rotation phase, blacklists, stats)."""
    arena.write_back()
    for flat, (scheme, twin) in enumerate(zip(arena.schemes, twins)):
        cbf, tcbf = scheme.cbf, twin.cbf
        assert cbf._active == tcbf._active
        assert cbf._since_swap == tcbf._since_swap
        for cbf_filter, twin_filter in zip(cbf._filters, tcbf._filters):
            assert list(cbf_filter._counters) == list(
                twin_filter._counters
            ), f"bank {flat} counters diverge"
            assert cbf_filter._total == twin_filter._total
        assert scheme._release == twin._release
        assert scheme.blacklisted_rows_seen == twin.blacklisted_rows_seen
        assert scheme.stats.acts_observed == twin.stats.acts_observed
        assert (
            scheme.stats.throttle_events == twin.stats.throttle_events
        )


_BH_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("act"), FLATS, ROWS),
        st.tuples(st.just("decrement"), FLATS, ROWS),
        st.tuples(st.just("reset"), FLATS, ROWS),
        st.tuples(st.just("estimate"), FLATS, ROWS),
    ),
    max_size=60,
)


class TestBlockHammerArena:
    @settings(max_examples=60, deadline=None)
    @given(ops=_BH_OPS)
    def test_observe_decrement_reset_match_scalar_twins(self, ops):
        arena = BlockHammerArena(_bh_schemes())
        twins = _bh_schemes()
        cycle = 0
        for name, flat, row in ops:
            cycle += 7
            if name == "act":
                arena.observe_one(flat, row, cycle)
                twins[flat].on_activate(row, cycle)
            elif name == "decrement":
                arena.decrement(flat, row, 2)
                for twin_filter in twins[flat].cbf._filters:
                    twin_filter.decrement(row, 2)
            elif name == "reset":
                arena.reset(flat)
                twins[flat].cbf.reset()
            else:
                assert arena.estimate(flat, row) == twins[
                    flat
                ].cbf.estimate(row)
        _assert_bh_state_equal(arena, twins)

    @settings(max_examples=60, deadline=None)
    @given(
        epochs=st.lists(
            # per epoch: a set of distinct banks, one ACT each — the
            # drain's deferred-batch contract (at most one per bank)
            st.dictionaries(FLATS, ROWS, max_size=BANKS),
            max_size=25,
        )
    )
    def test_flush_scalar_and_vectorized_paths_agree(self, epochs):
        """vec_min=1 forces the np.add.at scatter on every batch;
        a huge vec_min forces the scalar replay — same final state."""
        scatter = BlockHammerArena(_bh_schemes(), vec_min=1)
        replay = BlockHammerArena(_bh_schemes(), vec_min=10**9)
        twins = _bh_schemes()
        cycle = 0
        for epoch in epochs:
            cycle += 11
            batch = [
                (flat, row, cycle) for flat, row in sorted(epoch.items())
            ]
            scatter.flush(batch)
            replay.flush(batch)
            for flat, row, start in batch:
                twins[flat].on_activate(row, start)
        assert np.array_equal(scatter.tensor, replay.tensor)
        _assert_bh_state_equal(scatter, twins)
        _assert_bh_state_equal(replay, twins)

    @settings(max_examples=40, deadline=None)
    @given(
        acts=st.lists(st.tuples(FLATS, ROWS), max_size=40),
        probes=st.lists(ROWS, min_size=1, max_size=8),
    )
    def test_estimate_many_matches_per_bank_estimates(self, acts, probes):
        arena = BlockHammerArena(_bh_schemes())
        for cycle, (flat, row) in enumerate(acts):
            arena.observe_one(flat, row, cycle)
        matrix = arena.estimate_many(probes)
        assert matrix.shape == (BANKS, len(probes))
        for flat in range(BANKS):
            for j, row in enumerate(probes):
                assert matrix[flat, j] == arena.estimate(flat, row)

    def test_prefill_probes_equal_lazy_probes(self):
        arena = BlockHammerArena(_bh_schemes())
        rows = list(range(32))
        added = arena.prefill(rows)
        assert added == len(rows)
        lazy = BlockHammerArena(_bh_schemes())
        for row in rows:
            assert arena._probe_cache[row] == lazy._probes_for(row)

    def test_mismatched_geometry_rejected(self):
        schemes = _bh_schemes()
        schemes[1].cbf = DualCountingBloomFilter(
            32, epoch_length=8, num_hashes=2, seed=0xB10F
        )
        with pytest.raises(ValueError, match="geometry"):
            BlockHammerArena(schemes)


# ----------------------------------------------------------------------
# Mithril / Graphene: stacked CbS state
# ----------------------------------------------------------------------


def _mithril_schemes():
    # counter_bits large enough that random streams never trip the
    # wrapping-window OverflowError (raised identically by both paths,
    # but uninteresting here).
    return [
        MithrilScheme(n_entries=4, rfm_th=8, counter_bits=30)
        for _ in range(BANKS)
    ]


def _graphene_schemes():
    return [
        GrapheneScheme(
            flip_th=16,
            rows_per_bank=ROWS_PER_BANK,
            n_entries=4,
            reset_interval_cycles=60,
        )
        for _ in range(BANKS)
    ]


def _assert_cbs_scans_match(arena, tables):
    """Vectorized cross-bank scans equal the per-bank table queries."""
    mins = arena.min_counts()
    maxs = arena.max_counts()
    spreads = arena.spreads()
    for flat, table in enumerate(tables):
        assert mins[flat] == table.min_count()
        assert maxs[flat] == table.max_count()
        assert spreads[flat] == table.spread()


class TestCbsArenaMithril:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("act"), FLATS, ROWS),
                st.tuples(st.just("rfm"), FLATS, st.just(0)),
            ),
            max_size=50,
        )
    )
    def test_observe_and_rfm_demote_match_scalar_twins(self, ops):
        schemes = _mithril_schemes()
        arena = CbsArena.for_mithril(schemes)
        twins = _mithril_schemes()
        cycle = 0
        for name, flat, row in ops:
            cycle += 5
            if name == "act":
                arena.mithril_observe(flat, row)
                twins[flat].on_activate(row, cycle)
            else:
                # RFM demotes mutate the summary *behind* the arena
                # (greedy_select + demote_max on the scheme object);
                # sync-on-demand must still see the result.
                assert schemes[flat].on_rfm(cycle) == twins[
                    flat
                ].on_rfm(cycle)
        for scheme, twin in zip(schemes, twins):
            assert (
                scheme.table._summary._counts
                == twin.table._summary._counts
            )
            assert (
                scheme.table._max_spread_seen
                == twin.table._max_spread_seen
            )
            assert (
                scheme.stats.acts_observed == twin.stats.acts_observed
            )
        _assert_cbs_scans_match(arena, [t.table for t in twins])

    @settings(max_examples=40, deadline=None)
    @given(
        acts=st.lists(st.tuples(FLATS, ROWS), max_size=40),
        probes=st.lists(ROWS, min_size=1, max_size=6),
    )
    def test_estimate_many_matches_table_estimates(self, acts, probes):
        schemes = _mithril_schemes()
        arena = CbsArena.for_mithril(schemes)
        for flat, row in acts:
            arena.mithril_observe(flat, row)
        matrix = arena.estimate_many(probes)
        for flat, scheme in enumerate(schemes):
            for j, row in enumerate(probes):
                assert matrix[flat, j] == scheme.table.estimate(row)

    def test_mismatched_capacity_rejected(self):
        schemes = _mithril_schemes()
        schemes[-1] = MithrilScheme(
            n_entries=8, rfm_th=8, counter_bits=30
        )
        with pytest.raises(ValueError, match="capacity"):
            CbsArena.for_mithril(schemes)


class TestCbsArenaGraphene:
    @settings(max_examples=60, deadline=None)
    @given(
        acts=st.lists(
            st.tuples(FLATS, ROWS, st.integers(min_value=0, max_value=25)),
            max_size=50,
        )
    )
    def test_observe_matches_scalar_twins_across_resets(self, acts):
        """Monotone cycles with an interval of 60 cross multiple table
        resets; victims (including boundary clipping at rows 0 and
        max) and reset bookkeeping must match the scalar scheme."""
        schemes = _graphene_schemes()
        arena = CbsArena.for_graphene(schemes)
        twins = _graphene_schemes()
        cycle = 0
        for flat, row, step in acts:
            cycle += step
            victims = arena.graphene_observe(flat, row, cycle)
            expected = twins[flat].on_activate(row, cycle)
            assert (victims or []) == expected
        for scheme, twin in zip(schemes, twins):
            assert scheme.table._counts == twin.table._counts
            assert scheme.resets == twin.resets
            assert scheme._next_reset == twin._next_reset
            assert scheme._next_trigger == twin._next_trigger
            assert (
                scheme.stats.preventive_refresh_rows
                == twin.stats.preventive_refresh_rows
            )
        # Cross-bank scans against per-bank summary queries (Graphene's
        # table *is* the CounterSummary, so query it directly):
        mins = arena.min_counts()
        maxs = arena.max_counts()
        for flat, twin in enumerate(twins):
            assert mins[flat] == twin.table.min_count
            top = twin.table.max_entry()
            assert maxs[flat] == (0 if top is None else top[1])

    def test_observe_epoch_batch_form_matches_per_act_calls(self):
        schemes = _graphene_schemes()
        arena = CbsArena.for_graphene(schemes)
        twins = _graphene_schemes()
        twin_arena = CbsArena.for_graphene(twins)
        batch = [
            (0, 3, 10), (1, 0, 10), (2, ROWS_PER_BANK - 1, 10),
            (0, 3, 20), (0, 3, 30), (0, 3, 40), (0, 3, 50),
        ]
        results = arena.observe_epoch(batch)
        expected = [
            (flat, twin_arena.graphene_observe(flat, row, start))
            for flat, row, start in batch
        ]
        assert results == expected


# ----------------------------------------------------------------------
# RAA vector
# ----------------------------------------------------------------------


class TestRaaArena:
    def test_adopt_and_write_back_round_trip(self):
        from repro.mc.rfm import RfmIssueLogic

        logics = [RfmIssueLogic(4) for _ in range(BANKS)]
        logics[1].raa.value = 3
        arena = RaaArena(logics)
        assert arena.values.tolist() == [0, 3, 0]
        arena.mem[0] = 2
        arena.mem[1] = 0
        arena.write_back()
        assert [logic.raa.value for logic in logics] == [2, 0, 0]
