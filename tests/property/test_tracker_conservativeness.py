"""Property tests: deterministic trackers never *undercount* hazards.

The deterministic guarantee hinges on conservative tracking: a row's
tracked state must upper-bound its actual ACT count since its last
preventive refresh.  Checked for TWiCe's table and CBT's grouped
counters under arbitrary streams.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations.cbt import CbtScheme
from repro.mitigations.twice import TwiceScheme

streams = st.lists(st.integers(min_value=1, max_value=62), min_size=1,
                   max_size=400)


@given(streams)
@settings(max_examples=150, deadline=None)
def test_twice_entry_counts_are_exact_until_arr(stream):
    """Within one tREFI (no pruning checkpoint), TWiCe counts exactly;
    an ARR retires the entry, restarting the count."""
    scheme = TwiceScheme(flip_th=400, rows_per_bank=64)  # threshold 100
    actual = Counter()
    for row in stream:
        victims = scheme.on_activate(row, cycle=0)
        actual[row] += 1
        if victims:
            actual[row] = 0
        entry = scheme._entries.get(row)
        tracked = entry.act_count if entry is not None else 0
        assert tracked == actual[row]


@given(streams)
@settings(max_examples=150, deadline=None)
def test_twice_always_fires_at_threshold(stream):
    """No row can exceed the ARR threshold without an ARR."""
    scheme = TwiceScheme(flip_th=40, rows_per_bank=64)  # threshold 10
    since_refresh = Counter()
    for row in stream:
        victims = scheme.on_activate(row, cycle=0)
        since_refresh[row] += 1
        if victims:
            since_refresh[row] = 0
        assert since_refresh[row] <= scheme.arr_threshold


@given(streams)
@settings(max_examples=150, deadline=None)
def test_cbt_leaf_count_upper_bounds_actual(stream):
    """Every CBT leaf's counter >= the ACTs its range received since
    that counter last reset (split inheritance keeps it conservative)."""
    scheme = CbtScheme(flip_th=80, rows_per_bank=64, num_counters=16)
    acts_since_reset = Counter()  # per row
    for row in stream:
        victims = scheme.on_activate(row, cycle=0)
        acts_since_reset[row] += 1
        if victims:
            # the refreshed range restarts its rows' hazard
            lo, hi = victims[0], victims[-1]
            for covered in range(lo, hi + 1):
                acts_since_reset[covered] = 0
        leaf = scheme._find_leaf(row)
        range_actual = sum(
            count
            for covered, count in acts_since_reset.items()
            if leaf.lo <= covered <= leaf.hi
        )
        assert leaf.count >= min(range_actual, scheme.refresh_threshold - 1) or \
            leaf.count >= range_actual


@given(streams)
@settings(max_examples=100, deadline=None)
def test_cbt_counter_budget_invariant(stream):
    scheme = CbtScheme(flip_th=80, rows_per_bank=64, num_counters=7)
    for row in stream:
        scheme.on_activate(row, cycle=0)
        assert scheme._counters_used <= scheme.num_counters
        assert scheme.leaf_count <= scheme._counters_used
