"""Property tests for the RowHammer fault model and address mapper."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapper
from repro.dram.hammer import HammerModel
from repro.params import DramOrganization


@given(st.lists(st.integers(min_value=1, max_value=62), min_size=1,
                max_size=300))
@settings(max_examples=150)
def test_disturbance_equals_adjacent_act_count(acts):
    """Each victim's disturbance equals ACTs on its two neighbours."""
    model = HammerModel(flip_th=10_000, rows_per_bank=64)
    for row in acts:
        model.on_activate(row)
    for victim in range(64):
        expected = sum(1 for a in acts if abs(a - victim) == 1)
        assert model.disturbance(victim) == expected


@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=1, max_value=30)),
                min_size=1, max_size=200))
@settings(max_examples=150)
def test_refresh_is_idempotent_reset(operations):
    """A refresh always zeroes a row; no operation can lower another
    row's disturbance."""
    model = HammerModel(flip_th=10_000, rows_per_bank=32)
    levels = {}
    for is_refresh, row in operations:
        if is_refresh:
            model.on_refresh_row(row)
            levels[row] = 0.0
        else:
            model.on_activate(row)
            for victim in (row - 1, row + 1):
                if 0 <= victim < 32:
                    levels[victim] = levels.get(victim, 0.0) + 1.0
    for victim, expected in levels.items():
        assert model.disturbance(victim) == expected


@given(st.integers(min_value=0, max_value=(1 << 34) - 1))
@settings(max_examples=300)
def test_address_roundtrip(address):
    mapper = AddressMapper(DramOrganization())
    aligned = (address % mapper.capacity_bytes) & ~63
    decoded = mapper.decode(aligned)
    assert mapper.encode(decoded.row, decoded.column) == aligned


@given(st.integers(min_value=0, max_value=65535),
       st.integers(min_value=0, max_value=127),
       st.integers(min_value=0, max_value=1),
       st.integers(min_value=0, max_value=31))
@settings(max_examples=200)
def test_encode_decode_inverse(row, column, channel, bank):
    from repro.types import BankAddress, RowAddress

    mapper = AddressMapper(DramOrganization())
    address = RowAddress(BankAddress(channel, 0, bank), row)
    encoded = mapper.encode(address, column)
    decoded = mapper.decode(encoded)
    assert decoded.row == address
    assert decoded.column == column
