"""Property tests: every registered scheme honours the interface contract.

For arbitrary ACT streams and cycles, each scheme must:

* return victim lists containing only valid, in-range rows;
* never return the aggressor itself as a victim;
* keep its stats counters consistent with the driven events;
* return a throttle release not in the past;
* answer the Mithril+ flag with a boolean.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mithril import MithrilScheme
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.cbt import CbtScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.mitigations.para import ParaScheme
from repro.mitigations.parfm import ParfmScheme
from repro.mitigations.rfm_graphene import RfmGrapheneScheme
from repro.mitigations.twice import TwiceScheme

ROWS_PER_BANK = 1 << 10


def _factories():
    return {
        "mithril": lambda: MithrilScheme(
            n_entries=8, rfm_th=4, rows_per_bank=ROWS_PER_BANK,
            counter_bits=62,
        ),
        "mithril-adaptive": lambda: MithrilScheme(
            n_entries=8, rfm_th=4, adaptive_th=16,
            rows_per_bank=ROWS_PER_BANK, counter_bits=62,
        ),
        "para": lambda: ParaScheme(
            flip_th=64, rows_per_bank=ROWS_PER_BANK, seed=3
        ),
        "parfm": lambda: ParfmScheme(rows_per_bank=ROWS_PER_BANK, seed=4),
        "graphene": lambda: GrapheneScheme(
            flip_th=64, rows_per_bank=ROWS_PER_BANK
        ),
        "rfm-graphene": lambda: RfmGrapheneScheme(
            threshold=8, n_entries=16, rows_per_bank=ROWS_PER_BANK
        ),
        "twice": lambda: TwiceScheme(
            flip_th=64, rows_per_bank=ROWS_PER_BANK
        ),
        "cbt": lambda: CbtScheme(
            flip_th=64, rows_per_bank=ROWS_PER_BANK, num_counters=32
        ),
        "blockhammer": lambda: BlockHammerScheme(
            flip_th=1_500, cbf_size=64, n_bl=8
        ),
    }


streams = st.lists(
    st.integers(min_value=0, max_value=ROWS_PER_BANK - 1),
    min_size=1,
    max_size=300,
)


@given(st.sampled_from(sorted(_factories())), streams)
@settings(max_examples=200, deadline=None)
def test_victims_valid_and_distinct_from_aggressor(name, stream):
    scheme = _factories()[name]()
    cycle = 0
    for i, row in enumerate(stream):
        cycle += 117
        victims = scheme.on_activate(row, cycle)
        for victim in victims:
            assert 0 <= victim < ROWS_PER_BANK
            assert victim != row
        if scheme.uses_rfm and (i + 1) % 4 == 0:
            for victim in scheme.on_rfm(cycle):
                assert 0 <= victim < ROWS_PER_BANK


@given(st.sampled_from(sorted(_factories())), streams)
@settings(max_examples=100, deadline=None)
def test_stats_track_acts(name, stream):
    scheme = _factories()[name]()
    for i, row in enumerate(stream):
        scheme.on_activate(row, i * 117)
    assert scheme.stats.acts_observed == len(stream)


@given(st.sampled_from(sorted(_factories())), streams,
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=100, deadline=None)
def test_throttle_release_never_in_the_past(name, stream, cycle):
    scheme = _factories()[name]()
    for i, row in enumerate(stream):
        scheme.on_activate(row, i * 117)
    for row in set(stream):
        assert scheme.throttle_release(row, cycle) >= cycle


@given(st.sampled_from(sorted(_factories())), streams)
@settings(max_examples=60, deadline=None)
def test_rfm_flag_is_boolean(name, stream):
    scheme = _factories()[name]()
    for i, row in enumerate(stream):
        scheme.on_activate(row, i * 117)
    assert scheme.rfm_needed_flag() in (True, False)
