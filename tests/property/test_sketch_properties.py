"""Property tests for Count-Min and counting Bloom filters."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.count_min import CountMinSketch
from repro.streaming.counting_bloom import (
    CountingBloomFilter,
    DualCountingBloomFilter,
)

streams = st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                   max_size=300)


@given(streams, st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=150)
def test_count_min_never_underestimates(stream, width, depth):
    sketch = CountMinSketch(width=width, depth=depth)
    truth = Counter()
    for element in stream:
        sketch.observe(element)
        truth[element] += 1
    for element, actual in truth.items():
        assert sketch.estimate(element) >= actual


@given(streams, st.integers(min_value=4, max_value=128))
@settings(max_examples=150)
def test_cbf_never_underestimates(stream, size):
    cbf = CountingBloomFilter(size=size)
    truth = Counter()
    for element in stream:
        cbf.observe(element)
        truth[element] += 1
    for element, actual in truth.items():
        assert cbf.estimate(element) >= actual


@given(streams)
@settings(max_examples=100)
def test_count_min_estimate_bounded_by_total(stream):
    sketch = CountMinSketch(width=8, depth=2)
    for element in stream:
        sketch.observe(element)
    for element in set(stream):
        assert sketch.estimate(element) <= sketch.total_observed


@given(streams, st.integers(min_value=16, max_value=128))
@settings(max_examples=100)
def test_dual_cbf_covers_last_half_epoch(stream, size):
    """Estimates from the dual CBF cover at least the most recent
    half-epoch of observations of an element."""
    epoch = 40
    dual = DualCountingBloomFilter(size=size, epoch_length=epoch)
    recent = Counter()
    since_rotation = 0
    for element in stream:
        dual.observe(element)
        recent[element] += 1
        since_rotation += 1
        if since_rotation >= dual.half_epoch:
            recent.clear()  # conservative: only check the newest window
            since_rotation = 0
    for element, actual in recent.items():
        assert dual.estimate(element) >= actual
