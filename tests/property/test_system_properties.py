"""Property tests for the full-system simulator's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mithril import MithrilScheme
from repro.params import SystemConfig
from repro.sim.system import simulate
from repro.workloads.trace import CoreTrace, TraceEntry


def _small_config() -> SystemConfig:
    return SystemConfig().with_organization(channels=1, banks_per_rank=4)


@st.composite
def workloads(draw):
    num_cores = draw(st.integers(min_value=1, max_value=3))
    traces = []
    for core in range(num_cores):
        entries = draw(
            st.lists(
                st.builds(
                    TraceEntry,
                    gap_cycles=st.integers(min_value=0, max_value=64),
                    bank_index=st.integers(min_value=0, max_value=3),
                    row=st.integers(min_value=0, max_value=255),
                    column=st.integers(min_value=0, max_value=7),
                    is_write=st.booleans(),
                    instructions=st.integers(min_value=1, max_value=64),
                ),
                min_size=1,
                max_size=40,
            )
        )
        traces.append(CoreTrace(name=f"c{core}", entries=entries))
    return traces


@given(workloads())
@settings(max_examples=60, deadline=None)
def test_every_request_completes(traces):
    result = simulate(traces, config=_small_config())
    total = sum(len(t) for t in traces)
    assert result.row_hits + result.row_misses == total


@given(workloads())
@settings(max_examples=60, deadline=None)
def test_energy_counts_consistent(traces):
    result = simulate(traces, config=_small_config())
    reads = sum(
        sum(1 for e in t.entries if not e.is_write) for t in traces
    )
    writes = sum(
        sum(1 for e in t.entries if e.is_write) for t in traces
    )
    assert result.energy.reads == reads
    assert result.energy.writes == writes
    # Each access activates at most once.
    assert result.acts <= reads + writes
    assert result.energy.acts == result.acts


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_finish_cycles_cover_all_requests(traces):
    result = simulate(traces, config=_small_config())
    assert result.total_cycles == max(result.per_core_finish_cycles)
    for finish, trace in zip(result.per_core_finish_cycles, traces):
        assert finish > 0  # every core had at least one entry


@given(workloads(), st.integers(min_value=2, max_value=16))
@settings(max_examples=40, deadline=None)
def test_mithril_never_slows_requests_lost(traces, rfm_th):
    """Protection may add cycles but never loses requests or flips
    accounting."""
    base = simulate(traces, config=_small_config())
    protected = simulate(
        traces,
        config=_small_config(),
        scheme_factory=lambda: MithrilScheme(
            n_entries=8, rfm_th=rfm_th, rows_per_bank=65536
        ),
        rfm_th=rfm_th,
    )
    total = sum(len(t) for t in traces)
    assert protected.row_hits + protected.row_misses == total
    assert protected.flips == 0
    assert protected.acts >= 1 or total == 0


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(traces):
    a = simulate(traces, config=_small_config())
    b = simulate(traces, config=_small_config())
    assert a.total_cycles == b.total_cycles
    assert a.acts == b.acts
    assert a.per_core_finish_cycles == b.per_core_finish_cycles
