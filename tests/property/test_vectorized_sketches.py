"""Scalar and vectorized sketch engines agree exactly, always.

The turbo backend swaps the scalar sketches for the numpy engines of
:mod:`repro.streaming.vectorized`; golden byte-identity across
backends rests on these engines producing *the same numbers*, not
statistically similar ones.  Hypothesis drives randomized streams —
mixed observes, batch observes, estimates, batch estimates, CBF
decrements (including past-zero clamping) and resets — through both
implementations and requires exact agreement at every step.
"""

import pytest

pytest.importorskip("numpy", reason="vectorized engines need numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.count_min import CountMinSketch
from repro.streaming.counting_bloom import (
    CountingBloomFilter,
    DualCountingBloomFilter,
)
from repro.streaming.vectorized import (
    NumpyCountMinSketch,
    NumpyCountingBloomFilter,
    NumpyDualCountingBloomFilter,
)

# Tiny counter spaces maximize probe aliasing — the regime where an
# index-dedup bug would diverge from the scalar probe loop.
SIZES = st.integers(min_value=1, max_value=64)
ELEMENTS = st.integers(min_value=0, max_value=40)
COUNTS = st.integers(min_value=1, max_value=5)


def ops_strategy(with_decrement: bool):
    op = st.one_of(
        st.tuples(st.just("observe"), ELEMENTS, COUNTS),
        st.tuples(
            st.just("observe_many"),
            st.lists(ELEMENTS, max_size=12),
            COUNTS,
        ),
        st.tuples(st.just("estimate"), ELEMENTS, st.just(0)),
        st.tuples(
            st.just("estimate_many"),
            st.lists(ELEMENTS, max_size=12),
            st.just(0),
        ),
        st.tuples(st.just("reset"), st.just(0), st.just(0)),
    )
    if with_decrement:
        op = st.one_of(
            op, st.tuples(st.just("decrement"), ELEMENTS, COUNTS)
        )
    return st.lists(op, max_size=40)


def drive(scalar, turbo, operations, check_total=True):
    """Apply each op to both engines, asserting identical results."""
    for name, arg, count in operations:
        if name == "observe":
            scalar.observe(arg, count)
            turbo.observe(arg, count)
        elif name == "observe_many":
            scalar.observe_many(arg, count)
            turbo.observe_many(arg, count)
        elif name == "decrement":
            scalar.decrement(arg, count)
            turbo.decrement(arg, count)
        elif name == "estimate":
            assert scalar.estimate(arg) == turbo.estimate(arg)
        elif name == "estimate_many":
            assert scalar.estimate_many(arg) == turbo.estimate_many(arg)
        else:
            scalar.reset()
            turbo.reset()
        if check_total:
            assert scalar.total_observed == turbo.total_observed
    # Full final sweep: every element ever mentioned estimates equal.
    probe = sorted(
        {arg for name, arg, _ in operations if isinstance(arg, int)}
        | {e for name, arg, _ in operations
           if isinstance(arg, list) for e in arg}
    )
    assert scalar.estimate_many(probe) == turbo.estimate_many(probe)


class TestCountMin:
    @settings(max_examples=80, deadline=None)
    @given(
        width=SIZES,
        depth=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32),
        operations=ops_strategy(with_decrement=False),
    )
    def test_exact_agreement(self, width, depth, seed, operations):
        drive(
            CountMinSketch(width, depth, seed),
            NumpyCountMinSketch(width, depth, seed),
            operations,
        )


class TestCountingBloom:
    @settings(max_examples=80, deadline=None)
    @given(
        size=SIZES,
        hashes=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32),
        operations=ops_strategy(with_decrement=True),
    )
    def test_exact_agreement(self, size, hashes, seed, operations):
        drive(
            CountingBloomFilter(size, hashes, seed),
            NumpyCountingBloomFilter(size, hashes, seed),
            operations,
        )

    def test_decrement_clamps_at_zero(self):
        scalar = CountingBloomFilter(8, 4, seed=3)
        turbo = NumpyCountingBloomFilter(8, 4, seed=3)
        for engine in (scalar, turbo):
            engine.observe(1, 3)
            engine.decrement(1, 10)  # past zero: every counter clamps
        assert scalar.estimate(1) == turbo.estimate(1) == 0
        assert scalar.total_observed == turbo.total_observed == 0

    def test_decrement_aliased_counters(self):
        # size=1: every probe aliases onto one counter; the scalar
        # sequential clamp and the vectorized multiplicity form must
        # still agree.
        scalar = CountingBloomFilter(1, 4, seed=9)
        turbo = NumpyCountingBloomFilter(1, 4, seed=9)
        for engine in (scalar, turbo):
            engine.observe(5, 2)
            engine.decrement(5, 1)
        assert scalar.estimate(5) == turbo.estimate(5)


class TestDualCountingBloom:
    @settings(max_examples=80, deadline=None)
    @given(
        size=SIZES,
        epoch=st.integers(min_value=2, max_value=24),
        seed=st.integers(min_value=0, max_value=2**32),
        operations=ops_strategy(with_decrement=False),
        tail=st.lists(ELEMENTS, min_size=0, max_size=30),
    )
    def test_exact_agreement(self, size, epoch, seed, operations, tail):
        scalar = DualCountingBloomFilter(size, epoch, seed=seed)
        turbo = NumpyDualCountingBloomFilter(size, epoch, seed=seed)
        drive(scalar, turbo, operations, check_total=False)
        # The per-ACT hot path: interleaved observe_and_estimate must
        # agree across rotations.
        for element in tail:
            assert scalar.observe_and_estimate(
                element
            ) == turbo.observe_and_estimate(element)
        assert scalar._active == turbo._active
        assert scalar._since_swap == turbo._since_swap

    def test_rotation_mid_batch(self):
        scalar = DualCountingBloomFilter(16, 6, seed=1)
        turbo = NumpyDualCountingBloomFilter(16, 6, seed=1)
        batch = list(range(10))  # crosses multiple half-epochs (3)
        scalar.observe_many(batch)
        turbo.observe_many(batch)
        assert scalar._active == turbo._active
        assert scalar.estimate_many(batch) == turbo.estimate_many(batch)

    def test_multi_count_observe_rotates_identically(self):
        scalar = DualCountingBloomFilter(16, 4, seed=2)
        turbo = NumpyDualCountingBloomFilter(16, 4, seed=2)
        scalar.observe(7, 9)
        turbo.observe(7, 9)
        assert scalar._active == turbo._active
        assert scalar._since_swap == turbo._since_swap
        assert scalar.estimate(7) == turbo.estimate(7)
