"""Property tests for the analytical bounds (Theorems 1 and 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    adaptive_bound,
    estimated_growth_bound,
    rfm_intervals_per_window,
)
from repro.core.config import min_entries_for

rfm_ths = st.sampled_from([8, 16, 32, 64, 128, 256])
entries = st.integers(min_value=2, max_value=4096)
adths = st.integers(min_value=0, max_value=500)


@given(entries, rfm_ths)
@settings(max_examples=200)
def test_bound_positive(n, rfm_th):
    assert estimated_growth_bound(n, rfm_th) > 0


@given(st.integers(min_value=2, max_value=2048), rfm_ths)
@settings(max_examples=200)
def test_bound_decreasing_in_entries_below_w(n, rfm_th):
    """M(n) >= M(n+1) while n is below W (the useful regime)."""
    w = rfm_intervals_per_window(rfm_th)
    if n + 1 >= w - 2:
        return
    assert estimated_growth_bound(n, rfm_th) >= estimated_growth_bound(
        n + 1, rfm_th
    )


@given(entries, rfm_ths, adths)
@settings(max_examples=200)
def test_adaptive_bound_dominates_theorem1(n, rfm_th, adth):
    assert adaptive_bound(n, rfm_th, adth) >= estimated_growth_bound(n, rfm_th)


@given(entries, rfm_ths, st.integers(min_value=0, max_value=400))
@settings(max_examples=100)
def test_adaptive_bound_monotone_in_adth(n, rfm_th, adth):
    assert adaptive_bound(n, rfm_th, adth + 50) >= adaptive_bound(
        n, rfm_th, adth
    ) - 1e-9


@given(st.sampled_from([1_500, 3_125, 6_250, 12_500, 25_000, 50_000]),
       rfm_ths)
@settings(max_examples=60, deadline=None)
def test_min_entries_result_is_safe_and_minimal(flip_th, rfm_th):
    n = min_entries_for(flip_th, rfm_th)
    if n is None:
        return
    target = flip_th / 2
    assert estimated_growth_bound(n, rfm_th) < target
    if n > 1:
        assert estimated_growth_bound(n - 1, rfm_th) >= target
