"""Property tests for Lossy Counting's error bounds."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.lossy_counting import LossyCounter

streams = st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                   max_size=300)
epsilons = st.sampled_from([0.5, 0.25, 0.1, 0.05])


@given(streams, epsilons)
@settings(max_examples=150)
def test_raw_count_never_overestimates(stream, epsilon):
    counter = LossyCounter(epsilon)
    truth = Counter()
    for element in stream:
        counter.observe(element)
        truth[element] += 1
    for element, actual in truth.items():
        assert counter.raw_count(element) <= actual


@given(streams, epsilons)
@settings(max_examples=150)
def test_undercount_bounded_by_epsilon_n(stream, epsilon):
    counter = LossyCounter(epsilon)
    truth = Counter()
    for element in stream:
        counter.observe(element)
        truth[element] += 1
    n = counter.items_seen
    for element, actual in truth.items():
        assert counter.raw_count(element) >= actual - epsilon * n - 1


@given(streams, epsilons)
@settings(max_examples=150)
def test_estimate_is_conservative_overestimate(stream, epsilon):
    """estimate = count + delta >= actual for tracked elements."""
    counter = LossyCounter(epsilon)
    truth = Counter()
    for element in stream:
        counter.observe(element)
        truth[element] += 1
        if element in counter:
            assert counter.estimate(element) >= truth[element] - epsilon * counter.items_seen - 1


@given(streams, epsilons)
@settings(max_examples=100)
def test_frequent_items_always_tracked(stream, epsilon):
    """No element with actual > epsilon * n is ever pruned."""
    counter = LossyCounter(epsilon)
    truth = Counter()
    for element in stream:
        counter.observe(element)
        truth[element] += 1
    n = counter.items_seen
    for element, actual in truth.items():
        if actual > epsilon * n:
            assert element in counter
