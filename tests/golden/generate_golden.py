"""Regenerate the golden simulation results for the equivalence suite.

The goldens pin `simulate()`'s *exact* output — every counter, cycle
and float — for each shipped scheme on several workloads.  They were
first captured from the pre-optimization (seed) simulator; the
hot-path rework of the event loop, schedulers and sketches is required
to reproduce them byte-for-byte, which is what
``tests/integration/test_golden_equivalence.py`` asserts.

Only rerun this script after an *intentional* behavior change, and say
so in the commit message::

    PYTHONPATH=src python tests/golden/generate_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "src"))

from repro.engine.cache import result_to_dict  # noqa: E402
from repro.engine.executor import execute_job  # noqa: E402
from repro.engine.job import SimJob, WorkloadSpec  # noqa: E402

GOLDEN_PATH = HERE / "simulation_results.json"

#: Kept deliberately small (scale 0.25) so the equivalence test stays
#: in the fast lane; coverage comes from the scheme x workload spread.
SCALE = 0.25
FLIP_TH = 6_250

WORKLOADS = [
    ("mix-high", {"seed": 11}),
    ("fft", {"seed": 21}),
    ("attack", {"pattern": "multi-sided", "seed": 31}),
]

#: Every shipped scheme family: the bare loop, CbS + ARR (graphene),
#: CbS + RFM (mithril, mithril+), Bloom-filter throttling
#: (blockhammer), probabilistic ARR (para), and the per-row-counter
#: legacy schemes (twice, cbt).
SCHEMES = [
    "none",
    "graphene",
    "mithril",
    "mithril+",
    "blockhammer",
    "para",
    "twice",
    "cbt",
]


def golden_jobs():
    for kind, params in WORKLOADS:
        spec = WorkloadSpec.make(kind, scale=SCALE, **params)
        for scheme in SCHEMES:
            yield SimJob(
                workload=spec, scheme=scheme, flip_th=FLIP_TH, scale=SCALE
            )


def main() -> int:
    records = []
    for job in golden_jobs():
        result = execute_job(job)
        records.append(
            {"job": job.canonical(), "result": result_to_dict(result)}
        )
        print(f"captured {job.workload.kind:<10} x {job.scheme}")
    GOLDEN_PATH.write_text(json.dumps(records, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(records)} golden results to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
