"""Unit tests for the Lossy Counting algorithm."""

import pytest

from repro.streaming.lossy_counting import LossyCounter


class TestLossyCounter:
    def test_rejects_bad_epsilon(self):
        for epsilon in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                LossyCounter(epsilon=epsilon)

    def test_exact_before_first_window(self):
        counter = LossyCounter(epsilon=0.1)  # window = 10
        for _ in range(5):
            counter.observe("a")
        assert counter.raw_count("a") == 5
        assert counter.estimate("a") == 5

    def test_prunes_rare_elements(self):
        counter = LossyCounter(epsilon=0.25)  # window = 4
        counter.observe("rare")
        for _ in range(3):
            counter.observe("hot")  # completes the window, prune runs
        assert "rare" not in counter
        assert "hot" in counter

    def test_hot_element_survives_pruning(self):
        counter = LossyCounter(epsilon=0.1)
        for i in range(100):
            counter.observe("hot")
            counter.observe(f"noise-{i}")
        assert "hot" in counter
        assert counter.estimate("hot") >= 100

    def test_estimate_is_overestimate(self):
        counter = LossyCounter(epsilon=0.05)
        stream = [f"n{i % 50}" for i in range(500)] + ["hot"] * 60
        for item in stream:
            counter.observe(item)
        # conservative: estimate >= actual for tracked elements
        assert counter.estimate("hot") >= 60

    def test_off_table_estimate_is_window_index(self):
        counter = LossyCounter(epsilon=0.5)  # window = 2
        for i in range(10):
            counter.observe(f"x{i}")
        assert counter.estimate("never-seen") == counter._window_index

    def test_items_seen(self):
        counter = LossyCounter(epsilon=0.1)
        counter.observe("a", 7)
        assert counter.items_seen == 7

    def test_rejects_non_positive_count(self):
        counter = LossyCounter(epsilon=0.1)
        with pytest.raises(ValueError):
            counter.observe("a", 0)

    def test_entries_at_least(self):
        counter = LossyCounter(epsilon=0.01)
        counter.observe("a", 30)
        counter.observe("b", 5)
        hot = dict(counter.entries_at_least(10))
        assert "a" in hot and "b" not in hot

    def test_reset(self):
        counter = LossyCounter(epsilon=0.1)
        counter.observe("a", 20)
        counter.reset()
        assert len(counter) == 0
        assert counter.items_seen == 0
        assert counter.estimate("a") == 0

    def test_window_size_derived_from_epsilon(self):
        assert LossyCounter(epsilon=0.25).window_size == 4
        assert LossyCounter(epsilon=0.001).window_size == 1000
